"""The public B2BObjects API: controller scoping, modes, wrappers."""

from __future__ import annotations

import pytest

from repro.core import (
    ASYNCHRONOUS,
    DEFERRED_SYNCHRONOUS,
    SYNCHRONOUS,
    CompositeB2BObject,
    DictB2BObject,
    wrap_object,
)
from repro.core.controller import CoordinationTicket
from repro.core.modes import validate_mode
from repro.errors import ConfigurationError, ProtocolError, ValidationFailed
from repro.protocol.events import RunCompleted
from repro.protocol.validation import Decision


def found_dict(community, names=None, object_name="shared", **kwargs):
    names = names or community.names()
    objects = {name: DictB2BObject() for name in names}
    controllers = community.found_object(object_name, objects, **kwargs)
    return controllers, objects


class TestScoping:
    def test_overwrite_scope_coordinates_on_final_leave(self, community2):
        controllers, objects = found_dict(community2)
        controller = controllers["Org1"]
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("k", 1)
        controller.leave()
        community2.settle()
        assert objects["Org2"].get_attribute("k") == 1

    def test_nested_scopes_roll_up_to_one_coordination(self, community2):
        controllers, objects = found_dict(community2)
        controller = controllers["Org1"]
        network = community2.runtime.network
        before = network.stats.sent
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("a", 1)
        controller.enter()
        objects["Org1"].set_attribute("b", 2)
        controller.leave()  # inner: no coordination yet
        assert objects["Org2"].get_attribute("a") is None
        controller.leave()  # outer: coordinates both changes at once
        community2.settle()
        assert objects["Org2"].attributes() == {"a": 1, "b": 2}
        # exactly one protocol run: one proposal evidence record
        log = community2.node("Org1").ctx.evidence
        assert len(list(log.entries("proposal-sent"))) == 1

    def test_examine_scope_does_not_coordinate(self, community2):
        controllers, objects = found_dict(community2)
        controller = controllers["Org1"]
        log = community2.node("Org1").ctx.evidence
        controller.enter()
        controller.examine()
        _ = objects["Org1"].attributes()
        assert controller.leave() is None
        assert list(log.entries("proposal-sent")) == []

    def test_plain_scope_defaults_to_read(self, community2):
        controllers, _ = found_dict(community2)
        controller = controllers["Org1"]
        controller.enter()
        assert controller.leave() is None

    def test_mixing_update_and_overwrite_rejected(self, community2):
        controllers, _ = found_dict(community2)
        controller = controllers["Org1"]
        controller.enter()
        controller.overwrite()
        with pytest.raises(ProtocolError, match="mix"):
            controller.update()
        controller._access = None
        controller.leave()

    def test_access_outside_scope_rejected(self, community2):
        controllers, _ = found_dict(community2)
        controller = controllers["Org1"]
        with pytest.raises(ProtocolError, match="outside"):
            controller.overwrite()
        with pytest.raises(ProtocolError, match="outside"):
            controller.leave()

    def test_update_scope_sends_delta(self, community2):
        controllers, objects = found_dict(community2)
        c1 = controllers["Org1"]
        c1.enter(); c1.overwrite()
        objects["Org1"].set_attribute("base", 1)
        c1.leave()
        community2.settle()
        c1.enter(); c1.update()
        objects["Org1"].set_attribute("delta", 2)
        c1.leave()
        community2.settle()
        assert objects["Org2"].attributes() == {"base": 1, "delta": 2}

    def test_sync_coord_forces_coordination(self, community2):
        controllers, objects = found_dict(community2)
        objects["Org1"]._attributes["direct"] = 1  # out-of-band mutation
        controllers["Org1"].sync_coord()
        community2.settle()
        assert objects["Org2"].get_attribute("direct") == 1

    def test_validation_response_hook_records_decisions(self, community2):
        controllers, objects = found_dict(community2)
        c1 = controllers["Org1"]
        c1.enter(); c1.overwrite()
        objects["Org1"].set_attribute("k", 1)
        c1.leave()
        community2.settle()
        # the *responder* ran validation
        assert controllers["Org2"].last_validation is not None
        kind, decision = controllers["Org2"].last_validation
        assert kind == "state" and decision.accepted


class TestModes:
    def test_validate_mode(self):
        assert validate_mode(SYNCHRONOUS) == SYNCHRONOUS
        with pytest.raises(ValueError):
            validate_mode("psychic")

    def test_synchronous_raises_on_veto(self, community2):
        controllers, objects = found_dict(community2)

        class Veto(DictB2BObject):
            def validate_state(self, proposed, current, proposer):
                return Decision.reject("nope")

        community2.node("Org2").party.session("shared").state.validator = (
            __import__("repro.protocol.validation",
                       fromlist=["CallbackValidator"]).CallbackValidator(
                state=lambda p, c, pr: Decision.reject("nope"))
        )
        c1 = controllers["Org1"]
        c1.enter(); c1.overwrite()
        objects["Org1"].set_attribute("k", 1)
        with pytest.raises(ValidationFailed) as excinfo:
            c1.leave()
        assert any("nope" in d for d in excinfo.value.diagnostics)
        assert objects["Org1"].get_attribute("k") is None  # rolled back

    def test_deferred_mode_returns_pending_ticket(self, community2):
        controllers, objects = found_dict(community2)
        c1 = controllers["Org1"]
        c1.mode = DEFERRED_SYNCHRONOUS
        c1.enter(); c1.overwrite()
        objects["Org1"].set_attribute("k", 1)
        ticket = c1.leave()
        assert isinstance(ticket, CoordinationTicket)
        assert not ticket.done
        c1.coord_commit(ticket)
        assert ticket.done and ticket.valid

    def test_deferred_mode_commit_raises_on_veto(self, community2):
        controllers, objects = found_dict(community2)
        community2.node("Org2").party.session("shared").state.validator = (
            __import__("repro.protocol.validation",
                       fromlist=["CallbackValidator"]).CallbackValidator(
                state=lambda p, c, pr: Decision.reject("vetoed"))
        )
        c1 = controllers["Org1"]
        c1.mode = DEFERRED_SYNCHRONOUS
        c1.enter(); c1.overwrite()
        objects["Org1"].set_attribute("k", 1)
        ticket = c1.leave()
        with pytest.raises(ValidationFailed):
            c1.coord_commit(ticket)

    def test_asynchronous_mode_invokes_coord_callback(self, community2):
        controllers, objects = found_dict(community2)
        received = []

        c1 = controllers["Org1"]
        c1.mode = ASYNCHRONOUS
        objects["Org1"].coord_callback = received.append
        c1.enter(); c1.overwrite()
        objects["Org1"].set_attribute("k", 1)
        ticket = c1.leave()
        community2.settle()
        assert ticket.done and ticket.valid
        assert any(isinstance(e, RunCompleted) for e in received)


class TestWrapper:
    class Ledger:
        def __init__(self):
            self._state = {"total": 0}

        def get_state(self):
            return dict(self._state)

        def apply_state(self, state):
            self._state = dict(state)

        def deposit(self, amount):
            self._state["total"] += amount
            return self._state["total"]

        def total(self):
            return self._state["total"]

    def test_wrapped_write_method_coordinates(self, community2):
        from repro.core.wrapper import WrappedB2BObject
        ledgers = {n: self.Ledger() for n in community2.names()}
        objects = {n: WrappedB2BObject(ledger)
                   for n, ledger in ledgers.items()}
        controllers = community2.found_object("ledger", objects)
        proxy = wrap_object(ledgers["Org1"], controllers["Org1"],
                            write_methods=["deposit"], read_methods=["total"])
        assert proxy.deposit(10) == 10
        community2.settle()
        assert ledgers["Org2"].total() == 10
        assert proxy.total() == 10

    def test_wrapped_validation_rule(self, community2):
        from repro.core.wrapper import WrappedB2BObject

        def no_negative(proposed, current, proposer):
            if proposed["total"] < 0:
                return Decision.reject("negative balance")
            return Decision.accept()

        ledgers = {n: self.Ledger() for n in community2.names()}
        objects = {n: WrappedB2BObject(ledger, validate_state=no_negative)
                   for n, ledger in ledgers.items()}
        controllers = community2.found_object("ledger", objects)
        proxy = wrap_object(ledgers["Org1"], controllers["Org1"],
                            write_methods=["deposit"])
        with pytest.raises(ValidationFailed):
            proxy.deposit(-5)
        community2.settle()
        assert ledgers["Org1"].total() == 0  # rolled back
        assert ledgers["Org2"].total() == 0

    def test_wrapper_requires_accessors(self):
        from repro.core.wrapper import WrappedB2BObject
        with pytest.raises(ConfigurationError):
            WrappedB2BObject(object())

    def test_proxy_rejects_unknown_methods(self, community2):
        ledgers = {n: self.Ledger() for n in community2.names()}
        from repro.core.wrapper import WrappedB2BObject
        objects = {n: WrappedB2BObject(ledger) for n, ledger in ledgers.items()}
        controllers = community2.found_object("ledger", objects)
        with pytest.raises(ConfigurationError):
            wrap_object(ledgers["Org1"], controllers["Org1"],
                        write_methods=["no_such_method"])

    def test_proxy_failure_inside_method_closes_scope(self, community2):
        ledgers = {n: self.Ledger() for n in community2.names()}
        from repro.core.wrapper import WrappedB2BObject
        objects = {n: WrappedB2BObject(ledger) for n, ledger in ledgers.items()}
        controllers = community2.found_object("ledger", objects)
        proxy = wrap_object(ledgers["Org1"], controllers["Org1"],
                            write_methods=["deposit"])
        with pytest.raises(TypeError):
            proxy.deposit("not-a-number")
        # scope was unwound; a subsequent good call works
        proxy.deposit(5)
        community2.settle()
        assert ledgers["Org2"].total() == 5


class TestComposite:
    def test_composite_coordinates_children_atomically(self, community2):
        composites = {}
        children = {}
        for name in community2.names():
            order = DictB2BObject()
            invoice = DictB2BObject()
            children[name] = (order, invoice)
            composites[name] = CompositeB2BObject(
                {"order": order, "invoice": invoice}
            )
        controllers = community2.found_object("bundle", composites)
        c1 = controllers["Org1"]
        order1, invoice1 = children["Org1"]
        c1.enter(); c1.overwrite()
        order1.set_attribute("widget", 2)
        invoice1.set_attribute("amount", 20)
        c1.leave()
        community2.settle()
        order2, invoice2 = children["Org2"]
        assert order2.get_attribute("widget") == 2
        assert invoice2.get_attribute("amount") == 20

    def test_child_veto_rejects_whole_composite(self, community2):
        class PickyChild(DictB2BObject):
            def validate_state(self, proposed, current, proposer):
                if proposed.get("bad"):
                    return Decision.reject("child says no")
                return Decision.accept()

        composites = {}
        children = {}
        for name in community2.names():
            good = DictB2BObject()
            picky = PickyChild()
            children[name] = (good, picky)
            composites[name] = CompositeB2BObject({"good": good, "picky": picky})
        controllers = community2.found_object("bundle", composites)
        c1 = controllers["Org1"]
        good1, picky1 = children["Org1"]
        c1.enter(); c1.overwrite()
        good1.set_attribute("x", 1)
        picky1.set_attribute("bad", True)
        with pytest.raises(ValidationFailed) as excinfo:
            c1.leave()
        assert any("picky: child says no" in d
                   for d in excinfo.value.diagnostics)
        community2.settle()
        good2, picky2 = children["Org2"]
        assert good2.get_attribute("x") is None  # atomicity: nothing landed

    def test_composite_requires_children(self):
        with pytest.raises(ConfigurationError):
            CompositeB2BObject({})

    def test_composite_state_shape_enforced(self):
        composite = CompositeB2BObject({"a": DictB2BObject()})
        with pytest.raises(ConfigurationError):
            composite.apply_state({"b": {}})

    def test_composite_update_merge(self):
        composite = CompositeB2BObject(
            {"a": DictB2BObject({"x": 1}), "b": DictB2BObject()}
        )
        merged = composite.merge_update(
            {"a": {"x": 1}, "b": {}}, {"a": {"y": 2}}
        )
        assert merged == {"a": {"x": 1, "y": 2}, "b": {}}
