"""PRNG and hash substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    constant_time_equal,
    hash_members,
    hash_value,
    hmac_digest,
    secure_hash,
)
from repro.crypto.prng import DeterministicRandomSource, SystemRandomSource


class TestDeterministicRandomSource:
    def test_same_seed_same_stream(self):
        a = DeterministicRandomSource(42)
        b = DeterministicRandomSource(42)
        assert a.random_bytes(100) == b.random_bytes(100)

    def test_different_seeds_differ(self):
        assert (DeterministicRandomSource(1).random_bytes(32)
                != DeterministicRandomSource(2).random_bytes(32))

    def test_seed_types(self):
        for seed in (b"bytes", "text", 12345):
            DeterministicRandomSource(seed).random_bytes(8)

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            DeterministicRandomSource(1.5)  # type: ignore[arg-type]

    def test_fork_is_independent_of_consumption_order(self):
        parent1 = DeterministicRandomSource("p")
        parent2 = DeterministicRandomSource("p")
        parent2.random_bytes(64)  # consume from parent first
        assert parent1.fork("x").random_bytes(16) == parent2.fork("x").random_bytes(16)

    def test_forks_with_different_labels_differ(self):
        parent = DeterministicRandomSource("p")
        assert parent.fork("a").random_bytes(16) != parent.fork("b").random_bytes(16)

    def test_stream_is_consumed(self):
        rng = DeterministicRandomSource(0)
        assert rng.random_bytes(8) != rng.random_bytes(8)

    @given(st.integers(min_value=1, max_value=10_000))
    def test_random_below_in_range(self, bound):
        rng = DeterministicRandomSource(bound)
        for _ in range(10):
            assert 0 <= rng.random_below(bound) < bound

    def test_random_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeterministicRandomSource(0).random_below(0)

    def test_random_below_covers_range(self):
        rng = DeterministicRandomSource("coverage")
        seen = {rng.random_below(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRandomSource(0).random_bytes(-1)


class TestSystemRandomSource:
    def test_length(self):
        assert len(SystemRandomSource().random_bytes(33)) == 33

    def test_random_int_bits(self):
        value = SystemRandomSource().random_int(64)
        assert 0 <= value < 2**64


class TestHashing:
    def test_digest_size(self):
        assert len(secure_hash(b"abc")) == DIGEST_SIZE == 32

    def test_requires_bytes(self):
        with pytest.raises(TypeError):
            secure_hash("text")  # type: ignore[arg-type]

    def test_hash_value_structural(self):
        assert hash_value({"a": 1, "b": 2}) == hash_value({"b": 2, "a": 1})
        assert hash_value({"a": 1}) != hash_value({"a": 2})

    def test_hash_members_is_order_sensitive(self):
        # Member order encodes join recency (sponsor selection), so
        # different orders are genuinely different groups.
        assert hash_members(["A", "B"]) != hash_members(["B", "A"])

    def test_hmac_keyed(self):
        assert hmac_digest(b"k1", b"m") != hmac_digest(b"k2", b"m")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_collision_free_on_samples(self, a, b):
        if a != b:
            assert secure_hash(a) != secure_hash(b)
