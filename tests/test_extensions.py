"""Section-7 extensions: majority termination and deadline/TTP abort."""

from __future__ import annotations

import pytest

from repro.core import DEFERRED_SYNCHRONOUS, DictB2BObject
from repro.errors import DisputeError, ValidationFailed
from repro.extensions import (
    DeadlineMonitor,
    MajorityCoordinationEngine,
    TerminationTTP,
    apply_certified_resolution,
    gather_run_evidence,
    make_majority_engine,
)
from repro.faults import SuppressCommits, SuppressResponses
from repro.protocol.validation import CallbackValidator, Decision


def found(community, engine_cls=None, mode=None, object_name="shared"):
    objects = {n: DictB2BObject() for n in community.names()}
    kwargs = {}
    if engine_cls is not None:
        kwargs["engine_cls"] = engine_cls
    if mode is not None:
        kwargs["mode"] = mode
    controllers = community.found_object(object_name, objects, **kwargs)
    return controllers, objects


def veto_everything(community, org, object_name="shared"):
    community.node(org).party.session(object_name).state.validator = (
        CallbackValidator(state=lambda p, c, pr: Decision.reject("never"))
    )


def write(controllers, objects, org, **attrs):
    controller = controllers[org]
    controller.enter()
    controller.overwrite()
    for key, value in attrs.items():
        objects[org].set_attribute(key, value)
    return controller.leave()


class TestMajorityVoting:
    def test_minority_veto_overridden(self, make_community):
        community = make_community(5, seed=80)
        controllers, objects = found(community,
                                     engine_cls=MajorityCoordinationEngine)
        veto_everything(community, "Org5")
        write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        for org in community.names():
            engine = community.node(org).party.session("shared").state
            assert engine.agreed_state == {"x": 1}, org

    def test_majority_veto_still_rejects(self, make_community):
        community = make_community(5, seed=81)
        controllers, objects = found(community,
                                     engine_cls=MajorityCoordinationEngine)
        for org in ["Org3", "Org4", "Org5"]:
            veto_everything(community, org)
        with pytest.raises(ValidationFailed):
            write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        for org in community.names():
            engine = community.node(org).party.session("shared").state
            assert engine.agreed_state == {}

    def test_unanimity_engine_rejects_what_majority_accepts(self, make_community):
        community = make_community(5, seed=82)
        controllers, objects = found(community)  # default unanimity
        veto_everything(community, "Org5")
        with pytest.raises(ValidationFailed):
            write(controllers, objects, "Org1", x=1)

    def test_supermajority_quorum(self, make_community):
        community = make_community(4, seed=83)
        engine_cls = make_majority_engine(0.75)
        controllers, objects = found(community, engine_cls=engine_cls)
        veto_everything(community, "Org4")
        # 3/4 accept == not strictly greater than 0.75 * 4 -> rejected
        with pytest.raises(ValidationFailed):
            write(controllers, objects, "Org1", x=1)

    def test_quorum_fraction_validated(self):
        with pytest.raises(ValueError):
            make_majority_engine(1.0)

    def test_force_completion_with_partial_responses(self, make_community):
        community = make_community(5, seed=84)
        controllers, objects = found(
            community, engine_cls=MajorityCoordinationEngine,
            mode=DEFERRED_SYNCHRONOUS,
        )
        SuppressResponses(community.node("Org5"))
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        assert not ticket.done
        engine1 = community.node("Org1").party.session("shared").state
        output = engine1.force_completion(ticket.key)
        community.node("Org1")._process_output(output)
        community.settle(1.0)
        assert ticket.done and ticket.valid  # 4/5 accepts > 0.5 quorum
        for org in ["Org1", "Org2", "Org3", "Org4"]:
            engine = community.node(org).party.session("shared").state
            assert engine.agreed_state == {"x": 1}

    def test_force_completion_under_unanimity_aborts(self, make_community):
        community = make_community(3, seed=85)
        controllers, objects = found(community, mode=DEFERRED_SYNCHRONOUS)
        SuppressResponses(community.node("Org3"))
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        engine1 = community.node("Org1").party.session("shared").state
        output = engine1.force_completion(ticket.key)
        community.node("Org1")._process_output(output)
        assert ticket.done and ticket.valid is False
        assert engine1.agreed_state == {}


class TestDeadlineTTP:
    def test_certified_abort_for_missing_response(self, make_community):
        community = make_community(3, seed=90)
        controllers, objects = found(community, mode=DEFERRED_SYNCHRONOUS)
        SuppressResponses(community.node("Org3"))
        ttp = TerminationTTP(resolver=community.resolver)
        monitor = DeadlineMonitor(list(community.nodes.values()), ttp,
                                  deadline=5.0)
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(10.0)
        assert monitor.sweep() == 1
        community.settle(0.5)
        assert ticket.done and ticket.valid is False
        for org in community.names():
            engine = community.node(org).party.session("shared").state
            assert engine.agreed_state == {} and not engine.busy

    def test_certified_decision_from_complete_evidence(self, make_community):
        community = make_community(3, seed=91)
        controllers, objects = found(community, mode=DEFERRED_SYNCHRONOUS)
        SuppressCommits(community.node("Org1"))  # proposer withholds m3
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        engine1 = community.node("Org1").party.session("shared").state
        evidence = gather_run_evidence(engine1, ticket.key)
        ttp = TerminationTTP(resolver=community.resolver)
        token = ttp.resolve(evidence, community.names())
        assert token.payload["resolution"] == "commit"
        for org in ["Org2", "Org3"]:
            node = community.node(org)
            output = apply_certified_resolution(
                node.party.session("shared").state, token, ttp.verifier)
            node._process_output(output)
        community.settle(0.5)
        for org in community.names():
            engine = community.node(org).party.session("shared").state
            assert engine.agreed_state == {"x": 1}

    def test_certified_abort_when_a_response_was_a_veto(self, make_community):
        community = make_community(3, seed=92)
        controllers, objects = found(community, mode=DEFERRED_SYNCHRONOUS)
        veto_everything(community, "Org3")
        SuppressCommits(community.node("Org1"))
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        engine1 = community.node("Org1").party.session("shared").state
        evidence = gather_run_evidence(engine1, ticket.key)
        ttp = TerminationTTP(resolver=community.resolver)
        token = ttp.resolve(evidence, community.names())
        assert token.payload["resolution"] == "abort"
        assert token.payload["valid"] is False

    def test_requester_cannot_shrink_the_electorate(self, make_community):
        community = make_community(3, seed=93)
        controllers, objects = found(community, mode=DEFERRED_SYNCHRONOUS)
        SuppressResponses(community.node("Org3"))
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        engine1 = community.node("Org1").party.session("shared").state
        evidence = gather_run_evidence(engine1, ticket.key)
        ttp = TerminationTTP(resolver=community.resolver)
        with pytest.raises(DisputeError, match="membership"):
            ttp.resolve(evidence, ["Org1", "Org2"])  # pretend Org3 is gone

    def test_token_signature_checked(self, make_community):
        community = make_community(2, seed=94)
        controllers, objects = found(community, mode=DEFERRED_SYNCHRONOUS)
        SuppressResponses(community.node("Org2"))
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        engine1 = community.node("Org1").party.session("shared").state
        evidence = gather_run_evidence(engine1, ticket.key)
        ttp = TerminationTTP(resolver=community.resolver)
        impostor = TerminationTTP(name="Impostor", resolver=community.resolver)
        token = impostor.resolve(evidence, community.names())
        from repro.errors import SignatureError
        with pytest.raises(SignatureError):
            apply_certified_resolution(engine1, token, ttp.verifier)

    def test_monitor_ignores_settled_runs(self, make_community):
        community = make_community(2, seed=95)
        controllers, objects = found(community)
        write(controllers, objects, "Org1", x=1)
        community.settle(20.0)
        ttp = TerminationTTP(resolver=community.resolver)
        monitor = DeadlineMonitor(list(community.nodes.values()), ttp,
                                  deadline=5.0)
        assert monitor.sweep() == 0
