"""Tic-Tac-Toe application (section 5.1, Figure 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tictactoe import (
    CROSS,
    DRAW,
    EMPTY,
    NOUGHT,
    TicTacToeObject,
    TicTacToePlayer,
    initial_board,
    legal_successor,
    winner_of,
)
from repro.core import Community, SimRuntime
from repro.errors import RuleViolation, ValidationFailed


class TestRules:
    def test_initial_board(self):
        state = initial_board()
        assert state["board"] == [EMPTY] * 9
        assert state["next"] == CROSS and state["winner"] == EMPTY

    def test_winner_rows_columns_diagonals(self):
        assert winner_of(["X", "X", "X"] + [EMPTY] * 6) == CROSS
        assert winner_of(["O", EMPTY, EMPTY] * 3) == NOUGHT
        assert winner_of(["X", EMPTY, EMPTY,
                          EMPTY, "X", EMPTY,
                          EMPTY, EMPTY, "X"]) == CROSS

    def test_draw(self):
        board = ["X", "O", "X",
                 "X", "O", "O",
                 "O", "X", "X"]
        assert winner_of(board) == DRAW

    def test_open_game(self):
        assert winner_of([EMPTY] * 9) == EMPTY

    def test_legal_move(self):
        current = initial_board()
        proposed = {
            "board": [EMPTY] * 4 + [CROSS] + [EMPTY] * 4,
            "next": NOUGHT, "winner": EMPTY,
        }
        ok, _ = legal_successor(current, proposed)
        assert ok

    @pytest.mark.parametrize("mutation, fragment", [
        # two squares at once
        (lambda p: p["board"].__setitem__(0, CROSS), "exactly one"),
        # wrong mark for the turn
        (lambda p: p["board"].__setitem__(4, NOUGHT), "turn"),
        # inconsistent turn bookkeeping
        (lambda p: p.update(next=CROSS), "pass"),
        # inconsistent winner
        (lambda p: p.update(winner=CROSS), "winner"),
    ])
    def test_illegal_successors(self, mutation, fragment):
        current = initial_board()
        proposed = {
            "board": [EMPTY] * 4 + [CROSS] + [EMPTY] * 4,
            "next": NOUGHT, "winner": EMPTY,
        }
        mutation(proposed)
        ok, diagnostic = legal_successor(current, proposed)
        assert not ok and fragment in diagnostic

    def test_cannot_overwrite_claimed_square(self):
        current = initial_board()
        current["board"][4] = CROSS
        current["next"] = NOUGHT
        proposed = dict(current)
        proposed = {
            "board": list(current["board"]), "next": CROSS, "winner": EMPTY,
        }
        proposed["board"][4] = NOUGHT
        ok, diagnostic = legal_successor(current, proposed)
        assert not ok and "already claimed" in diagnostic

    def test_no_moves_after_game_over(self):
        current = {
            "board": ["X", "X", "X"] + [EMPTY] * 6,
            "next": NOUGHT, "winner": CROSS,
        }
        proposed = {
            "board": ["X", "X", "X", "O"] + [EMPTY] * 5,
            "next": CROSS, "winner": CROSS,
        }
        ok, diagnostic = legal_successor(current, proposed)
        assert not ok and "over" in diagnostic


def play_game(seed=0):
    community = Community(["Cross", "Nought"], runtime=SimRuntime(seed=seed))
    players = {"Cross": CROSS, "Nought": NOUGHT}
    objects = {n: TicTacToeObject(players) for n in ["Cross", "Nought"]}
    controllers = community.found_object("game", objects)
    cross = TicTacToePlayer(controllers["Cross"], CROSS)
    nought = TicTacToePlayer(controllers["Nought"], NOUGHT)
    return community, cross, nought, objects


class TestCoordinatedGame:
    def test_figure5_sequence(self):
        """The exact Figure 5 scenario: three moves, then Cross attempts
        to pre-empt Nought by marking a square with a zero."""
        community, cross, nought, objects = play_game()
        cross.save_move(4)   # middle row, centre
        nought.save_move(0)  # top row, left
        cross.save_move(5)   # middle row, right
        with pytest.raises(ValidationFailed) as excinfo:
            cross.save_move(7, mark=NOUGHT)
        assert any("may not place" in d for d in excinfo.value.diagnostics)
        community.settle(1.0)
        # The agreed game state does not reflect the cheat; the opponent
        # holds evidence of the attempt.
        assert objects["Nought"].board == objects["Cross"].board
        assert objects["Nought"].board[7] == EMPTY
        assert objects["Nought"].board[4] == CROSS
        log = community.node("Nought").ctx.evidence
        rejected = [entry for entry in log.entries("response-sent")
                    if entry.payload["response"]["payload"]["decision"]["verdict"] == "reject"]
        assert rejected

    def test_out_of_turn_move_rejected(self):
        community, cross, nought, objects = play_game(seed=1)
        cross.save_move(4)
        with pytest.raises(ValidationFailed):
            cross.save_move(5)  # it's Nought's turn

    def test_complete_game_to_victory(self):
        community, cross, nought, objects = play_game(seed=2)
        cross.save_move(0)
        nought.save_move(3)
        cross.save_move(1)
        nought.save_move(4)
        cross.save_move(2)  # top row: X wins
        community.settle(1.0)
        assert objects["Nought"].winner == CROSS
        with pytest.raises(ValidationFailed):
            nought.save_move(5)  # game over

    def test_load_board(self):
        community, cross, nought, objects = play_game(seed=3)
        cross.save_move(4)
        community.settle(1.0)
        board = nought.load_board()
        assert board[4] == CROSS

    def test_cell_bounds(self):
        community, cross, nought, objects = play_game(seed=4)
        with pytest.raises(RuleViolation):
            cross.save_move(9)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=9,
                    max_size=9, unique=True))
    def test_random_full_games_stay_consistent(self, cells):
        """Property: alternating players filling random cells always keep
        both replicas identical and the winner consistent."""
        community, cross, nought, objects = play_game(seed=sum(cells))
        players = [cross, nought]
        turn = 0
        for cell in cells:
            community.settle(1.0)  # let the previous m3 land everywhere
            if objects["Cross"].winner:
                break
            players[turn % 2].save_move(cell)
            turn += 1
        community.settle(2.0)
        assert objects["Cross"].board == objects["Nought"].board
        assert objects["Cross"].winner == winner_of(objects["Cross"].board)


class TestProposerIdentityRule:
    def test_non_player_party_may_relay(self):
        # A TTP (not in the players map) may propose any legal successor.
        players = {"Cross": CROSS, "Nought": NOUGHT}
        game = TicTacToeObject(players)
        proposed = {
            "board": [EMPTY] * 4 + [CROSS] + [EMPTY] * 4,
            "next": NOUGHT, "winner": EMPTY,
        }
        decision = game.validate_state(proposed, initial_board(), "TTP")
        assert decision.accepted

    def test_player_cannot_place_opponents_mark(self):
        players = {"Cross": CROSS, "Nought": NOUGHT}
        game = TicTacToeObject(players)
        proposed = {
            "board": [NOUGHT] + [EMPTY] * 8,
            "next": CROSS, "winner": EMPTY,
        }
        current = initial_board()
        current["next"] = NOUGHT
        decision = game.validate_state(proposed, current, "Cross")
        assert not decision.accepted
