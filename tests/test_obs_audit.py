"""Evidence forensics: ``repro audit`` over the Figure 5 cheat scenario."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import _run_forensic_game, main
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.signature import RsaVerifier
from repro.obs.audit import (
    CorruptEvidenceLog,
    audit_evidence,
    load_evidence_log,
)
from repro.obs.merge import merge_trace_files
from repro.obs.recording import RecordingInstrumentation

PARTIES = ("Cross", "Nought", "Witness")


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """One instrumented lossy-link game with the Figure 5 cheat, exported
    the way a real deployment would hand things to an auditor: per-party
    trace files, per-organisation evidence logs, and a keys.json."""
    export_dir = str(tmp_path_factory.mktemp("forensics"))
    _community, objects, rejected, _obs, trace_paths = _run_forensic_game(
        seed=3, latency=0.005, drop=0.15, duplicate=0.05,
        export_dir=export_dir,
    )
    return {
        "export_dir": export_dir,
        "rejected": rejected,
        "board": objects["Witness"].board,
        "trace_paths": dict(trace_paths),
        "evidence": {name: os.path.join(export_dir, "evidence", name,
                                        "evidence.jsonl")
                     for name in PARTIES},
        "keys": os.path.join(export_dir, "keys.json"),
    }


def _verifiers(keys_path):
    with open(keys_path, encoding="utf-8") as handle:
        key_data = json.load(handle)
    parties = {party: RsaVerifier(RsaPublicKey.from_dict(key))
               for party, key in key_data["parties"].items()}
    tsa = RsaVerifier(RsaPublicKey.from_dict(key_data["tsa"]))
    return parties, tsa


def _audit(artifacts, merged=None, obs=None, logs=None):
    verifiers, tsa_verifier = _verifiers(artifacts["keys"])
    if logs is None:
        logs = {name: load_evidence_log(name, path)
                for name, path in artifacts["evidence"].items()}
    return audit_evidence(logs, verifiers.__getitem__,
                          tsa_verifier=tsa_verifier, merged=merged, obs=obs)


class TestArtifacts:
    def test_game_exports_per_party_artifacts(self, artifacts):
        assert sorted(artifacts["trace_paths"]) == sorted(PARTIES)
        for path in artifacts["trace_paths"].values():
            assert os.path.getsize(path) > 0
        for path in artifacts["evidence"].values():
            assert os.path.getsize(path) > 0
        assert os.path.exists(artifacts["keys"])
        # The cheat was vetoed on the wire; every honest move stuck.
        assert artifacts["rejected"] == 1
        assert artifacts["board"].count("") == 4  # 5 honest moves landed


class TestAuditVerdicts:
    def test_convicts_cheater_exonerates_honest_parties(self, artifacts):
        report = _audit(artifacts)
        assert report.culprits() == ["Cross"]
        assert all(status.intact for status in report.submissions)
        cheat = [f for f in report.runs if f.culprits]
        assert len(cheat) == 1
        finding = cheat[0]
        assert finding.proposer == "Cross"
        assert sorted(finding.vetoes) == ["Nought", "Witness"]
        assert finding.exonerated == ["Nought", "Witness"]
        assert "signed vetoes prove the proposal was invalid" in finding.verdict
        assert "may not place" in finding.verdict

    def test_valid_runs_exonerate_everyone(self, artifacts):
        report = _audit(artifacts)
        valid = [f for f in report.runs if f.valid]
        assert valid  # the honest moves all reached unanimous agreement
        for finding in valid:
            assert finding.authentic and not finding.culprits
            assert finding.exonerated == sorted(PARTIES)

    def test_contention_veto_is_not_misbehaviour(self, artifacts):
        """Two honest proposers racing produces busy/invariant vetoes;
        the audit must not convict either of them."""
        report = _audit(artifacts)
        contended = [f for f in report.runs
                     if "benign contention" in f.verdict]
        assert contended  # seed 3 produces at least one proposer race
        for finding in contended:
            assert finding.vetoes and not finding.culprits
            assert finding.exonerated == sorted(PARTIES)

    def test_rulings_reverify_through_arbiter(self, artifacts):
        report = _audit(artifacts)
        by_outcome: "dict[str, int]" = {}
        for ruling in report.rulings:
            by_outcome[ruling.outcome] = by_outcome.get(ruling.outcome, 0) + 1
        # Honest moves upheld, the cheat's state-validity claim rejected.
        assert by_outcome.get("upheld", 0) >= 4
        assert by_outcome.get("rejected", 0) >= 1
        participation = [r for r in report.rulings
                         if "participated" in r.claim]
        assert participation and participation[0].outcome == "upheld"


class TestTraceCrossReference:
    def test_cheat_run_annotated_with_traced_vetoes(self, artifacts):
        merged = merge_trace_files(sorted(artifacts["trace_paths"].values()))
        report = _audit(artifacts, merged=merged)
        finding = next(f for f in report.runs if f.culprits)
        notes = "\n".join(finding.trace_notes)
        assert "causal events across ['Cross', 'Nought', 'Witness']" in notes
        assert "Nought vetoed" in notes and "Witness vetoed" in notes
        # Evidence and trace agree on who vetoed: no mismatch flagged.
        assert "MISMATCH" not in notes
        assert any("settled invalid" in note for note in finding.trace_notes)
        assert report.anomalies  # the vetoes at minimum

    def test_report_renders_conviction(self, artifacts):
        merged = merge_trace_files(sorted(artifacts["trace_paths"].values()))
        report = _audit(artifacts, merged=merged)
        text = report.render()
        assert "=== evidence audit ===" in text
        assert "log intact" in text
        assert "arbiter rulings:" in text
        assert "trace anomalies:" in text
        assert "MISBEHAVING PARTIES: ['Cross']" in text


class TestCorruptEvidence:
    def test_tampered_log_convicts_its_owner(self, artifacts, tmp_path):
        """A party that rewrites its own history breaks the hash chain;
        the audit records the corruption as a finding against it."""
        tampered_path = str(tmp_path / "evidence.jsonl")
        with open(artifacts["evidence"]["Witness"], encoding="utf-8") as src:
            lines = src.readlines()
        record = json.loads(lines[1])
        record["payload"]["run_id"] = "0" * 64  # rewrite one signed entry
        lines[1] = json.dumps(record, sort_keys=True) + "\n"
        with open(tampered_path, "w", encoding="utf-8") as dst:
            dst.writelines(lines)

        log = load_evidence_log("Witness", tampered_path)
        assert isinstance(log, CorruptEvidenceLog)
        logs = {name: load_evidence_log(name, path)
                for name, path in artifacts["evidence"].items()
                if name != "Witness"}
        logs["Witness"] = log
        report = _audit(artifacts, logs=logs)
        witness = next(s for s in report.submissions
                       if s.party_id == "Witness")
        assert not witness.intact and witness.error
        assert "Witness" in report.culprits()
        # Cross is still convicted from the other parties' copies.
        assert "Cross" in report.culprits()

    def test_missing_file_is_corrupt_not_crash(self, tmp_path):
        log = load_evidence_log("Ghost", str(tmp_path / "nope.jsonl"))
        # An empty store replays to an empty (intact) chain.
        assert log.verify_chain() == 0


class TestArbiterInstrumentation:
    def test_dispute_counters_and_latency(self, artifacts):
        obs = RecordingInstrumentation(collect=True)
        report = _audit(artifacts, obs=obs)
        registry = obs.registry
        assert registry.counter_value("dispute.submissions") == 3
        assert registry.counter_value("dispute.submissions.corrupt") == 0
        claims = registry.counter_value("dispute.claims_checked")
        assert claims == len(report.rulings)
        assert registry.histogram("dispute.claim_seconds").count == claims
        assert registry.counter_value("dispute.rulings.upheld") >= 4
        assert registry.counter_value("dispute.rulings.rejected") >= 1
        rulings = obs.collector.named("dispute.ruling")
        assert len(rulings) == claims
        kinds = {r.attrs["claim"] for r in rulings}
        assert "state-validity" in kinds and "participation" in kinds


class TestAuditCli:
    def _argv(self, artifacts, *extra):
        argv = ["audit", "--keys", artifacts["keys"]]
        for name, path in sorted(artifacts["evidence"].items()):
            argv += ["--log", f"{name}={path}"]
        for path in sorted(artifacts["trace_paths"].values()):
            argv += ["--trace", path]
        return argv + list(extra)

    def test_expected_culprit_convicted_exits_zero(self, artifacts, capsys,
                                                   tmp_path):
        merged_out = str(tmp_path / "merged.jsonl")
        code = main(self._argv(artifacts, "--merged-out", merged_out,
                               "--timeline", "--timeline-events", "4",
                               "--expect-culprit", "Cross"))
        out = capsys.readouterr().out
        assert code == 0
        assert "merged causal timeline" in out
        assert "MISBEHAVING PARTIES: ['Cross']" in out
        assert "expected culprit 'Cross' convicted" in out
        merged_records = [json.loads(line)
                          for line in open(merged_out, encoding="utf-8")]
        assert merged_records and all("lamport" in r for r in merged_records)

    def test_wrong_expected_culprit_exits_nonzero(self, artifacts, capsys):
        code = main(self._argv(artifacts, "--expect-culprit", "Witness"))
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED: expected culprit 'Witness'" in out

    def test_malformed_log_spec_rejected(self, artifacts, capsys):
        code = main(["audit", "--keys", artifacts["keys"],
                     "--log", "no-equals-sign"])
        assert code == 2
        assert "--log expects PARTY=PATH" in capsys.readouterr().out
