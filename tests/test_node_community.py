"""Organisation nodes and community deployment."""

from __future__ import annotations

import pytest

from repro.core import Community, DictB2BObject, SimRuntime, ThreadedRuntime
from repro.errors import ConfigurationError, NotConnectedError, ValidationFailed
from repro.protocol.events import MembershipChanged
from repro.protocol.validation import CallbackValidator, Decision


class TestCommunityConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Community(["A", "A"])

    def test_nodes_created(self, make_community):
        community = make_community(["A", "B", "C"])
        assert community.names() == ["A", "B", "C"]
        assert community.node("A").party_id == "A"

    def test_certificates_cross_validated(self, make_community):
        community = make_community(["A", "B"])
        # A can verify B's signature through its certificate store
        signer = community.node("B").ctx.signer
        signature = signer.sign({"x": 1})
        verifier = community.node("A").ctx.resolver("B")
        assert verifier.verify({"x": 1}, signature)

    def test_add_organisation_later(self, make_community):
        community = make_community(["A"])
        community.add_organisation("B")
        assert "B" in community.names()
        with pytest.raises(ConfigurationError):
            community.add_organisation("B")

    def test_resolver_for_unknown_party(self, make_community):
        community = make_community(["A"])
        with pytest.raises(ConfigurationError):
            community.resolver("Ghost")

    def test_virtual_clock_shared_with_simulation(self, make_community):
        community = make_community(["A"])
        assert community.clock.now() == community.runtime.network.now()


class TestFoundObject:
    def test_divergent_initial_states_rejected(self, make_community):
        community = make_community(["A", "B"])
        objects = {"A": DictB2BObject({"x": 1}), "B": DictB2BObject({"x": 2})}
        with pytest.raises(ConfigurationError, match="disagree"):
            community.found_object("shared", objects)

    def test_subset_founding(self, make_community):
        community = make_community(["A", "B", "C"])
        objects = {"A": DictB2BObject(), "B": DictB2BObject()}
        controllers = community.found_object("shared", objects)
        assert set(controllers) == {"A", "B"}
        with pytest.raises(NotConnectedError):
            community.node("C").party.session("shared")


class TestNodeLifecycle:
    def test_connect_then_leave(self, make_community):
        community = make_community(["A", "B", "C"])
        objects = {"A": DictB2BObject(), "B": DictB2BObject()}
        controllers = community.found_object("shared", objects)
        c_obj = DictB2BObject()
        controller_c = community.node("C").connect("shared", c_obj, "B")
        community.settle()
        assert controller_c.members() == ["A", "B", "C"]
        controller_c.disconnect()
        community.settle()
        assert controllers["A"].members() == ["A", "B"]
        assert not controller_c.is_connected()

    def test_rejected_connection_raises(self, make_community):
        community = make_community(["A", "B", "C"])
        objects = {
            "A": DictB2BObject(), "B": DictB2BObject(),
        }
        community.found_object("shared", objects)
        # B (the sponsor) refuses admissions
        community.node("B").party.session("shared").membership.validator = (
            CallbackValidator(connect=lambda s, m: Decision.reject("closed"))
        )
        with pytest.raises(NotConnectedError):
            community.node("C").connect("shared", DictB2BObject(), "B")

    def test_eviction_through_controller(self, make_community):
        community = make_community(["A", "B", "C"])
        objects = {n: DictB2BObject() for n in community.names()}
        controllers = community.found_object("shared", objects)
        controllers["A"].evict(["B"])
        community.settle()
        assert controllers["A"].members() == ["A", "C"]

    def test_misbehaviour_reports_collected(self, make_community):
        community = make_community(["A", "B"])
        objects = {n: DictB2BObject() for n in community.names()}
        community.found_object("shared", objects)
        from repro.faults import ForgedCommitAuth
        ForgedCommitAuth(community.node("A"))
        c = community.node("A").controllers["shared"]
        c.enter(); c.overwrite()
        objects["A"].set_attribute("x", 1)
        c.leave()
        community.settle()
        assert any(r.kind == "forged-commit"
                   for r in community.node("B").misbehaviour_reports)

    def test_event_listeners(self, make_community):
        community = make_community(["A", "B", "C"])
        objects = {n: DictB2BObject() for n in community.names()}
        controllers = community.found_object("shared", objects)
        seen = []
        community.node("B").add_listener(seen.append)
        controllers["A"].evict(["C"])
        community.settle()
        assert any(isinstance(e, MembershipChanged) for e in seen)

    def test_check_progress_on_healthy_node(self, make_community):
        community = make_community(["A", "B"])
        objects = {n: DictB2BObject() for n in community.names()}
        community.found_object("shared", objects)
        assert community.node("A").check_progress(timeout=100.0) == []


class TestThreadedCommunity:
    def test_tcp_coordination_and_join(self):
        runtime = ThreadedRuntime()
        try:
            community = Community(["A", "B"], runtime=runtime,
                                  retransmit_interval=0.2)
            objects = {n: DictB2BObject() for n in ["A", "B"]}
            controllers = community.found_object("shared", objects)
            c = controllers["A"]
            c.enter(); c.overwrite()
            objects["A"].set_attribute("k", 1)
            c.leave()
            runtime.settle(0.2)
            assert objects["B"].get_attribute("k") == 1

            community.add_organisation("C")
            c_obj = DictB2BObject()
            controller_c = community.node("C").connect("shared", c_obj, "B")
            runtime.settle(0.2)
            assert controller_c.members() == ["A", "B", "C"]
            assert c_obj.get_attribute("k") == 1
        finally:
            runtime.close()

    def test_tcp_veto(self):
        runtime = ThreadedRuntime()
        try:
            community = Community(["A", "B"], runtime=runtime,
                                  retransmit_interval=0.2)
            objects = {n: DictB2BObject() for n in ["A", "B"]}
            controllers = community.found_object("shared", objects)
            community.node("B").party.session("shared").state.validator = (
                CallbackValidator(state=lambda p, c, pr: Decision.reject("no"))
            )
            c = controllers["A"]
            c.enter(); c.overwrite()
            objects["A"].set_attribute("k", 1)
            with pytest.raises(ValidationFailed):
                c.leave()
            assert objects["A"].get_attribute("k") is None
        finally:
            runtime.close()
