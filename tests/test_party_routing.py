"""ProtocolParty message routing and multi-object sessions."""

from __future__ import annotations

import pytest

from repro.errors import MembershipError, NotConnectedError
from repro.protocol.events import ConnectionDecided
from repro.protocol.party import extract_object_name

from tests.engine_helpers import EngineHarness, found


def make_harness(members=("A", "B"), seed=0):
    harness = EngineHarness(list(members), seed=seed)
    found(harness, "obj", list(members), {"v": 0})
    return harness


class TestExtractObjectName:
    def test_top_level_object(self):
        assert extract_object_name({"object": "x"}) == "x"

    def test_from_signed_part(self):
        message = {"part": {"payload": {"object": "y"}}}
        assert extract_object_name(message) == "y"

    def test_from_proposal(self):
        message = {"proposal": {"payload": {"object": "z"}}}
        assert extract_object_name(message) == "z"

    def test_missing(self):
        assert extract_object_name({"msg_type": "propose"}) is None
        assert extract_object_name({"proposal": "junk"}) is None


class TestRouting:
    def test_message_for_unknown_object_ignored(self):
        harness = make_harness()
        output = harness.party("B").handle(
            "A", {"msg_type": "propose", "object": "ghost", "proposal": {}}
        )
        assert output.messages == [] and output.events == []

    def test_message_without_msg_type_ignored(self):
        harness = make_harness()
        output = harness.party("B").handle("A", {"object": "obj"})
        assert output.messages == [] and output.events == []

    def test_detached_session_ignores_state_messages(self):
        harness = make_harness(("A", "B", "C"))
        # B leaves voluntarily...
        _, output = harness.party("B").session("obj").membership.request_disconnect()
        harness.pump("B", output)
        assert harness.party("B").sessions["obj"].detached
        # ...then a straggler proposal arrives at B: dropped silently.
        run_id, output = harness.party("A").session("obj").state.propose_overwrite(
            {"v": 1}
        )
        message = output.messages[0][1]
        response = harness.party("B").handle("A", message)
        assert response.messages == []

    def test_session_accessor_raises_for_detached(self):
        harness = make_harness(("A", "B", "C"))
        _, output = harness.party("B").session("obj").membership.request_disconnect()
        harness.pump("B", output)
        with pytest.raises(NotConnectedError):
            harness.party("B").session("obj")
        assert not harness.party("B").is_connected("obj")


class TestMultiObjectSessions:
    def test_independent_groups_per_object(self):
        harness = EngineHarness(["A", "B", "C"], seed=5)
        found(harness, "alpha", ["A", "B"], {"x": 0})
        found(harness, "beta", ["B", "C"], {"y": 0})
        # A change to alpha does not touch beta and vice versa.
        _, output = harness.party("A").session("alpha").state.propose_overwrite(
            {"x": 1}
        )
        harness.pump("A", output)
        _, output = harness.party("C").session("beta").state.propose_overwrite(
            {"y": 2}
        )
        harness.pump("C", output)
        assert harness.party("B").session("alpha").state.agreed_state == {"x": 1}
        assert harness.party("B").session("beta").state.agreed_state == {"y": 2}
        with pytest.raises(NotConnectedError):
            harness.party("A").session("beta")

    def test_same_object_name_requires_membership(self):
        harness = EngineHarness(["A", "B"], seed=6)
        with pytest.raises(MembershipError, match="local party"):
            harness.party("A").create_object("obj", ["B"], {})

    def test_duplicate_create_rejected(self):
        harness = make_harness()
        with pytest.raises(MembershipError, match="already exists"):
            harness.party("A").create_object("obj", ["A", "B"], {})


class TestJoinLifecycle:
    def test_duplicate_join_request_rejected_locally(self):
        harness = make_harness(("A", "B"))
        harness.add_party("C")
        harness.party("C").join_object("obj", "B")  # pending (not pumped)
        with pytest.raises(MembershipError, match="pending"):
            harness.party("C").join_object("obj", "B")

    def test_rejected_join_allows_retry(self):
        from repro.protocol.validation import CallbackValidator, Decision
        harness = make_harness(("A", "B"), seed=7)
        harness.party("B").session("obj").membership.validator = (
            CallbackValidator(connect=lambda s, m: Decision.reject("later"))
        )
        harness.add_party("C")
        harness.pump("C", harness.party("C").join_object("obj", "B"))
        decided = harness.events_of("C", ConnectionDecided)
        assert decided and not decided[0].accepted
        # a fresh attempt is allowed after the rejection
        harness.party("B").session("obj").membership.validator = (
            CallbackValidator()
        )
        harness.pump("C", harness.party("C").join_object("obj", "B"))
        assert harness.party("C").is_connected("obj")

    def test_pending_join_accessor(self):
        harness = make_harness(("A", "B"))
        harness.add_party("C")
        assert harness.party("C").pending_join("obj") is None
        harness.party("C").join_object("obj", "B")
        assert harness.party("C").pending_join("obj") is not None

    def test_welcome_for_unknown_join_ignored(self):
        harness = make_harness(("A", "B"))
        output = harness.party("B").handle(
            "A", {"msg_type": "connect_welcome",
                  "part": {"payload": {"object": "ghost"}}}
        )
        assert output.messages == [] and output.events == []
