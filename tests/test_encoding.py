"""Canonical encoding: determinism, round-trips, and rejection rules."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.encoding import b64, canonical_bytes, from_canonical_bytes, unb64


class TestCanonicalBytes:
    def test_dict_key_order_is_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_nested_structures_round_trip(self):
        value = {"a": [1, 2, {"b": b"\x00\xff", "c": None}], "d": True}
        assert from_canonical_bytes(canonical_bytes(value)) == value

    def test_bytes_round_trip(self):
        value = {"blob": bytes(range(256))}
        assert from_canonical_bytes(canonical_bytes(value)) == value

    def test_tuples_normalise_to_lists(self):
        assert canonical_bytes((1, 2)) == canonical_bytes([1, 2])

    def test_distinct_values_encode_distinctly(self):
        assert canonical_bytes({"a": 1}) != canonical_bytes({"a": 2})

    def test_bool_and_int_are_distinguished_from_each_other(self):
        # JSON maps True -> true and 1 -> 1, which differ.
        assert canonical_bytes(True) != canonical_bytes(1)

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError):
            canonical_bytes({1: "a"})

    def test_reserved_key_rejected(self):
        with pytest.raises(ValueError):
            canonical_bytes({"__b64__": "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_bytes({"x": object()})

    def test_float_round_trip(self):
        value = {"f": 0.1}
        assert from_canonical_bytes(canonical_bytes(value)) == value

    def test_output_is_ascii(self):
        canonical_bytes({"text": "héllo ünïcode"}).decode("ascii")


json_values = st.recursive(
    st.none() | st.booleans() | st.integers(min_value=-(2**53), max_value=2**53)
    | st.text(max_size=20) | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(
        st.text(max_size=8).filter(lambda s: s != "__b64__" and s != "__float__"),
        children, max_size=4,
    ),
    max_leaves=12,
)


class TestCanonicalProperties:
    @given(json_values)
    def test_round_trip(self, value):
        assert from_canonical_bytes(canonical_bytes(value)) == value

    @given(json_values)
    def test_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    @given(st.binary(max_size=64))
    def test_b64_round_trip(self, data):
        assert unb64(b64(data)) == data
