"""Store-and-forward (MOM) transport (section 7)."""

from __future__ import annotations

import pytest

from repro.core import (
    DEFERRED_SYNCHRONOUS,
    Community,
    DictB2BObject,
    SimRuntime,
)
from repro.storage.backends import MemoryRecordStore
from repro.transport.base import Envelope
from repro.transport.mom import BrokeredSimNetwork
from repro.transport.reliable import ReliableEndpoint


def make_community(seed=0, **net_kwargs):
    network = BrokeredSimNetwork(seed=seed, **net_kwargs)
    runtime = SimRuntime(network=network)
    community = Community(["OrgA", "OrgB"], runtime=runtime)
    replicas = {n: DictB2BObject() for n in community.names()}
    controllers = community.found_object("shared", replicas)
    return community, network, controllers, replicas


class TestBrokeredDelivery:
    def test_basic_store_and_forward(self):
        network = BrokeredSimNetwork(seed=1)
        got = []
        network.register("B", got.append)
        network.send(Envelope("A", "B", {"x": 1}))
        network.run(max_time=1.0)
        assert len(got) == 1

    def test_detached_recipient_accumulates_mail(self):
        network = BrokeredSimNetwork(seed=2)
        got = []
        network.register("B", got.append)
        network.detach("B")
        for i in range(3):
            network.send(Envelope("A", "B", {"i": i}))
        network.run(max_time=1.0)
        assert got == []
        assert network.mailbox_depth("B") == 3
        network.attach("B")
        network.run(max_time=2.0)
        assert [e.payload["i"] for e in got] == [0, 1, 2]
        assert network.mailbox_depth("B") == 0

    def test_ordering_preserved_per_mailbox(self):
        network = BrokeredSimNetwork(seed=3)
        got = []
        network.register("B", got.append)
        for i in range(10):
            network.send(Envelope("A", "B", {"i": i}))
        network.run(max_time=2.0)
        assert [e.payload["i"] for e in got] == list(range(10))

    def test_crashed_endpoint_keeps_mail_queued(self):
        network = BrokeredSimNetwork(seed=4)
        got = []
        network.register("B", got.append)
        network.crash("B")
        network.send(Envelope("A", "B", {"x": 1}))
        network.run(max_time=0.5)
        assert got == [] and network.mailbox_depth("B") == 1
        network.recover("B")
        network.run(max_time=2.0)
        assert len(got) == 1  # mail survived the crash (vs. direct network)

    def test_mailbox_durability_hook(self):
        stores = {}

        def factory(recipient):
            stores[recipient] = MemoryRecordStore()
            return stores[recipient]

        network = BrokeredSimNetwork(seed=5, mailbox_store_factory=factory)
        network.register("B", lambda e: None)
        network.send(Envelope("A", "B", {"x": 1}))
        network.run(max_time=1.0)
        assert len(stores["B"]) == 1

    def test_reliable_layer_over_broker(self):
        network = BrokeredSimNetwork(seed=6)
        inbox = []
        sender = ReliableEndpoint("A", network, retransmit_interval=0.1)
        receiver = ReliableEndpoint("B", network, retransmit_interval=0.1)
        receiver.on_message(lambda peer, payload: inbox.append(payload))
        network.detach("B")
        sender.send("B", {"x": 1})
        network.run(max_time=1.0)
        assert inbox == []
        network.attach("B")
        network.run(max_time=5.0)
        # retransmissions may have queued duplicates; dedup gives once-only
        assert inbox == [{"x": 1}]


class TestCoordinationOverMom:
    def test_online_coordination(self):
        community, network, controllers, replicas = make_community(seed=10)
        controller = controllers["OrgA"]
        controller.enter()
        controller.overwrite()
        replicas["OrgA"].set_attribute("k", 1)
        controller.leave()
        community.settle(2.0)
        assert replicas["OrgB"].get_attribute("k") == 1

    def test_offline_peer_coordination_completes_on_attach(self):
        community, network, controllers, replicas = make_community(seed=11)
        network.detach("OrgB")
        controller = controllers["OrgA"]
        controller.mode = DEFERRED_SYNCHRONOUS
        controller.enter()
        controller.overwrite()
        replicas["OrgA"].set_attribute("k", 2)
        ticket = controller.leave()
        community.settle(2.0)
        assert not ticket.done
        assert network.mailbox_depth("OrgB") > 0
        network.attach("OrgB")
        community.settle(5.0)
        assert ticket.done and ticket.valid
        assert replicas["OrgB"].get_attribute("k") == 2

    def test_evidence_intact_after_offline_exchange(self):
        community, network, controllers, replicas = make_community(seed=12)
        network.detach("OrgB")
        controller = controllers["OrgA"]
        controller.mode = DEFERRED_SYNCHRONOUS
        controller.enter()
        controller.overwrite()
        replicas["OrgA"].set_attribute("k", 3)
        ticket = controller.leave()
        network.attach("OrgB")
        community.settle(5.0)
        controller.coord_commit(ticket)
        for name in community.names():
            assert community.node(name).ctx.evidence.verify_chain() > 0
