"""Group view: membership ordering and sponsor selection (section 4.5.1)."""

from __future__ import annotations

import pytest

from repro.errors import MembershipError
from repro.protocol.group import FIXED, ROTATING, GroupView
from repro.protocol.ids import initial_group_id, new_group_id
from repro.crypto.prng import DeterministicRandomSource


def make_group(members, mode=ROTATING):
    return GroupView("obj", list(members), sponsor_mode=mode)


class TestConstruction:
    def test_requires_members(self):
        with pytest.raises(MembershipError):
            make_group([])

    def test_rejects_duplicates(self):
        with pytest.raises(MembershipError):
            make_group(["A", "A"])

    def test_rejects_unknown_mode(self):
        with pytest.raises(MembershipError):
            GroupView("obj", ["A"], sponsor_mode="whoever")

    def test_genesis_group_id(self):
        group = make_group(["A", "B"])
        assert group.group_id == initial_group_id(["A", "B"])


class TestQueries:
    def test_contains_and_len(self):
        group = make_group(["A", "B", "C"])
        assert "B" in group and "Z" not in group
        assert len(group) == 3

    def test_others(self):
        group = make_group(["A", "B", "C"])
        assert group.others("B") == ["A", "C"]

    def test_recipients_excluding(self):
        group = make_group(["A", "B", "C", "D"])
        assert group.recipients_excluding("B", "D") == ["A", "C"]


class TestSponsorSelection:
    def test_connect_sponsor_is_most_recent(self):
        group = make_group(["A", "B", "C"])
        assert group.connect_sponsor() == "C"

    def test_connect_sponsor_fixed_mode(self):
        group = make_group(["A", "B", "C"], mode=FIXED)
        assert group.connect_sponsor() == "A"

    def test_disconnect_sponsor_default(self):
        group = make_group(["A", "B", "C"])
        assert group.disconnect_sponsor("A") == "C"
        assert group.disconnect_sponsor("B") == "C"

    def test_disconnect_sponsor_when_subject_is_most_recent(self):
        group = make_group(["A", "B", "C"])
        assert group.disconnect_sponsor("C") == "B"

    def test_disconnect_sponsor_fixed_mode_subject_is_oldest(self):
        group = make_group(["A", "B", "C"], mode=FIXED)
        assert group.disconnect_sponsor("A") == "B"
        assert group.disconnect_sponsor("B") == "A"

    def test_disconnect_unknown_subject(self):
        with pytest.raises(MembershipError):
            make_group(["A"]).disconnect_sponsor("Z")

    def test_cannot_disconnect_last_member(self):
        with pytest.raises(MembershipError):
            make_group(["A"]).disconnect_sponsor("A")

    def test_eviction_sponsor_skips_subjects(self):
        group = make_group(["A", "B", "C", "D"])
        assert group.eviction_sponsor(["D"]) == "C"
        assert group.eviction_sponsor(["C", "D"]) == "B"

    def test_cannot_evict_everyone(self):
        with pytest.raises(MembershipError):
            make_group(["A", "B"]).eviction_sponsor(["A", "B"])


class TestMutation:
    def test_membership_after_connect_appends(self):
        group = make_group(["A", "B"])
        assert group.membership_after_connect("C") == ["A", "B", "C"]

    def test_connect_existing_member_rejected(self):
        with pytest.raises(MembershipError):
            make_group(["A", "B"]).membership_after_connect("B")

    def test_membership_after_removal(self):
        group = make_group(["A", "B", "C"])
        assert group.membership_after_removal(["B"]) == ["A", "C"]
        assert group.membership_after_removal(["A", "C"]) == ["B"]

    def test_removal_of_non_member_rejected(self):
        with pytest.raises(MembershipError):
            make_group(["A"]).membership_after_removal(["Z"])

    def test_removal_of_everyone_rejected(self):
        with pytest.raises(MembershipError):
            make_group(["A", "B"]).membership_after_removal(["A", "B"])

    def test_apply_change_validates_gid(self):
        group = make_group(["A", "B"])
        rng = DeterministicRandomSource(1)
        gid, _ = new_group_id(0, ["A", "B", "C"], rng)
        group.apply_change(["A", "B", "C"], gid)
        assert group.members == ["A", "B", "C"]
        bad_gid, _ = new_group_id(1, ["X"], rng)
        with pytest.raises(MembershipError):
            group.apply_change(["A", "B"], bad_gid)

    def test_clone_is_independent(self):
        group = make_group(["A", "B"])
        clone = group.clone()
        rng = DeterministicRandomSource(2)
        gid, _ = new_group_id(0, ["A", "B", "C"], rng)
        clone.apply_change(["A", "B", "C"], gid)
        assert group.members == ["A", "B"]
