"""Connection / disconnection / eviction protocols (section 4.5)."""

from __future__ import annotations

import pytest

from repro.errors import MembershipError
from repro.protocol.events import (
    ConnectionDecided,
    DisconnectionDecided,
    MembershipChanged,
    MisbehaviourEvent,
    RunBlocked,
    RunCompleted,
)
from repro.protocol.validation import CallbackValidator, Decision

from tests.engine_helpers import EngineHarness, found


def make_harness(members, seed=0, initial=None, **kwargs):
    harness = EngineHarness(list(members), seed=seed)
    found(harness, "obj", list(members), initial if initial is not None else {"v": 0},
          **kwargs)
    return harness


def group_of(harness, name):
    return harness.party(name).session("obj").group


def state_of(harness, name):
    return harness.party(name).session("obj").state


def membership_of(harness, name):
    return harness.party(name).session("obj").membership


class TestConnection:
    def test_join_via_sponsor(self):
        harness = make_harness(["A", "B"])
        harness.add_party("C")
        output = harness.party("C").join_object("obj", "B")
        harness.pump("C", output)
        assert harness.party("C").is_connected("obj")
        for name in ["A", "B", "C"]:
            assert group_of(harness, name).members == ["A", "B", "C"]
        decided = harness.events_of("C", ConnectionDecided)[0]
        assert decided.accepted and decided.state == {"v": 0}

    def test_joiner_receives_current_agreed_state(self):
        harness = make_harness(["A", "B"])
        _, output = state_of(harness, "A").propose_overwrite({"v": 42})
        harness.pump("A", output)
        harness.add_party("C")
        output = harness.party("C").join_object("obj", "B")
        harness.pump("C", output)
        joined = state_of(harness, "C")
        assert joined.agreed_state == {"v": 42}
        assert joined.agreed_sid == state_of(harness, "A").agreed_sid

    def test_group_identifier_advances_consistently(self):
        harness = make_harness(["A", "B"])
        harness.add_party("C")
        harness.pump("C", harness.party("C").join_object("obj", "B"))
        gids = {group_of(harness, n).group_id for n in ["A", "B", "C"]}
        assert len(gids) == 1
        assert next(iter(gids)).seq == 1

    def test_new_member_becomes_next_sponsor(self):
        harness = make_harness(["A", "B"])
        harness.add_party("C")
        harness.pump("C", harness.party("C").join_object("obj", "B"))
        assert group_of(harness, "A").connect_sponsor() == "C"
        harness.add_party("D")
        harness.pump("D", harness.party("D").join_object("obj", "C"))
        assert group_of(harness, "A").members == ["A", "B", "C", "D"]

    def test_member_veto_rejects_connection(self):
        harness = make_harness(["A", "B"])
        membership_of(harness, "A").validator = CallbackValidator(
            connect=lambda subject, members: Decision.reject("not welcome")
        )
        harness.add_party("C")
        harness.pump("C", harness.party("C").join_object("obj", "B"))
        decided = harness.events_of("C", ConnectionDecided)[0]
        assert not decided.accepted
        assert not harness.party("C").is_connected("obj")
        for name in ["A", "B"]:
            assert group_of(harness, name).members == ["A", "B"]

    def test_sponsor_immediate_rejection_looks_identical(self):
        # Subject cannot distinguish sponsor rejection from member veto
        # (section 4.5.3): both arrive as the same signed reject message.
        harness1 = make_harness(["A", "B"], seed=1)
        membership_of(harness1, "B").validator = CallbackValidator(
            connect=lambda s, m: Decision.reject("sponsor says no")
        )
        harness1.add_party("C")
        harness1.pump("C", harness1.party("C").join_object("obj", "B"))
        rejected_by_sponsor = harness1.events_of("C", ConnectionDecided)[0]

        harness2 = make_harness(["A", "B"], seed=2)
        membership_of(harness2, "A").validator = CallbackValidator(
            connect=lambda s, m: Decision.reject("member says no")
        )
        harness2.add_party("C")
        harness2.pump("C", harness2.party("C").join_object("obj", "B"))
        vetoed_by_member = harness2.events_of("C", ConnectionDecided)[0]

        assert rejected_by_sponsor.accepted == vetoed_by_member.accepted == False  # noqa: E712
        assert rejected_by_sponsor.diagnostics == vetoed_by_member.diagnostics

    def test_wrong_sponsor_rejects_request(self):
        harness = make_harness(["A", "B"])
        harness.add_party("C")
        # A is not the legitimate sponsor (B joined last)
        harness.pump("C", harness.party("C").join_object("obj", "A"))
        decided = harness.events_of("C", ConnectionDecided)
        assert decided and not decided[0].accepted

    def test_existing_member_cannot_rejoin(self):
        harness = make_harness(["A", "B"])
        with pytest.raises(MembershipError):
            harness.party("A").join_object("obj", "B")

    def test_singleton_group_admits_directly(self):
        harness = make_harness(["A"])
        harness.add_party("B")
        harness.pump("B", harness.party("B").join_object("obj", "A"))
        assert group_of(harness, "A").members == ["A", "B"]
        assert harness.party("B").is_connected("obj")

    def test_busy_sponsor_rejects(self):
        harness = make_harness(["A", "B", "C"])
        # B (sponsor... most recent is C) -> use C and make it busy
        harness.blocked_edges = {("C", "A"), ("C", "B")}
        _, output = state_of(harness, "C").propose_overwrite({"v": 1})
        harness.pump("C", output)
        harness.blocked_edges = set()
        harness.add_party("D")
        harness.pump("D", harness.party("D").join_object("obj", "C"))
        decided = harness.events_of("D", ConnectionDecided)
        assert decided and not decided[0].accepted

    def test_joined_member_can_propose(self):
        harness = make_harness(["A", "B"])
        harness.add_party("C")
        harness.pump("C", harness.party("C").join_object("obj", "B"))
        _, output = state_of(harness, "C").propose_overwrite({"v": 3})
        harness.pump("C", output)
        for name in ["A", "B", "C"]:
            assert state_of(harness, name).agreed_state == {"v": 3}

    def test_state_change_during_membership_run_rejected(self):
        harness = make_harness(["A", "B", "C"])
        # Members' responses are lost, so the commit never arrives and
        # A stays mid-membership-run.
        harness.blocked_edges = {("A", "C"), ("B", "C")}
        harness.add_party("D")
        harness.pump("D", harness.party("D").join_object("obj", "C"))
        harness.blocked_edges = set()
        assert state_of(harness, "A").membership_change_active
        from repro.errors import ConcurrencyError
        with pytest.raises(ConcurrencyError, match="membership change"):
            state_of(harness, "A").propose_overwrite({"v": 1})


class TestVoluntaryDisconnection:
    def test_disconnect_removes_member(self):
        harness = make_harness(["A", "B", "C"])
        _, output = membership_of(harness, "A").request_disconnect()
        harness.pump("A", output)
        for name in ["B", "C"]:
            assert group_of(harness, name).members == ["B", "C"]
        assert harness.events_of("A", DisconnectionDecided)

    def test_disconnect_cannot_be_vetoed(self):
        harness = make_harness(["A", "B", "C"])
        membership_of(harness, "B").validator = CallbackValidator(
            disconnect=lambda subject, vol, proposer: Decision.reject("stay!")
        )
        _, output = membership_of(harness, "A").request_disconnect()
        harness.pump("A", output)
        assert group_of(harness, "B").members == ["B", "C"]
        # the objection is recorded as evidence
        log = harness.party("B").ctx.evidence
        assert log.find("disconnect-objection") is not None

    def test_most_recent_member_disconnecting_uses_previous_sponsor(self):
        harness = make_harness(["A", "B", "C"])
        _, output = membership_of(harness, "C").request_disconnect()
        harness.pump("C", output)
        assert group_of(harness, "A").members == ["A", "B"]

    def test_two_party_disconnect(self):
        harness = make_harness(["A", "B"])
        _, output = membership_of(harness, "B").request_disconnect()
        harness.pump("B", output)
        assert group_of(harness, "A").members == ["A"]
        # survivor can continue alone
        _, output = state_of(harness, "A").propose_overwrite({"v": 1})
        harness.pump("A", output)
        assert state_of(harness, "A").agreed_state == {"v": 1}

    def test_last_member_cannot_disconnect(self):
        harness = make_harness(["A"])
        with pytest.raises(MembershipError):
            membership_of(harness, "A").request_disconnect()

    def test_departed_member_has_final_evidence(self):
        harness = make_harness(["A", "B", "C"])
        _, output = membership_of(harness, "A").request_disconnect()
        harness.pump("A", output)
        decided = harness.events_of("A", DisconnectionDecided)[0]
        assert decided.evidence is not None
        log = harness.party("A").ctx.evidence
        assert log.find("disconnect-notice-received") is not None


class TestEviction:
    def test_eviction_by_sponsor(self):
        harness = make_harness(["A", "B", "C"])
        # sponsor for evicting A is C (most recent non-subject)
        _, output = membership_of(harness, "C").request_eviction(["A"])
        harness.pump("C", output)
        for name in ["B", "C"]:
            assert group_of(harness, name).members == ["B", "C"]
        # the evictee was never consulted: its view is unchanged
        assert group_of(harness, "A").members == ["A", "B", "C"]

    def test_eviction_requested_by_non_sponsor(self):
        harness = make_harness(["A", "B", "C"])
        _, output = membership_of(harness, "A").request_eviction(["B"])
        harness.pump("A", output)
        for name in ["A", "C"]:
            assert group_of(harness, name).members == ["A", "C"]
        changed = harness.events_of("A", MembershipChanged)
        assert changed and changed[0].change == "evict"

    def test_eviction_can_be_vetoed(self):
        harness = make_harness(["A", "B", "C", "D"])
        membership_of(harness, "A").validator = CallbackValidator(
            disconnect=lambda subject, vol, proposer: Decision.reject("keep B")
        )
        _, output = membership_of(harness, "C").request_eviction(["B"])
        harness.pump("C", output)
        for name in ["A", "B", "C", "D"]:
            assert group_of(harness, name).members == ["A", "B", "C", "D"]

    def test_sponsor_may_reject_eviction_request(self):
        harness = make_harness(["A", "B", "C"])
        membership_of(harness, "C").validator = CallbackValidator(
            disconnect=lambda subject, vol, proposer: Decision.reject("no way")
        )
        _, output = membership_of(harness, "A").request_eviction(["B"])
        harness.pump("A", output)
        assert group_of(harness, "B").members == ["A", "B", "C"]
        completed = [e for e in harness.events_of("A", RunCompleted)
                     if e.kind == "evict"]
        assert completed and not completed[0].valid

    def test_subset_eviction(self):
        harness = make_harness(["A", "B", "C", "D"])
        _, output = membership_of(harness, "A").request_eviction(["B", "C"])
        harness.pump("A", output)
        for name in ["A", "D"]:
            assert group_of(harness, name).members == ["A", "D"]

    def test_cannot_evict_self(self):
        harness = make_harness(["A", "B"])
        with pytest.raises(MembershipError):
            membership_of(harness, "A").request_eviction(["A"])

    def test_cannot_evict_non_member(self):
        harness = make_harness(["A", "B"])
        with pytest.raises(MembershipError):
            membership_of(harness, "A").request_eviction(["Z"])

    def test_post_eviction_state_changes_work(self):
        harness = make_harness(["A", "B", "C"])
        _, output = membership_of(harness, "C").request_eviction(["A"])
        harness.pump("C", output)
        _, output = state_of(harness, "B").propose_overwrite({"v": 5})
        harness.pump("B", output)
        assert state_of(harness, "C").agreed_state == {"v": 5}

    def test_evictee_cannot_impose_state_on_survivors(self):
        harness = make_harness(["A", "B", "C"])
        _, output = membership_of(harness, "C").request_eviction(["A"])
        harness.pump("C", output)
        # A still believes it is a member and proposes
        _, output = state_of(harness, "A").propose_overwrite({"v": 666})
        harness.pump("A", output)
        for name in ["B", "C"]:
            assert state_of(harness, name).agreed_state == {"v": 0}
        completed = [e for e in harness.events_of("A", RunCompleted)
                     if e.kind == "state"]
        assert completed and not completed[-1].valid


class TestMembershipProgress:
    def test_blocked_membership_run_reported(self):
        harness = make_harness(["A", "B", "C"])
        harness.blocked_edges = {("B", "C")}  # C never receives proposal
        harness.add_party("D")
        harness.pump("D", harness.party("D").join_object("obj", "C"))
        # sponsor C sent proposal to A and B... wait: C is sponsor; edge (B, C)
        # blocks B's response so C stays waiting.
        harness.clock.advance(50.0)
        output = harness.party("C").check_progress(timeout=10.0)
        blocked = [e for e in output.events if isinstance(e, RunBlocked)]
        assert blocked and blocked[0].kind == "connect"
        assert blocked[0].waiting_on == ["B"]

    def test_membership_resend_recovers(self):
        harness = make_harness(["A", "B", "C"])
        harness.blocked_edges = {("C", "B")}  # B misses the proposal
        harness.add_party("D")
        harness.pump("D", harness.party("D").join_object("obj", "C"))
        assert not harness.party("D").is_connected("obj")
        harness.blocked_edges = set()
        resend = harness.party("C").resend_outstanding()
        harness.pump("C", resend)
        assert harness.party("D").is_connected("obj")
        for name in ["A", "B", "C", "D"]:
            assert group_of(harness, name).members == ["A", "B", "C", "D"]


class TestSponsorDiscovery:
    """Section 4.5.3: any member can identify the legitimate sponsor."""

    def test_join_via_any_member(self):
        harness = make_harness(["A", "B", "C"])
        harness.add_party("D")
        # D only knows A (the oldest member, not the sponsor).
        output = harness.party("D").join_object("obj", via="A")
        harness.pump("D", output)
        assert harness.party("D").is_connected("obj")
        for name in ["A", "B", "C", "D"]:
            assert group_of(harness, name).members == ["A", "B", "C", "D"]

    def test_join_requires_exactly_one_of_sponsor_or_via(self):
        harness = make_harness(["A", "B"])
        harness.add_party("C")
        with pytest.raises(MembershipError, match="exactly one"):
            harness.party("C").join_object("obj")
        with pytest.raises(MembershipError, match="exactly one"):
            harness.party("C").join_object("obj", "B", via="A")

    def test_unsolicited_sponsor_info_ignored(self):
        harness = make_harness(["A", "B"])
        harness.add_party("C")
        harness.party("C").join_object("obj", via="B")  # pending, unpumped
        output = harness.party("C").handle(
            "A", {"msg_type": "sponsor_info", "object": "obj",
                  "sponsor": "A", "members": ["A"]}
        )
        # advice from a party we never asked is ignored
        assert output.messages == []

    def test_node_level_connect_via(self, ):
        from repro.core import Community, DictB2BObject, SimRuntime
        community = Community(["A", "B", "C"], runtime=SimRuntime(seed=77))
        objects = {n: DictB2BObject({"v": 1}) for n in community.names()}
        community.found_object("shared", objects)
        community.add_organisation("D")
        replica = DictB2BObject({"v": 1})
        controller = community.node("D").connect("shared", replica, via="A")
        community.settle(2.0)
        assert controller.members() == ["A", "B", "C", "D"]
        assert replica.get_attribute("v") == 1
