"""Number theory substrate: primality, primes, modular arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.numbers import (
    bytes_to_int,
    extended_gcd,
    generate_prime,
    int_to_bytes,
    is_probable_prime,
    mod_inverse,
)
from repro.crypto.prng import DeterministicRandomSource

KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 97, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 15, 561, 1105, 1729, 2465, 6601,  # Carmichael
                    2**31, 104729 * 7919]


class TestMillerRabin:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites_including_carmichael(self, c):
        assert not is_probable_prime(c)

    def test_large_prime_uses_random_witnesses(self):
        rng = DeterministicRandomSource(1)
        # 2^521 - 1 is a Mersenne prime above the deterministic bound.
        assert is_probable_prime(2**521 - 1, rng.random_below)

    def test_large_composite(self):
        rng = DeterministicRandomSource(1)
        assert not is_probable_prime((2**521 - 1) * 3, rng.random_below)

    def test_large_candidate_requires_rng(self):
        with pytest.raises(ValueError):
            is_probable_prime(2**400 + 1)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_agrees_with_trial_division(self, n):
        by_division = n > 1 and all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_division


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = DeterministicRandomSource(2)
        for bits in (16, 32, 64):
            p = generate_prime(bits, rng.random_below)
            assert p.bit_length() == bits
            assert is_probable_prime(p, rng.random_below)

    def test_top_two_bits_set(self):
        rng = DeterministicRandomSource(3)
        p = generate_prime(32, rng.random_below)
        assert p >> 30 == 0b11

    def test_too_small_rejected(self):
        rng = DeterministicRandomSource(4)
        with pytest.raises(ValueError):
            generate_prime(4, rng.random_below)


class TestExtendedGcd:
    @given(st.integers(min_value=1, max_value=10**9),
           st.integers(min_value=1, max_value=10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestModInverse:
    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_mod_prime(self, a):
        p = 1_000_003  # prime
        if a % p == 0:
            return
        inv = mod_inverse(a, p)
        assert (a * inv) % p == 1

    def test_no_inverse_when_not_coprime(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)


class TestByteConversion:
    @given(st.integers(min_value=0, max_value=2**256))
    def test_round_trip(self, n):
        assert bytes_to_int(int_to_bytes(n)) == n

    def test_fixed_length_padding(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_bytes(-1)
