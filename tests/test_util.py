"""Clocks and identifier helpers."""

from __future__ import annotations

import pytest

from repro.util.clocks import OffsetClock, SystemClock, VirtualClock
from repro.util.identifiers import SequenceAllocator, qualified_name, validate_party_id


class TestVirtualClock:
    def test_starts_at_configured_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_to_is_monotonic(self):
        clock = VirtualClock(10.0)
        clock.advance_to(5.0)  # no-op: already past
        assert clock.now() == 10.0
        clock.advance_to(12.0)
        assert clock.now() == 12.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestOffsetClock:
    def test_offset_applies(self):
        base = VirtualClock(100.0)
        skewed = OffsetClock(base, -3.0)
        assert skewed.now() == 97.0

    def test_tracks_base(self):
        base = VirtualClock()
        skewed = OffsetClock(base, 1.0)
        base.advance(5.0)
        assert skewed.now() == 6.0


class TestSystemClock:
    def test_moves_forward(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()


class TestPartyIds:
    def test_valid_ids(self):
        for good in ("OrgA", "a", "Org-1.test_x", "X" * 128):
            assert validate_party_id(good) == good

    @pytest.mark.parametrize("bad", ["", " lead", "has space", "a/b", "-lead",
                                     ".lead", "X" * 129, "nul\x00l"])
    def test_invalid_ids(self, bad):
        with pytest.raises(ValueError):
            validate_party_id(bad)

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            validate_party_id(42)  # type: ignore[arg-type]

    def test_qualified_name(self):
        assert qualified_name("OrgA", "order") == "OrgA/order"

    def test_qualified_name_rejects_slash(self):
        with pytest.raises(ValueError):
            qualified_name("OrgA", "a/b")


class TestSequenceAllocator:
    def test_monotonic(self):
        alloc = SequenceAllocator()
        values = [alloc.next() for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_custom_start(self):
        assert SequenceAllocator(10).next() == 10
