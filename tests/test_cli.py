"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.storage.backends import FileRecordStore
from repro.storage.log import NonRepudiationLog
from repro.util.encoding import canonical_bytes, from_canonical_bytes


@pytest.fixture
def log_file(tmp_path):
    path = str(tmp_path / "evidence.jsonl")
    log = NonRepudiationLog("OrgA", FileRecordStore(path))
    log.record("proposal-sent", {"run_id": "r1", "mode": "overwrite"})
    log.record("authenticated-decision", {"run_id": "r1", "valid": True})
    log._store.close()
    return path


class TestVerifyLog:
    def test_intact_log(self, log_file, capsys):
        assert main(["verify-log", log_file, "--owner", "OrgA"]) == 0
        out = capsys.readouterr().out
        assert "OK: 2 entries" in out

    def test_corrupt_log(self, log_file, capsys):
        with open(log_file, "rb") as handle:
            lines = handle.read().splitlines()
        record = from_canonical_bytes(lines[0])
        record["payload"]["run_id"] = "tampered"
        lines[0] = canonical_bytes(record)
        with open(log_file, "wb") as handle:
            handle.write(b"\n".join(lines) + b"\n")
        assert main(["verify-log", log_file, "--owner", "OrgA"]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestShowLog:
    def test_lists_entries(self, log_file, capsys):
        assert main(["show-log", log_file, "--owner", "OrgA"]) == 0
        out = capsys.readouterr().out
        assert "proposal-sent" in out and "authenticated-decision" in out

    def test_kind_filter(self, log_file, capsys):
        assert main(["show-log", log_file, "--owner", "OrgA",
                     "--kind", "proposal-sent"]) == 0
        out = capsys.readouterr().out
        assert "proposal-sent" in out
        assert "authenticated-decision" not in out


class TestKeygen:
    def test_writes_keypair_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "key.json")
        assert main(["keygen", "--id", "OrgZ", "--bits", "512",
                     "--out", out_path]) == 0
        with open(out_path, encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["party_id"] == "OrgZ"
        assert record["private_key"]["n"] == (
            record["private_key"]["p"] * record["private_key"]["q"]
        )

    def test_prints_to_stdout(self, capsys):
        assert main(["keygen", "--id", "OrgY", "--bits", "512"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["bits"] == 512


class TestSimulate:
    def test_clean_run(self, capsys):
        assert main(["simulate", "--parties", "3", "--updates", "3",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "completed: 3" in out
        assert "replicas converged: yes" in out

    def test_lossy_run(self, capsys):
        assert main(["simulate", "--parties", "2", "--updates", "2",
                     "--drop", "0.2", "--seed", "2"]) == 0
        assert "replicas converged: yes" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_demo_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "nonexistent"])


class TestBundleWorkflow:
    """export-decisions + verify-bundle: the arbitration workflow."""

    def _run_coordination(self, tmp_path):
        from repro.core import Community, DictB2BObject, SimRuntime
        from repro.storage.backends import FileRecordStore
        from repro.storage.log import NonRepudiationLog

        community = Community(["OrgA", "OrgB"], runtime=SimRuntime(seed=70))
        ctx = community.node("OrgA").ctx
        ctx.evidence = NonRepudiationLog(
            "OrgA", FileRecordStore(str(tmp_path / "ev.jsonl")))
        objects = {n: DictB2BObject() for n in community.names()}
        controllers = community.found_object("deal", objects)
        controller = controllers["OrgA"]
        controller.enter()
        controller.overwrite()
        objects["OrgA"].set_attribute("clause", "agreed")
        controller.leave()
        community.settle()
        ctx.evidence._store.close()
        keys = {
            "parties": {
                name: community.certificates[name].public_key
                for name in community.names()
            },
            "tsa": community.tsa._keypair.public_key.to_dict(),
        }
        return str(tmp_path / "ev.jsonl"), keys

    def test_export_and_verify(self, tmp_path, capsys):
        log_path, keys = self._run_coordination(tmp_path)
        out_dir = str(tmp_path / "bundles")
        assert main(["export-decisions", log_path, "--owner", "OrgA",
                     "--out", out_dir]) == 0
        import os
        bundles = os.listdir(out_dir)
        assert len(bundles) == 1
        keys_path = str(tmp_path / "keys.json")
        with open(keys_path, "w", encoding="utf-8") as handle:
            json.dump(keys, handle)
        bundle_path = os.path.join(out_dir, bundles[0])
        assert main(["verify-bundle", bundle_path, "--keys", keys_path]) == 0
        out = capsys.readouterr().out
        assert "authentic:  True" in out and "valid:      True" in out

    def test_tampered_bundle_fails_verification(self, tmp_path, capsys):
        from repro.util.encoding import canonical_bytes, from_canonical_bytes
        log_path, keys = self._run_coordination(tmp_path)
        out_dir = str(tmp_path / "bundles")
        main(["export-decisions", log_path, "--owner", "OrgA",
              "--out", out_dir])
        import os
        bundle_path = os.path.join(out_dir, os.listdir(out_dir)[0])
        with open(bundle_path, "rb") as handle:
            bundle = from_canonical_bytes(handle.read())
        bundle["proposal"]["payload"]["object"] = "forged-object"
        with open(bundle_path, "wb") as handle:
            handle.write(canonical_bytes(bundle))
        keys_path = str(tmp_path / "keys.json")
        with open(keys_path, "w", encoding="utf-8") as handle:
            json.dump(keys, handle)
        assert main(["verify-bundle", bundle_path, "--keys", keys_path]) == 1
        assert "problem" in capsys.readouterr().out

    def test_missing_key_fails(self, tmp_path, capsys):
        log_path, keys = self._run_coordination(tmp_path)
        out_dir = str(tmp_path / "bundles")
        main(["export-decisions", log_path, "--owner", "OrgA",
              "--out", out_dir])
        import os
        bundle_path = os.path.join(out_dir, os.listdir(out_dir)[0])
        del keys["parties"]["OrgB"]
        keys_path = str(tmp_path / "keys.json")
        with open(keys_path, "w", encoding="utf-8") as handle:
            json.dump(keys, handle)
        assert main(["verify-bundle", bundle_path, "--keys", keys_path]) == 1


class TestSimulateWithFaults:
    def test_crash_fault_run(self, capsys):
        assert main(["simulate", "--parties", "3", "--updates", "3",
                     "--fault", "crash", "--failures", "2",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "armed 2 temporary crash fault(s)" in out
        assert "replicas converged: yes" in out

    def test_partition_fault_run(self, capsys):
        assert main(["simulate", "--parties", "3", "--updates", "2",
                     "--fault", "partition", "--failures", "1",
                     "--seed", "6"]) == 0
        assert "replicas converged: yes" in capsys.readouterr().out


class TestObsReportJson:
    def test_json_output_parses(self, capsys):
        assert main(["obs-report", "--seed", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 3
        metrics = payload["metrics"]
        assert metrics["counters"]["protocol.runs.started"] > 0
        assert "histograms" in metrics

    def test_text_output_unchanged(self, capsys):
        assert main(["obs-report", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "== protocol phases" in out


class TestGatewaySimCrash:
    def test_crash_scenario_reports_health_story(self, tmp_path, capsys):
        dump = str(tmp_path / "flight.jsonl")
        assert main(["gateway-sim", "--clients", "60", "--requests", "2",
                     "--seed", "7", "--queue-capacity", "256",
                     "--max-inflight", "64", "--max-batch", "64",
                     "--arrival-window", "3.0",
                     "--crash-org", "Org2", "--crash-at", "1.0",
                     "--recover-at", "4.0", "--watchdog", "0.5",
                     "--flight-dump", dump]) == 0
        out = capsys.readouterr().out
        assert "breaker transitions" in out
        assert "breaker_flap" in out
        assert "healthy->degraded" in out
        assert "node health: healthy" in out
        with open(dump, encoding="utf-8") as handle:
            kinds = {json.loads(line)["kind"] for line in handle}
        assert "protocol_message" in kinds


class TestServeMetrics:
    def test_probe_and_exit(self, capsys):
        assert main(["serve-metrics", "--port", "0", "--rounds", "1",
                     "--updates", "4", "--duration", "0",
                     "--probe"]) == 0
        out = capsys.readouterr().out
        assert "probe /metrics: 200" in out
        assert "probe /metrics.json: 200" in out
        assert "probe /health: 200" in out


class TestTopAndFlightDump:
    @pytest.fixture
    def telemetry_url(self):
        from repro.obs.live import (FlightRecorder, HealthMonitor,
                                    TelemetryServer)
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("protocol.runs.started").inc(3)
        registry.counter("protocol.runs.valid").inc(3)
        flight = FlightRecorder(capacity=8)
        flight.record("run_started", run_id="r1")
        monitor = HealthMonitor(registry, rules=[])
        server = TelemetryServer(registry, monitor=monitor,
                                 flight=flight).start()
        yield server.url
        server.stop()

    def test_top_iterations(self, telemetry_url, capsys):
        assert main(["top", "--url", telemetry_url,
                     "--interval", "0.01", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "health" in out
        assert "healthy" in out

    def test_flight_dump_to_file(self, telemetry_url, tmp_path, capsys):
        out_path = str(tmp_path / "dump.jsonl")
        assert main(["flight-dump", "--url", telemetry_url,
                     "--out", out_path]) == 0
        with open(out_path, encoding="utf-8") as handle:
            assert json.loads(handle.readline())["kind"] == "run_started"

    def test_flight_dump_stdout(self, telemetry_url, capsys):
        assert main(["flight-dump", "--url", telemetry_url]) == 0
        out = capsys.readouterr().out
        assert json.loads(out.splitlines()[0])["run_id"] == "r1"

    def test_flight_dump_unreachable(self, capsys):
        assert main(["flight-dump",
                     "--url", "http://127.0.0.1:9/"]) == 1
