"""Transport substrate: simulated network, reliable layer, TCP."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.transport.base import Envelope
from repro.transport.inmemory import LinkProfile, SimNetwork
from repro.transport.reliable import ReliableEndpoint
from repro.transport.tcp import TcpNetwork


def _attach(network, name, inbox):
    endpoint = ReliableEndpoint(name, network, retransmit_interval=0.05)
    endpoint.on_message(lambda sender, payload: inbox.append((sender, payload)))
    return endpoint


class TestEnvelope:
    def test_auto_msg_id_unique(self):
        a = Envelope("A", "B", {"x": 1})
        b = Envelope("A", "B", {"x": 1})
        assert a.msg_id != b.msg_id

    def test_round_trip(self):
        envelope = Envelope("A", "B", {"x": 1}, msg_id="A:1")
        assert Envelope.from_dict(envelope.to_dict()) == envelope


class TestSimNetwork:
    def test_basic_delivery(self):
        network = SimNetwork(seed=1)
        got = []
        network.register("B", got.append)
        network.send(Envelope("A", "B", {"hello": 1}))
        network.run()
        assert len(got) == 1 and got[0].payload == {"hello": 1}

    def test_latency_advances_virtual_time(self):
        network = SimNetwork(seed=1, default_profile=LinkProfile(latency=0.5))
        network.register("B", lambda e: None)
        network.send(Envelope("A", "B", {}))
        network.run()
        assert network.now() == pytest.approx(0.5)

    def test_deterministic_given_seed(self):
        def run(seed):
            network = SimNetwork(
                seed=seed,
                default_profile=LinkProfile(latency=0.01, jitter=0.05,
                                            drop_probability=0.3),
            )
            received = []
            network.register("B", lambda e: received.append(e.payload["i"]))
            for i in range(50):
                network.send(Envelope("A", "B", {"i": i}))
            network.run()
            stats = network.stats.snapshot()
            # msg ids come from a process-global counter, so byte sizes
            # vary run to run; the event sequence itself must not.
            stats.pop("bytes_sent")
            return received, stats

        assert run(7) == run(7)
        assert run(7)[0] != run(8)[0]  # which messages survive differs

    def test_drop_probability(self):
        network = SimNetwork(
            seed=3, default_profile=LinkProfile(drop_probability=0.5)
        )
        network.register("B", lambda e: None)
        for i in range(200):
            network.send(Envelope("A", "B", {"i": i}))
        network.run()
        assert 40 < network.stats.dropped < 160

    def test_duplicates(self):
        network = SimNetwork(
            seed=3, default_profile=LinkProfile(duplicate_probability=1.0)
        )
        got = []
        network.register("B", got.append)
        network.send(Envelope("A", "B", {}))
        network.run()
        assert len(got) == 2

    def test_partition_blocks_and_heals(self):
        network = SimNetwork(seed=1)
        got = []
        network.register("B", got.append)
        network.partition({"A"}, {"B"})
        network.send(Envelope("A", "B", {}))
        network.run()
        assert got == [] and network.stats.partition_blocked == 1
        network.heal_partition()
        network.send(Envelope("A", "B", {}))
        network.run()
        assert len(got) == 1

    def test_partition_allows_intra_group(self):
        network = SimNetwork(seed=1)
        got = []
        network.register("B", got.append)
        network.partition({"A", "B"}, {"C"})
        network.send(Envelope("A", "B", {}))
        network.run()
        assert len(got) == 1

    def test_crash_drops_inbound(self):
        network = SimNetwork(seed=1)
        got = []
        network.register("B", got.append)
        network.crash("B")
        network.send(Envelope("A", "B", {}))
        network.run()
        assert got == [] and network.stats.crash_blocked == 1
        network.recover("B")
        assert not network.is_crashed("B")

    def test_timers_fire_in_order(self):
        network = SimNetwork(seed=1)
        fired = []
        network.schedule(0.3, lambda: fired.append("late"))
        network.schedule(0.1, lambda: fired.append("early"))
        network.run()
        assert fired == ["early", "late"]

    def test_timer_cancellation(self):
        network = SimNetwork(seed=1)
        fired = []
        handle = network.schedule(0.1, lambda: fired.append("x"))
        handle.cancel()
        network.run()
        assert fired == []

    def test_run_until_predicate(self):
        network = SimNetwork(seed=1)
        fired = []
        network.schedule(0.1, lambda: fired.append(1))
        network.schedule(0.2, lambda: fired.append(2))
        network.run(until=lambda: len(fired) >= 1)
        assert fired == [1]

    def test_idle_run_advances_to_horizon(self):
        network = SimNetwork(seed=1)
        network.run(max_time=42.0)
        assert network.now() == 42.0

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkProfile(drop_probability=1.5).validate()
        with pytest.raises(ConfigurationError):
            LinkProfile(latency=-1).validate()

    def test_per_link_profile(self):
        network = SimNetwork(seed=1)
        network.set_link_profile("A", "B", LinkProfile(drop_probability=0.999999))
        got = []
        network.register("B", got.append)
        network.register("C", got.append)
        for _ in range(20):
            network.send(Envelope("A", "B", {}))
        network.send(Envelope("A", "C", {}))
        network.run()
        senders = [e.recipient for e in got]
        assert "C" in senders and senders.count("B") <= 2


class TestReliableEndpoint:
    def test_once_only_delivery_under_loss_and_duplication(self):
        network = SimNetwork(
            seed=11,
            default_profile=LinkProfile(latency=0.01, jitter=0.01,
                                        drop_probability=0.3,
                                        duplicate_probability=0.3),
        )
        inbox = []
        sender = _attach(network, "A", [])
        _attach(network, "B", inbox)
        for i in range(40):
            sender.send("B", {"i": i})
        network.run(max_time=120)
        assert sorted(p["i"] for _, p in inbox) == list(range(40))
        assert sender.outstanding_count() == 0

    def test_delivery_after_partition_heals(self):
        network = SimNetwork(seed=12)
        inbox = []
        sender = _attach(network, "A", [])
        _attach(network, "B", inbox)
        network.partition({"A"}, {"B"})
        sender.send("B", {"x": 1})
        network.run(max_time=1.0)
        assert inbox == []
        network.heal_partition()
        network.run(max_time=30.0)
        assert len(inbox) == 1

    def test_bounded_retries_report_failure(self):
        network = SimNetwork(seed=13)
        failures = []
        sender = ReliableEndpoint("A", network, retransmit_interval=0.01,
                                  max_retries=3)
        sender.on_delivery_failure(
            lambda peer, payload, error: failures.append((peer, payload))
        )
        network.partition({"A"}, {"B"})
        _attach(network, "B", [])
        sender.send("B", {"x": 1})
        network.run(max_time=10.0)
        assert failures == [("B", {"x": 1})]
        assert sender.outstanding_count() == 0

    def test_stop_prevents_sending(self):
        network = SimNetwork(seed=14)
        sender = _attach(network, "A", [])
        sender.stop()
        from repro.errors import DeliveryError
        with pytest.raises(DeliveryError):
            sender.send("B", {})
        sender.restart()
        sender.send("B", {})  # allowed again

    def test_retransmission_counter(self):
        network = SimNetwork(
            seed=15, default_profile=LinkProfile(drop_probability=0.6)
        )
        inbox = []
        sender = _attach(network, "A", [])
        _attach(network, "B", inbox)
        sender.send("B", {"x": 1})
        network.run(max_time=60)
        assert len(inbox) == 1
        assert sender.retransmissions >= 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31),
           st.floats(min_value=0.0, max_value=0.4),
           st.floats(min_value=0.0, max_value=0.4))
    def test_eventual_once_only_property(self, seed, drop, duplicate):
        network = SimNetwork(
            seed=seed,
            default_profile=LinkProfile(latency=0.005, jitter=0.01,
                                        drop_probability=drop,
                                        duplicate_probability=duplicate),
        )
        inbox = []
        sender = _attach(network, "A", [])
        _attach(network, "B", inbox)
        for i in range(15):
            sender.send("B", {"i": i})
        network.run(max_time=200)
        assert sorted(p["i"] for _, p in inbox) == list(range(15))


class TestTcpNetwork:
    def test_round_trip(self):
        network = TcpNetwork()
        try:
            inbox = []
            sender = ReliableEndpoint("A", network, retransmit_interval=0.2)
            receiver = ReliableEndpoint("B", network, retransmit_interval=0.2)
            import threading
            done = threading.Event()

            def on_message(peer, payload):
                inbox.append((peer, payload))
                done.set()

            receiver.on_message(on_message)
            sender.send("B", {"hello": "tcp"})
            assert done.wait(5.0)
            assert inbox == [("A", {"hello": "tcp"})]
        finally:
            network.close()

    def test_unknown_party_is_dropped_silently(self):
        network = TcpNetwork()
        try:
            network.send(Envelope("A", "Ghost", {"x": 1}))
        finally:
            network.close()

    def test_address_directory(self):
        network = TcpNetwork()
        try:
            network.register("A", lambda e: None)
            host, port = network.address_of("A")
            assert port > 0
            network.add_remote_party("R", "127.0.0.1", 9)
            assert network.address_of("R") == ("127.0.0.1", 9)
        finally:
            network.close()

    def test_malformed_frames_ignored(self):
        import socket
        network = TcpNetwork()
        try:
            got = []
            network.register("A", got.append)
            host, port = network.address_of("A")
            with socket.create_connection((host, port), timeout=2) as conn:
                conn.sendall(b"this is not json\n")
            import time
            time.sleep(0.1)
            assert got == []
        finally:
            network.close()
