"""Adversarial membership: attacks on connect/disconnect/evict (§4.4/§4.5)."""

from __future__ import annotations

import copy

import pytest

from repro.protocol.events import ConnectionDecided, MisbehaviourEvent
from repro.protocol.messages import (
    CONNECT_COMMIT,
    CONNECT_WELCOME,
    SignedPart,
)

from tests.engine_helpers import EngineHarness, found


def make_harness(members, seed=0):
    harness = EngineHarness(list(members), seed=seed)
    found(harness, "obj", list(members), {"v": 0})
    return harness


class _Interceptor:
    """Capture and optionally suppress messages during a pump."""

    def __init__(self, harness, msg_type):
        self.harness = harness
        self.msg_type = msg_type
        self.captured = []

    def run_capturing(self, source, output, suppress=False):
        """Pump while capturing (and optionally holding back) msg_type."""
        queue = [(source, output)]
        while queue:
            sender, out = queue.pop(0)
            self.harness.events[sender].extend(out.events)
            for recipient, message in out.messages:
                if message.get("msg_type") == self.msg_type:
                    self.captured.append((sender, recipient,
                                          copy.deepcopy(message)))
                    if suppress:
                        continue
                queue.append(
                    (recipient,
                     self.harness.parties[recipient].handle(sender, message))
                )


class TestForgedWelcome:
    def _join_outputs(self, harness, subject, sponsor):
        harness.add_party(subject)
        return harness.party(subject).join_object("obj", sponsor)

    def test_welcome_with_wrong_state_rejected(self):
        harness = make_harness(["A", "B", "C"], seed=1)
        interceptor = _Interceptor(harness, CONNECT_WELCOME)
        output = self._join_outputs(harness, "D", "C")
        interceptor.run_capturing("D", output, suppress=True)
        assert interceptor.captured
        sender, recipient, welcome = interceptor.captured[0]
        tampered = copy.deepcopy(welcome)
        tampered["agreed_state"] = {"v": 666}  # sponsor lies about the state
        harness.deliver(sender, recipient, tampered)
        decided = harness.events_of("D", ConnectionDecided)
        assert decided and not decided[0].accepted
        assert any("does not match the agreed identifier" in d
                   for d in decided[0].diagnostics)
        assert not harness.party("D").is_connected("obj")

    def test_welcome_with_pruned_attestations_rejected(self):
        harness = make_harness(["A", "B", "C"], seed=2)
        interceptor = _Interceptor(harness, CONNECT_WELCOME)
        output = self._join_outputs(harness, "D", "C")
        interceptor.run_capturing("D", output, suppress=True)
        sender, recipient, welcome = interceptor.captured[0]
        tampered = copy.deepcopy(welcome)
        tampered["commit"]["responses"] = []  # hide the members' decisions
        harness.deliver(sender, recipient, tampered)
        decided = harness.events_of("D", ConnectionDecided)
        assert decided and not decided[0].accepted
        assert any("incomplete" in d for d in decided[0].diagnostics)

    def test_two_party_welcome_state_still_verified(self):
        # With a singleton group there is no commit bundle, but the state
        # must still hash to the agreed identifier the sponsor signed.
        harness = EngineHarness(["A"], seed=3)
        found(harness, "obj", ["A"], {"v": 0})
        harness.add_party("B")
        interceptor = _Interceptor(harness, CONNECT_WELCOME)
        output = harness.party("B").join_object("obj", "A")
        interceptor.run_capturing("B", output, suppress=True)
        sender, recipient, welcome = interceptor.captured[0]
        tampered = copy.deepcopy(welcome)
        tampered["agreed_state"] = {"v": 999}
        harness.deliver(sender, recipient, tampered)
        decided = harness.events_of("B", ConnectionDecided)
        assert decided and not decided[0].accepted


class TestTamperedMembershipCommit:
    def test_flipped_membership_veto_detected(self):
        from repro.protocol.validation import CallbackValidator, Decision
        harness = make_harness(["A", "B", "C"], seed=10)
        # A vetoes the admission
        harness.party("A").session("obj").membership.validator = (
            CallbackValidator(connect=lambda s, m: Decision.reject("no"))
        )
        harness.add_party("D")
        interceptor = _Interceptor(harness, CONNECT_COMMIT)
        output = harness.party("D").join_object("obj", "C")
        interceptor.run_capturing("D", output, suppress=True)
        assert interceptor.captured
        # The sponsor (C) flips A's veto inside the commit it sends to B.
        for sender, recipient, commit in interceptor.captured:
            tampered = copy.deepcopy(commit)
            for response in tampered.get("responses", []):
                decision = response["payload"]["decision"]
                decision["verdict"] = "accept"
                decision["diagnostics"] = []
            harness.deliver(sender, recipient, tampered)
        # B detects the invalid signatures and keeps the old membership.
        assert harness.party("B").session("obj").group.members == ["A", "B", "C"]
        events = harness.events_of("B", MisbehaviourEvent)
        assert any(e.kind == "invalid-signature" for e in events)

    def test_forged_membership_auth_detected(self):
        harness = make_harness(["A", "B", "C"], seed=11)
        harness.add_party("D")
        interceptor = _Interceptor(harness, CONNECT_COMMIT)
        output = harness.party("D").join_object("obj", "C")
        interceptor.run_capturing("D", output, suppress=True)
        for sender, recipient, commit in interceptor.captured:
            tampered = copy.deepcopy(commit)
            tampered["auth"] = b"\x00" * len(bytes(tampered["auth"]))
            harness.deliver(sender, recipient, tampered)
        assert harness.party("A").session("obj").group.members == ["A", "B", "C"]
        events = (harness.events_of("A", MisbehaviourEvent)
                  + harness.events_of("B", MisbehaviourEvent))
        assert any(e.kind == "forged-commit" for e in events)


class TestIllegitimateSponsor:
    def test_member_rejects_proposal_from_wrong_sponsor(self):
        harness = make_harness(["A", "B", "C"], seed=20)
        harness.add_party("D")
        # D asks A (not the legitimate sponsor C); A correctly refuses to
        # sponsor.  Now simulate A misbehaving by sponsoring anyway: craft
        # the proposal through A's own engine internals.
        party_a = harness.party("A")
        membership_a = party_a.session("obj").membership
        request_output = harness.party("D").join_object("obj", "A")
        # Extract the signed request from D's outbound message.
        request_message = request_output.messages[0][1]
        request = SignedPart.from_dict(request_message["part"])
        rogue_output = membership_a._sponsor_connect("D", request)
        harness.pump("A", rogue_output)
        # B and C reject the proposal: A is not the legitimate sponsor.
        for honest in ("B", "C"):
            assert harness.party(honest).session("obj").group.members == \
                ["A", "B", "C"]
        # The commit A assembles shows the vetoes; D gets a rejection.
        decided = harness.events_of("D", ConnectionDecided)
        assert decided and not decided[0].accepted

    def test_eviction_request_from_impersonator_detected(self):
        harness = make_harness(["A", "B", "C"], seed=21)
        # B forges an eviction request that claims to come from A.
        party_b = harness.party("B")
        membership_b = party_b.session("obj").membership
        forged_payload = {
            "type": "evict-request",
            "proposer": "A",  # lie
            "subjects": ["C"],
            "object": "obj",
            "nonce": b"\x01" * 32,
        }
        from repro.protocol.messages import EVICT_REQUEST, make_signed, membership_message
        forged = make_signed(forged_payload, party_b.ctx.signer, harness.tsa)
        sponsor = harness.party("A").session("obj").group.eviction_sponsor(["C"])
        harness.deliver("B", sponsor, membership_message(EVICT_REQUEST, forged))
        events = harness.events_of(sponsor, MisbehaviourEvent)
        assert any(e.kind in ("impersonation", "invalid-signature")
                   for e in events)
        assert harness.party("C").session("obj").group.members == ["A", "B", "C"]
