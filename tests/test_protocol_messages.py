"""Signed message parts, builders, and decision aggregation."""

from __future__ import annotations

import pytest

from repro.crypto.prng import DeterministicRandomSource
from repro.crypto.hashing import hash_value
from repro.crypto.rsa import generate_keypair
from repro.crypto.signature import KeyPair
from repro.crypto.timestamp import TimestampService
from repro.errors import InconsistentMessageError, SignatureError, TimestampError
from repro.protocol.ids import initial_group_id, initial_state_id, new_state_id
from repro.protocol.messages import (
    MODE_OVERWRITE,
    MODE_UPDATE,
    SignedPart,
    build_proposal,
    build_response,
    make_signed,
    responses_unanimous,
    verify_auth_preimage,
    verify_signed,
)
from repro.protocol.validation import Decision

RNG = DeterministicRandomSource("messages-tests")
ALICE = KeyPair("Alice", generate_keypair(512, RNG))
BOB = KeyPair("Bob", generate_keypair(512, RNG))
TSA = TimestampService(keypair=KeyPair("TSA", generate_keypair(512, RNG)))

VERIFIERS = {"Alice": ALICE.verifier(), "Bob": BOB.verifier()}


def resolver(party_id):
    return VERIFIERS[party_id]


class TestSignedPart:
    def test_make_and_verify(self):
        part = make_signed({"k": 1, "proposer": "Alice"}, ALICE.signer(), TSA)
        verify_signed(part, resolver, tsa_verifier=TSA.verifier,
                      expected_signer="Alice")

    def test_round_trip(self):
        part = make_signed({"k": 1}, ALICE.signer(), TSA)
        assert SignedPart.from_dict(part.to_dict()) == part

    def test_no_tsa_allowed(self):
        part = make_signed({"k": 1}, ALICE.signer(), None)
        assert part.timestamp is None
        verify_signed(part, resolver)

    def test_wrong_expected_signer(self):
        part = make_signed({"k": 1}, ALICE.signer(), TSA)
        with pytest.raises(InconsistentMessageError):
            verify_signed(part, resolver, tsa_verifier=TSA.verifier,
                          expected_signer="Bob")

    def test_tampered_payload(self):
        part = make_signed({"k": 1}, ALICE.signer(), TSA)
        tampered = SignedPart({"k": 2}, part.signature, part.timestamp)
        with pytest.raises(SignatureError):
            verify_signed(tampered, resolver, tsa_verifier=TSA.verifier)

    def test_missing_tsa_verifier(self):
        part = make_signed({"k": 1}, ALICE.signer(), TSA)
        with pytest.raises(TimestampError):
            verify_signed(part, resolver, tsa_verifier=None)

    def test_swapped_timestamp_detected(self):
        part1 = make_signed({"k": 1}, ALICE.signer(), TSA)
        part2 = make_signed({"k": 2}, ALICE.signer(), TSA)
        crossed = SignedPart(part1.payload, part1.signature, part2.timestamp)
        with pytest.raises(TimestampError):
            verify_signed(crossed, resolver, tsa_verifier=TSA.verifier)

    def test_digest_is_payload_hash(self):
        part = make_signed({"k": 1}, ALICE.signer(), None)
        assert part.digest() == hash_value({"k": 1})


class TestBuilders:
    def _proposal(self, mode=MODE_OVERWRITE, update_hash=None):
        gid = initial_group_id(["Alice", "Bob"])
        agreed = initial_state_id({"v": 0})
        new, _ = new_state_id(0, {"v": 1}, RNG)
        return build_proposal("Alice", "obj", gid, agreed, new,
                              auth_commitment=b"c" * 32, mode=mode,
                              update_hash=update_hash)

    def test_proposal_fields(self):
        payload = self._proposal()
        assert payload["type"] == "state-proposal"
        assert payload["mode"] == MODE_OVERWRITE
        assert "update_hash" not in payload

    def test_update_proposal_requires_update_hash(self):
        with pytest.raises(ValueError):
            self._proposal(mode=MODE_UPDATE)
        payload = self._proposal(mode=MODE_UPDATE, update_hash=b"u" * 32)
        assert payload["update_hash"] == b"u" * 32

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            self._proposal(mode="replace")

    def test_response_builder(self):
        gid = initial_group_id(["Alice", "Bob"])
        sid = initial_state_id({"v": 0})
        new, _ = new_state_id(0, {"v": 1}, RNG)
        payload = build_response("Bob", "obj", b"digest", new, b"bh",
                                 Decision.accept(), gid, sid, sid)
        assert payload["responder"] == "Bob"
        assert payload["decision"]["verdict"] == "accept"


class TestAggregation:
    def _response_part(self, signer_kp, decision):
        payload = {
            "type": "state-response",
            "responder": signer_kp.party_id,
            "decision": decision.to_dict(),
        }
        return make_signed(payload, signer_kp.signer(), None)

    def test_unanimous(self):
        parts = [self._response_part(BOB, Decision.accept())]
        unanimous, diags = responses_unanimous(parts)
        assert unanimous and diags == []

    def test_single_veto_blocks(self):
        parts = [
            self._response_part(BOB, Decision.accept()),
            self._response_part(ALICE, Decision.reject("policy")),
        ]
        unanimous, diags = responses_unanimous(parts)
        assert not unanimous
        assert any("policy" in d for d in diags)

    def test_malformed_decision_blocks(self):
        part = make_signed({"responder": "Bob", "decision": "yes"},
                           BOB.signer(), None)
        unanimous, diags = responses_unanimous([part])
        assert not unanimous and "malformed" in diags[0]

    def test_empty_is_unanimous(self):
        # A singleton group has no recipients: trivially agreed.
        assert responses_unanimous([]) == (True, [])

    def test_auth_preimage(self):
        auth = b"\x01" * 32
        assert verify_auth_preimage(auth, hash_value(auth))
        assert not verify_auth_preimage(auth, hash_value(b"other"))
