"""State/group identifier tuples and validation primitives."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.prng import DeterministicRandomSource
from repro.protocol.ids import (
    GroupId,
    StateId,
    initial_group_id,
    initial_state_id,
    new_group_id,
    new_state_id,
)
from repro.protocol.validation import (
    ACCEPT,
    REJECT,
    CallbackValidator,
    Decision,
    StateMerger,
    Validator,
)


class TestStateId:
    def test_genesis_is_deterministic(self):
        assert initial_state_id({"x": 1}) == initial_state_id({"x": 1})
        assert initial_state_id({"x": 1}) != initial_state_id({"x": 2})
        assert initial_state_id({"x": 1}).seq == 0

    def test_matches_state(self):
        sid = initial_state_id({"x": 1})
        assert sid.matches_state({"x": 1})
        assert not sid.matches_state({"x": 2})

    def test_new_state_id_advances_sequence(self):
        rng = DeterministicRandomSource(1)
        sid, nonce = new_state_id(4, {"s": 1}, rng)
        assert sid.seq == 5
        assert len(nonce) == 32
        from repro.crypto.hashing import hash_value
        assert sid.rand_hash == hash_value(nonce)

    def test_concurrent_proposals_are_disambiguated(self):
        rng = DeterministicRandomSource(1)
        a, _ = new_state_id(0, {"s": 1}, rng)
        b, _ = new_state_id(0, {"s": 1}, rng)
        assert a.seq == b.seq and a.state_hash == b.state_hash
        assert a.rand_hash != b.rand_hash  # the disambiguator

    def test_round_trip(self):
        sid = initial_state_id([1, 2, 3])
        assert StateId.from_dict(sid.to_dict()) == sid

    def test_short_rendering(self):
        assert initial_state_id({}).short().startswith("T(seq=0")


class TestGroupId:
    def test_genesis(self):
        gid = initial_group_id(["A", "B"])
        assert gid.seq == 0
        assert gid.matches_members(["A", "B"])
        assert not gid.matches_members(["B", "A"])

    def test_new_group_id(self):
        rng = DeterministicRandomSource(2)
        gid, _nonce = new_group_id(3, ["A", "B", "C"], rng)
        assert gid.seq == 4
        assert gid.matches_members(["A", "B", "C"])

    def test_round_trip(self):
        gid = initial_group_id(["A"])
        assert GroupId.from_dict(gid.to_dict()) == gid


class TestDecision:
    def test_accept(self):
        decision = Decision.accept()
        assert decision.accepted and decision.verdict == ACCEPT

    def test_reject_with_diagnostics(self):
        decision = Decision.reject("too big", "too late")
        assert not decision.accepted
        assert decision.diagnostics == ("too big", "too late")

    def test_round_trip(self):
        decision = Decision.reject("nope")
        assert Decision.from_dict(decision.to_dict()) == decision

    def test_invalid_verdict(self):
        with pytest.raises(ValueError):
            Decision("maybe")

    @given(st.sampled_from([ACCEPT, REJECT]),
           st.lists(st.text(max_size=10), max_size=3))
    def test_round_trip_property(self, verdict, diags):
        decision = Decision(verdict, tuple(diags))
        assert Decision.from_dict(decision.to_dict()) == decision


class TestValidators:
    def test_default_validator_accepts(self):
        validator = Validator()
        assert validator.validate_state({}, {}, "P").accepted
        assert validator.validate_update({}, {}, {}, "P").accepted
        assert validator.validate_connect("X", []).accepted
        assert validator.validate_disconnect("X", True, "X").accepted

    def test_callback_validator_routes(self):
        validator = CallbackValidator(
            state=lambda p, c, proposer: Decision.reject(f"no {proposer}"),
            connect=lambda subject, members: Decision.reject("closed"),
        )
        assert validator.validate_state({}, {}, "A").diagnostics == ("no A",)
        assert not validator.validate_connect("X", []).accepted
        # update falls back to the state callback by default
        assert not validator.validate_update({}, {}, {}, "A").accepted

    def test_state_merger_default(self):
        merger = StateMerger()
        assert merger.apply({"a": 1}, {"b": 2}) == {"a": 1, "b": 2}
        assert merger.apply({"a": 1}, {"a": 3}) == {"a": 3}

    def test_state_merger_is_pure(self):
        merger = StateMerger()
        state = {"a": 1}
        merger.apply(state, {"b": 2})
        assert state == {"a": 1}

    def test_state_merger_type_checks(self):
        with pytest.raises(TypeError):
            StateMerger().apply([1], {"a": 1})
