"""System-level property-based tests on protocol invariants.

These are the heavyweight hypothesis suites: random workloads, random
party counts, random fault profiles — after every run, all correct
replicas must agree on the same state, the evidence chains must verify,
and vetoed states must never appear anywhere.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Community, DictB2BObject, SimRuntime
from repro.errors import ValidationFailed
from repro.protocol.validation import CallbackValidator, Decision
from repro.transport.inmemory import LinkProfile

from tests.engine_helpers import EngineHarness, found

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def build(n_parties, seed, profile=None):
    names = [f"Org{i + 1}" for i in range(n_parties)]
    community = Community(
        names, runtime=SimRuntime(seed=seed, profile=profile), key_bits=512,
    )
    objects = {name: DictB2BObject() for name in names}
    controllers = community.found_object("shared", objects)
    return community, controllers, objects


class TestConvergence:
    @SLOW
    @given(n=st.integers(min_value=2, max_value=5),
           seed=st.integers(min_value=0, max_value=10_000),
           writes=st.lists(
               st.tuples(st.integers(min_value=0, max_value=4),
                         st.integers(min_value=0, max_value=9)),
               min_size=1, max_size=6))
    def test_random_writers_converge(self, n, seed, writes):
        community, controllers, objects = build(n, seed)
        names = community.names()
        for index, (writer, value) in enumerate(writes):
            org = names[writer % n]
            controller = controllers[org]
            controller.enter()
            controller.overwrite()
            objects[org].set_attribute(f"k{index}", value)
            controller.leave()
        community.settle(5.0)
        states = {tuple(sorted(objects[name].attributes().items()))
                  for name in names}
        assert len(states) == 1
        sids = {community.node(name).party.session("shared").state.agreed_sid
                for name in names}
        assert len(sids) == 1
        for name in names:
            assert community.node(name).ctx.evidence.verify_chain() > 0

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           drop=st.floats(min_value=0.0, max_value=0.35),
           duplicate=st.floats(min_value=0.0, max_value=0.35))
    def test_convergence_over_arbitrary_lossy_networks(self, seed, drop,
                                                       duplicate):
        profile = LinkProfile(latency=0.005, jitter=0.01,
                              drop_probability=drop,
                              duplicate_probability=duplicate)
        community, controllers, objects = build(3, seed, profile)
        for i in range(3):
            controller = controllers["Org1"]
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute(f"k{i}", i)
            controller.leave()
        community.settle(60.0)
        expected = {"k0": 0, "k1": 1, "k2": 2}
        for name in community.names():
            assert objects[name].attributes() == expected

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           reject_key=st.integers(min_value=0, max_value=4),
           writes=st.lists(st.integers(min_value=0, max_value=4),
                           min_size=1, max_size=5))
    def test_vetoed_values_never_appear_anywhere(self, seed, reject_key,
                                                 writes):
        community, controllers, objects = build(3, seed)
        forbidden = f"k{reject_key}"

        def refuse(proposed, current, proposer):
            if forbidden in proposed:
                return Decision.reject("forbidden key")
            return Decision.accept()

        community.node("Org2").party.session("shared").state.validator = (
            CallbackValidator(state=refuse)
        )
        for index, key in enumerate(writes):
            controller = controllers["Org1"]
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute(f"k{key}", index)
            try:
                controller.leave()
            except ValidationFailed:
                # roll the local replica forward from the agreed state
                pass
        community.settle(5.0)
        for name in community.names():
            assert forbidden not in objects[name].attributes()
        states = {tuple(sorted(objects[name].attributes().items()))
                  for name in community.names()}
        assert len(states) == 1


class TestMembershipProperties:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           joins=st.integers(min_value=1, max_value=3),
           leaves=st.integers(min_value=0, max_value=2))
    def test_join_leave_sequences_keep_groups_consistent(self, seed, joins,
                                                         leaves):
        harness = EngineHarness(["A", "B"], seed=seed)
        found(harness, "obj", ["A", "B"], {"v": 0})
        current = ["A", "B"]
        for index in range(joins):
            name = f"J{index}"
            harness.add_party(name)
            sponsor = harness.party(current[0]).session("obj").group.connect_sponsor()
            harness.pump(name, harness.party(name).join_object("obj", sponsor))
            current.append(name)
        for index in range(min(leaves, len(current) - 1)):
            leaver = current.pop()
            _, output = harness.party(leaver).session("obj").membership.request_disconnect()
            harness.pump(leaver, output)
        views = {tuple(harness.party(name).session("obj").group.members)
                 for name in current}
        assert views == {tuple(current)}
        gids = {harness.party(name).session("obj").group.group_id
                for name in current}
        assert len(gids) == 1

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           value=st.integers(min_value=0, max_value=99))
    def test_state_survives_membership_churn(self, seed, value):
        harness = EngineHarness(["A", "B"], seed=seed)
        found(harness, "obj", ["A", "B"], {"v": 0})
        _, output = harness.party("A").session("obj").state.propose_overwrite(
            {"v": value}
        )
        harness.pump("A", output)
        harness.add_party("C")
        harness.pump("C", harness.party("C").join_object("obj", "B"))
        assert harness.party("C").session("obj").state.agreed_state == {"v": value}
        _, output = harness.party("B").session("obj").membership.request_disconnect()
        harness.pump("B", output)
        _, output = harness.party("C").session("obj").state.propose_overwrite(
            {"v": value + 1}
        )
        harness.pump("C", output)
        assert harness.party("A").session("obj").state.agreed_state == {"v": value + 1}


class TestByzantineMixProperties:
    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           attack=st.sampled_from(["suppress-commit", "forge-auth",
                                   "divergent", "tamper-bundle"]),
           byzantine=st.integers(min_value=0, max_value=2))
    def test_honest_replicas_never_diverge_under_attack(self, seed, attack,
                                                        byzantine):
        """Property: whatever single byzantine behaviour is installed on
        whichever party, honest replicas either all install the proposed
        state or all stay on the previous agreed state."""
        from repro.faults import (
            DivergentBody,
            ForgedCommitAuth,
            SuppressCommits,
            TamperedCommitResponses,
        )

        community, controllers, objects = build(3, seed)
        names = community.names()
        bad = names[byzantine]
        node = community.node(bad)
        if attack == "suppress-commit":
            SuppressCommits(node)
        elif attack == "forge-auth":
            ForgedCommitAuth(node)
        elif attack == "divergent":
            victim = names[(byzantine + 1) % 3]
            DivergentBody(node, victim=victim)
        else:
            TamperedCommitResponses(node)

        controller = controllers[bad]
        controller.enter()
        controller.overwrite()
        objects[bad].set_attribute("x", 1)
        try:
            controller.leave()
        except ValidationFailed:
            pass
        except Exception:
            pass  # blocked runs surface as ProtocolBlocked in sync mode
        community.settle(5.0)
        honest = [n for n in names if n != bad]
        honest_states = {
            tuple(sorted(
                community.node(n).party.session("shared").state.agreed_state.items()
            ))
            for n in honest
        }
        assert len(honest_states) == 1
        # and every honest evidence chain stays verifiable
        for n in honest:
            community.node(n).ctx.evidence.verify_chain()

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_intruder_cannot_corrupt_only_disrupt(self, seed):
        """Property: a Dolev-Yao intruder rewriting every proposal body can
        delay or invalidate runs but never cause divergent installs."""
        from repro.faults import DolevYaoIntruder, tamper_body

        community, controllers, objects = build(2, seed)
        intruder = DolevYaoIntruder(community.runtime.network)
        intruder.rewrite_payloads(tamper_body)
        controller = controllers["Org1"]
        for i in range(2):
            controller.enter()
            controller.overwrite()
            objects["Org1"].set_attribute(f"k{i}", i)
            try:
                controller.leave()
            except ValidationFailed:
                pass
        community.settle(5.0)
        states = {
            tuple(sorted(
                community.node(n).party.session("shared").state.agreed_state.items()
            ))
            for n in community.names()
        }
        assert len(states) == 1


class TestOrderIndependence:
    """Section 4.2: the protocol requires no message ordering from the
    communications system — any delivery order converges identically."""

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=100_000),
           n=st.integers(min_value=2, max_value=5))
    def test_state_runs_converge_under_any_delivery_order(self, seed, n):
        names = [f"P{i + 1}" for i in range(n)]
        harness = EngineHarness(names, seed=seed)
        found(harness, "obj", names, {"v": 0})
        engine = harness.party("P1").session("obj").state
        _, output = engine.propose_overwrite({"v": 1})
        harness.pump_shuffled("P1", output, seed=seed)
        for name in names:
            state = harness.party(name).session("obj").state
            assert state.agreed_state == {"v": 1}, name
            assert not state.busy

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_membership_runs_converge_under_any_delivery_order(self, seed):
        harness = EngineHarness(["A", "B", "C"], seed=seed)
        found(harness, "obj", ["A", "B", "C"], {"v": 0})
        harness.add_party("D")
        output = harness.party("D").join_object("obj", "C")
        harness.pump_shuffled("D", output, seed=seed)
        assert harness.party("D").is_connected("obj")
        for name in ["A", "B", "C", "D"]:
            group = harness.party(name).session("obj").group
            assert group.members == ["A", "B", "C", "D"], name

    @SLOW
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_sequential_runs_with_shuffled_delivery(self, seed):
        names = ["P1", "P2", "P3"]
        harness = EngineHarness(names, seed=seed)
        found(harness, "obj", names, {"v": 0})
        for i, proposer in enumerate(["P1", "P2", "P1"]):
            engine = harness.party(proposer).session("obj").state
            _, output = engine.propose_overwrite({"v": i + 1})
            harness.pump_shuffled(proposer, output, seed=f"{seed}:{i}")
        states = {tuple(sorted(
            harness.party(name).session("obj").state.agreed_state.items()
        )) for name in names}
        assert states == {(("v", 3),)}
