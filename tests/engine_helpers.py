"""Direct (transport-less) engine test harness.

Builds a set of ``ProtocolParty`` instances wired by synchronous message
pumping, so protocol logic can be exercised deterministically without the
network layer (which has its own tests).
"""

from __future__ import annotations

from repro.crypto.prng import DeterministicRandomSource
from repro.crypto.rsa import generate_keypair
from repro.crypto.signature import KeyPair
from repro.crypto.timestamp import TimestampService
from repro.protocol.context import PartyContext
from repro.protocol.events import Output
from repro.protocol.party import ProtocolParty
from repro.util.clocks import VirtualClock

_KEY_RNG = DeterministicRandomSource("engine-helpers")
_KEY_CACHE: "dict[str, KeyPair]" = {}


def _keypair(name: str) -> KeyPair:
    if name not in _KEY_CACHE:
        _KEY_CACHE[name] = KeyPair(name, generate_keypair(512, _KEY_RNG))
    return _KEY_CACHE[name]


class EngineHarness:
    """A set of parties with instantaneous, lossless message pumping."""

    def __init__(self, names: "list[str]", seed: "int | str" = 0,
                 with_tsa: bool = True) -> None:
        self.clock = VirtualClock()
        self.names = list(names)
        rng = DeterministicRandomSource(f"harness:{seed}")
        keypairs = {name: _keypair(name) for name in names}
        self.verifiers = {name: kp.verifier() for name, kp in keypairs.items()}
        self.tsa = TimestampService(clock=self.clock, keypair=_keypair("TSA")) \
            if with_tsa else None
        self.parties: "dict[str, ProtocolParty]" = {}
        for name in names:
            ctx = PartyContext(
                party_id=name,
                signer=keypairs[name].signer(),
                resolver=self._resolve,
                tsa=self.tsa,
                rng=rng.fork(name),
                clock=self.clock,
            )
            self.parties[name] = ProtocolParty(ctx)
        self.events: "dict[str, list]" = {name: [] for name in names}
        self.dropped: "list[tuple[str, str, dict]]" = []
        # Optional per-edge blocking: pairs (sender, recipient) to drop.
        self.blocked_edges: "set[tuple[str, str]]" = set()

    def _resolve(self, party_id: str):
        if party_id not in self.verifiers:
            self.verifiers[party_id] = _keypair(party_id).verifier()
        return self.verifiers[party_id]

    def party(self, name: str) -> ProtocolParty:
        return self.parties[name]

    def add_party(self, name: str) -> ProtocolParty:
        keypair = _keypair(name)
        rng = DeterministicRandomSource(f"late:{name}")
        ctx = PartyContext(
            party_id=name,
            signer=keypair.signer(),
            resolver=self._resolve,
            tsa=self.tsa,
            rng=rng,
            clock=self.clock,
        )
        party = ProtocolParty(ctx)
        self.parties[name] = party
        self.events[name] = []
        self.names.append(name)
        return party

    def pump(self, source: str, output: Output) -> None:
        """Deliver all messages (and transitively produced ones) in FIFO."""
        queue: "list[tuple[str, Output]]" = [(source, output)]
        for _ in range(100_000):
            if not queue:
                return
            sender, out = queue.pop(0)
            self.events[sender].extend(out.events)
            for recipient, message in out.messages:
                if (sender, recipient) in self.blocked_edges:
                    self.dropped.append((sender, recipient, message))
                    continue
                if recipient not in self.parties:
                    self.dropped.append((sender, recipient, message))
                    continue
                reply = self.parties[recipient].handle(sender, message)
                queue.append((recipient, reply))
        raise RuntimeError("pump did not converge")

    def pump_shuffled(self, source: str, output: Output,
                      seed: "int | str" = 0) -> None:
        """Deliver messages in a random order (section 4.2: "there is no
        requirement for the communications system to order messages")."""
        rng = DeterministicRandomSource(f"shuffle:{seed}")
        queue: "list[tuple[str, str, dict]]" = [
            ("", source, {"__events__": output})
        ]
        pending: "list[tuple[str, str, dict]]" = []
        self.events[source].extend(output.events)
        for recipient, message in output.messages:
            pending.append((source, recipient, message))
        for _ in range(100_000):
            if not pending:
                return
            index = rng.random_below(len(pending))
            sender, recipient, message = pending.pop(index)
            if (sender, recipient) in self.blocked_edges \
                    or recipient not in self.parties:
                self.dropped.append((sender, recipient, message))
                continue
            reply = self.parties[recipient].handle(sender, message)
            self.events[recipient].extend(reply.events)
            for next_recipient, next_message in reply.messages:
                pending.append((recipient, next_recipient, next_message))
        raise RuntimeError("shuffled pump did not converge")

    def deliver(self, sender: str, recipient: str, message: dict) -> None:
        """Inject a single message (e.g. a replay) and pump the fallout."""
        reply = self.parties[recipient].handle(sender, message)
        self.pump(recipient, reply)

    def events_of(self, name: str, event_type: "type | None" = None) -> list:
        if event_type is None:
            return list(self.events[name])
        return [e for e in self.events[name] if isinstance(e, event_type)]


def found(harness: EngineHarness, object_name: str, members: "list[str]",
          initial_state, **kwargs) -> None:
    for name in members:
        harness.party(name).create_object(
            object_name, members, initial_state, **kwargs
        )
