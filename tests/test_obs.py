"""The repro.obs subsystem: metrics, tracing and the hook interface."""

from __future__ import annotations

import pytest

from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation, approx_size
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    exact_quantile,
    summarise,
)
from repro.obs.trace import (
    InMemoryCollector,
    JsonLinesExporter,
    Tracer,
    read_jsonl,
)


class TestExactQuantile:
    def test_empty_is_zero(self):
        assert exact_quantile([], 0.5) == 0.0

    def test_single_sample(self):
        assert exact_quantile([7.0], 0.5) == 7.0

    def test_even_count_median_interpolates(self):
        assert exact_quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_odd_count_median_is_middle(self):
        assert exact_quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_fraction_clamped_to_bounds(self):
        samples = [1.0, 2.0, 3.0]
        assert exact_quantile(samples, -1.0) == 1.0
        assert exact_quantile(samples, 0.0) == 1.0
        assert exact_quantile(samples, 1.0) == 3.0
        assert exact_quantile(samples, 2.0) == 3.0

    def test_interpolation_between_ranks(self):
        # position 0.99 * 3 = 2.97 -> 3 + 0.97 * (4 - 3)
        assert exact_quantile([1.0, 2.0, 3.0, 4.0], 0.99) == pytest.approx(3.97)

    def test_summarise_keys(self):
        summary = summarise([1.0, 2.0])
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p95", "p99", "stddev"}
        assert summarise([])["count"] == 0


class TestInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_high_water(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1)
        assert gauge.value == 1.0
        assert gauge.high_water == 3.0

    def test_histogram_quantiles_within_relative_error(self):
        histogram = StreamingHistogram(growth=1.05)
        values = [0.001 * i for i in range(1, 1001)]
        histogram.observe_many(values)
        assert histogram.count == 1000
        for fraction in (0.5, 0.95, 0.99):
            exact = exact_quantile(values, fraction)
            estimate = histogram.quantile(fraction)
            assert estimate == pytest.approx(exact, rel=0.06)

    def test_histogram_clamps_to_observed_range(self):
        histogram = StreamingHistogram()
        histogram.observe(5.0)
        assert histogram.quantile(0.5) == 5.0
        assert histogram.quantile(0.0) == 5.0
        assert histogram.quantile(1.0) == 5.0

    def test_histogram_nonpositive_values(self):
        histogram = StreamingHistogram()
        histogram.observe_many([0.0, -1.0, 2.0])
        assert histogram.count == 3
        assert histogram.minimum == -1.0
        assert histogram.quantile(0.5) == 0.0

    def test_histogram_empty_summary(self):
        summary = StreamingHistogram().summary()
        assert summary["count"] == 0 and summary["p95"] == 0.0

    def test_histogram_rejects_bad_growth(self):
        with pytest.raises(ValueError):
            StreamingHistogram(growth=1.0)


class TestRegistry:
    def test_instruments_created_once(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_counter_value_defaults_to_zero(self):
        assert MetricsRegistry().counter_value("missing") == 0

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"runs": 2}
        assert snapshot["gauges"]["depth"]["high_water"] == 4.0
        assert snapshot["histograms"]["lat"]["count"] == 1


class TestTracing:
    def test_collector_records_events_and_spans(self):
        tracer = Tracer()
        collector = InMemoryCollector()
        tracer.add_exporter(collector)
        tracer.event("run.started", party="OrgA", run_id="r1")
        tracer.span_end("phase.handle", 0.01, party="OrgA", phase="m1")
        assert len(collector.events()) == 1
        assert len(collector.spans()) == 1
        record = collector.named("phase.handle")[0]
        assert record.seconds == pytest.approx(0.01)
        assert record.attrs["phase"] == "m1"

    def test_span_context_manager_times_and_takes_late_attrs(self):
        tracer = Tracer()
        collector = InMemoryCollector()
        tracer.add_exporter(collector)
        with tracer.span("work", party="OrgB") as attrs:
            attrs["outcome"] = "valid"
        (record,) = collector.spans()
        assert record.seconds >= 0.0
        assert record.attrs["outcome"] == "valid"

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        with JsonLinesExporter(path) as exporter:
            tracer.add_exporter(exporter)
            tracer.event("a", party="P", n=1)
            tracer.span_end("b", 0.5, party="P")
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["a", "b"]
        assert records[0]["party"] == "P" and records[0]["n"] == 1
        assert records[1]["seconds"] == pytest.approx(0.5)


class TestHooks:
    def test_null_instrumentation_is_disabled_noop(self):
        obs = NULL_INSTRUMENTATION
        assert obs.enabled is False
        # Every hook must be callable and silently do nothing.
        obs.run_started("P", "o", "r", "proposer", "overwrite")
        obs.run_settled("P", "o", "r", "proposer", "valid", 0.1)
        obs.protocol_message("P", "o", "r", "m1", "sent", 10)
        obs.phase_handled("P", "o", "m1", 0.01)
        obs.validation_decision("P", "o", "r", True, [])
        obs.message_sent("P", "Q", 10)
        obs.retransmission("P", "Q", "m", 1)
        obs.retry_exhausted("P", "Q", "m", 3)
        obs.duplicate_suppressed("P", "Q", "m")
        obs.ack_received("P", "m")
        obs.queue_depth("P", 2)
        obs.raw_send("P", "Q", 10, True)
        obs.sign_timing("P", "rsa-sha256", 10, 0.001)
        obs.verify_timing("rsa-sha256", 10, 0.001, True)
        obs.keygen_timing(512, 1, 0.1)
        obs.journal_append("P", "r", "sent", 10, 0.001)
        obs.journal_closed("P", "r", "valid")
        obs.evidence_append("P", "kind", 10, 0.001)

    def test_subclass_overrides_single_hook(self):
        seen = []

        class Probe(Instrumentation):
            enabled = True

            def message_sent(self, party, recipient, size):
                seen.append((party, recipient, size))

        probe = Probe()
        probe.message_sent("A", "B", 7)
        probe.ack_received("A", "m")  # inherited no-op
        assert seen == [("A", "B", 7)]

    def test_approx_size(self):
        assert approx_size({"a": 1}) > 0
        assert approx_size(object()) == 0
