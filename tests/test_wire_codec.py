"""The wire layer: binary codec, framing, interop, reactor transport."""

from __future__ import annotations

import socket
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import RecordingInstrumentation
from repro.transport.base import Envelope
from repro.transport.reliable import ReliableEndpoint
from repro.transport.tcp import SelectorReactorNetwork, TcpNetwork
from repro.util.encoding import canonical_bytes, from_canonical_bytes
from repro.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    EnvelopeEncoder,
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    WireError,
    decode_value,
    encode_value,
    magic_line,
)

# Values the protocol actually ships: JSON-ish trees plus raw bytes.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=20), children, max_size=6),
    ),
    max_leaves=25,
)


def _normalise(value):
    """Tuples encode as lists, so compare against the list shape."""
    if isinstance(value, list):
        return [_normalise(item) for item in value]
    if isinstance(value, dict):
        return {key: _normalise(item) for key, item in value.items()}
    return value


class TestBinaryCodec:
    @settings(max_examples=200, deadline=None)
    @given(_values)
    def test_round_trip_matches_canonical_encoder(self, value):
        # The binary codec and the canonical JSON encoder must agree on
        # what a value *is*: decode(encode(x)) == from_canonical(canonical(x)).
        expected = from_canonical_bytes(canonical_bytes(value))
        assert decode_value(encode_value(value)) == expected

    @pytest.mark.parametrize("value", [
        {},
        [],
        {"": ""},
        "é€\U0001f600́",  # latin-1, BMP, astral, combining
        "  ",                   # JS line separators
        b"",
        b"\x00\xff" * 17,
        {"sig": b"\x00" * 64, "nested": [{"k": [True, False, None]}]},
        -(2 ** 63), 2 ** 63 - 1,          # i64 boundary (tag j)
        -(2 ** 63) - 1, 2 ** 63,          # just past it (bigint tag i)
        2 ** 300, -(2 ** 300),
        0, -1, 1.5, -0.0,
    ])
    def test_edge_values_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_encodes_as_list(self):
        assert decode_value(encode_value((1, 2, (3,)))) == [1, 2, [3]]

    def test_no_base64_inflation_for_bytes(self):
        blob = {"sig": b"\xaa" * 300}
        assert len(encode_value(blob)) < len(canonical_bytes(blob))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireError):
            decode_value(encode_value({"a": 1}) + b"x")

    def test_truncated_rejected(self):
        encoded = encode_value({"key": "value", "n": [1, 2, 3]})
        for cut in range(len(encoded)):
            with pytest.raises(WireError):
                decode_value(encoded[:cut])

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireError):
            decode_value(b"Z")

    def test_count_bomb_rejected(self):
        # A 5-byte buffer claiming a 4-billion-entry list must be thrown
        # out before any allocation happens.
        with pytest.raises(WireError):
            decode_value(b"l\xff\xff\xff\xff")
        with pytest.raises(WireError):
            decode_value(b"d\xff\xff\xff\xff")
        with pytest.raises(WireError):
            decode_value(b"s\xff\xff\xff\xffab")

    def test_unencodable_type_rejected(self):
        with pytest.raises(WireError):
            encode_value({"bad": object()})


class TestFraming:
    def _envelope(self):
        return Envelope("A", "B", {"data": b"\x01\x02", "n": 7}, msg_id="A:1")

    def test_json_frame_is_byte_identical_to_canonical_line(self):
        envelope = self._envelope()
        frame = EnvelopeEncoder(CODEC_JSON).encode(envelope)
        assert frame == canonical_bytes(envelope.to_dict()) + b"\n"

    @pytest.mark.parametrize("codec", [CODEC_JSON, CODEC_BINARY])
    def test_encode_decode_round_trip(self, codec):
        envelope = self._envelope()
        encoder = EnvelopeEncoder(codec)
        decoder = FrameDecoder()
        decoder.feed(encoder.preamble + encoder.encode(envelope))
        frame = decoder.next_frame()
        assert decoder.codec == codec
        assert Envelope.from_dict(decoder.decode(frame)) == envelope
        assert decoder.next_frame() is None

    @pytest.mark.parametrize("codec", [CODEC_JSON, CODEC_BINARY])
    def test_byte_at_a_time_feed(self, codec):
        envelope = self._envelope()
        encoder = EnvelopeEncoder(codec)
        stream = encoder.preamble + encoder.encode(envelope) * 2
        decoder = FrameDecoder()
        frames = []
        for index in range(len(stream)):
            decoder.feed(stream[index:index + 1])
            while True:
                frame = decoder.next_frame()
                if frame is None:
                    break
                frames.append(frame)
        assert len(frames) == 2
        assert all(Envelope.from_dict(decoder.decode(f)) == envelope
                   for f in frames)

    def test_payload_memo_hits_for_shared_payload(self):
        # The encode-once broadcast path: same payload dict object ->
        # the cached payload bytes object is reused across envelopes.
        payload = {"big": b"\x42" * 1000}
        encoder = EnvelopeEncoder(CODEC_BINARY)
        first = encoder.payload_bytes(payload)
        for recipient in ("B", "C", "D"):
            encoder.encode(Envelope("A", recipient, payload))
            assert encoder.payload_bytes(payload) is first

    def test_oversized_binary_frame_rejected(self):
        decoder = FrameDecoder(max_frame=64)
        decoder.feed(magic_line(CODEC_BINARY) + b"\x00\x01\x00\x00")
        with pytest.raises(FrameTooLargeError):
            decoder.next_frame()

    def test_unterminated_json_line_rejected(self):
        decoder = FrameDecoder(max_frame=32)
        decoder.feed(b"{" + b"x" * 64)
        with pytest.raises(FrameTooLargeError):
            decoder.next_frame()

    def test_unrecognised_preamble_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"GET / HTTP/1.1\r\n")
        with pytest.raises(FrameError):
            decoder.next_frame()

    def test_wrong_version_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"REPRO-WIRE/99 binary\n")
        with pytest.raises(FrameError):
            decoder.next_frame()

    def test_blank_lines_tolerated(self):
        envelope = self._envelope()
        decoder = FrameDecoder()
        decoder.feed(b"\n" + EnvelopeEncoder(CODEC_JSON).encode(envelope)
                     + b"\n")
        frame = decoder.next_frame()
        assert Envelope.from_dict(decoder.decode(frame)) == envelope


def _endpoint(name, network, inbox, interval=0.05):
    endpoint = ReliableEndpoint(name, network, retransmit_interval=interval)
    endpoint.on_message(lambda sender, payload: inbox.append((sender, payload)))
    return endpoint


def _await(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestMixedCodecInterop:
    def test_binary_sender_json_receiver(self):
        # Two independent processes in miniature: the sender ships
        # binary frames, the receiver was configured for JSON — codec
        # auto-detection on accept makes the pairing just work, and the
        # acks flow back as JSON lines into the binary node's listener.
        sender_net = TcpNetwork(codec="binary")
        receiver_net = TcpNetwork(codec="json")
        inbox = []
        try:
            a = _endpoint("A", sender_net, [])
            b = _endpoint("B", receiver_net, inbox)
            sender_net.add_remote_party("B", *receiver_net.address_of("B"))
            receiver_net.add_remote_party("A", *sender_net.address_of("A"))
            payload = {"move": 4, "blob": b"\x00\x01\x02"}
            a.send("B", payload)
            assert _await(lambda: inbox == [("A", payload)])
            assert _await(lambda: a.outstanding_count() == 0)
            a.stop()
            b.stop()
        finally:
            sender_net.close()
            receiver_net.close()


class TestReactorTransport:
    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_round_trip_and_acks(self, codec):
        network = SelectorReactorNetwork(codec=codec)
        inbox = []
        try:
            a = _endpoint("A", network, [])
            b = _endpoint("B", network, inbox)
            payloads = [{"seq": i, "blob": b"x" * i} for i in range(20)]
            for payload in payloads:
                a.send("B", payload)
            assert _await(lambda: len(inbox) == len(payloads))
            assert [p for _, p in inbox] == payloads  # per-link FIFO
            assert _await(lambda: a.outstanding_count() == 0)
            a.stop()
            b.stop()
        finally:
            network.close()

    def test_single_thread_owns_many_peers(self):
        network = SelectorReactorNetwork()
        inboxes = {name: [] for name in "ABCDEFGH"}
        endpoints = {}
        try:
            before = threading.active_count()
            for name, inbox in inboxes.items():
                endpoints[name] = _endpoint(name, network, inbox)
            sender = endpoints["A"]
            for name in "BCDEFGH":
                sender.send(name, {"hello": name})
            assert _await(lambda: all(len(inboxes[n]) == 1 for n in "BCDEFGH"))
            # 8 parties, 7 live connections, retransmit timers armed —
            # and exactly ONE new thread: the reactor loop.  The pooled
            # mode would have spawned listeners, writers and servers.
            assert threading.active_count() <= before + 1
            names = {thread.name for thread in threading.enumerate()}
            assert "tcp-reactor" in names
            assert not any(name.startswith("tcp-writer") for name in names)
            for endpoint in endpoints.values():
                endpoint.stop()
        finally:
            network.close()

    def test_timers_fire_and_cancel(self):
        network = SelectorReactorNetwork()
        fired = []
        try:
            network.schedule(0.02, lambda: fired.append("a"))
            handle = network.schedule(0.02, lambda: fired.append("b"))
            handle.cancel()
            assert _await(lambda: fired == ["a"], timeout=2.0)
            time.sleep(0.05)
            assert fired == ["a"]
        finally:
            network.close()

    def test_retransmission_recovers_injected_drops(self):
        network = SelectorReactorNetwork(drop_probability=0.4, drop_seed=7)
        inbox = []
        try:
            a = _endpoint("A", network, [], interval=0.03)
            b = _endpoint("B", network, inbox)
            for i in range(10):
                a.send("B", {"seq": i})
            assert _await(lambda: len(inbox) == 10)
            assert _await(lambda: a.outstanding_count() == 0)
            a.stop()
            b.stop()
        finally:
            network.close()

    def test_send_to_unknown_party_is_dropped(self):
        network = SelectorReactorNetwork()
        try:
            assert network.send(Envelope("A", "nobody", {"x": 1})) is None
        finally:
            network.close()


class TestMalformedFrameAccounting:
    def _counters(self, obs):
        return obs.registry.snapshot().get("counters", {})

    def _inject(self, network, party, blob):
        with socket.create_connection(network.address_of(party),
                                      timeout=2.0) as conn:
            conn.sendall(blob)
            # Leave the connection up long enough for the listener to
            # process what it read before EOF tears it down.
            time.sleep(0.05)

    @pytest.mark.parametrize("factory", [
        lambda obs: TcpNetwork(obs=obs),
        lambda obs: SelectorReactorNetwork(obs=obs),
    ])
    def test_garbage_is_counted_not_swallowed(self, factory):
        obs = RecordingInstrumentation()
        network = factory(obs)
        inbox = []
        try:
            network.register("B", inbox.append)
            # An unrecognised preamble is a fatal framing violation.
            self._inject(network, "B", b"NOISE NOISE NOISE\n")
            assert _await(lambda: self._counters(obs).get(
                "transport.tcp.malformed_frames.framing", 0) >= 1)
            # A well-framed JSON line that is not an envelope.
            self._inject(network, "B", b'{"not": "an envelope"}\n')
            assert _await(lambda: self._counters(obs).get(
                "transport.tcp.malformed_frames.bad-envelope", 0) >= 1)
            # A well-framed binary frame whose body does not decode.
            self._inject(network, "B",
                         magic_line(CODEC_BINARY) + b"\x00\x00\x00\x01Z")
            assert _await(lambda: self._counters(obs).get(
                "transport.tcp.malformed_frames.decode", 0) >= 1)
            counters = self._counters(obs)
            assert counters.get("transport.tcp.malformed_frames", 0) >= 3
            assert inbox == []  # nothing malformed reached the handler
        finally:
            network.close()

    def test_oversized_frame_counted_and_connection_dropped(self):
        obs = RecordingInstrumentation()
        network = TcpNetwork(obs=obs, max_frame=1024)
        try:
            network.register("B", lambda e: None)
            self._inject(network, "B",
                         magic_line(CODEC_BINARY) + b"\x7f\xff\xff\xff")
            assert _await(lambda: self._counters(obs).get(
                "transport.tcp.malformed_frames.oversized", 0) >= 1)
        finally:
            network.close()

    def test_valid_traffic_still_flows_with_obs(self):
        obs = RecordingInstrumentation()
        network = TcpNetwork(obs=obs, codec="binary")
        inbox = []
        try:
            a = _endpoint("A", network, [])
            b = _endpoint("B", network, inbox)
            a.send("B", {"ok": True})
            assert _await(lambda: len(inbox) == 1)
            counters = self._counters(obs)
            assert counters.get("wire.binary.frames_out", 0) >= 1
            assert counters.get("wire.binary.frames_in", 0) >= 1
            assert counters.get("transport.tcp.malformed_frames", 0) == 0
            a.stop()
            b.stop()
        finally:
            network.close()


class TestSignedPartDigestMemo:
    def test_digest_cached_and_stable(self, monkeypatch):
        from repro.crypto.signature import generate_party_keypair
        from repro.protocol import messages as messages_module
        from repro.protocol.messages import make_signed

        keypair = generate_party_keypair("Org1", bits=512)
        part = make_signed({"state": "s1", "step": 3}, keypair.signer(), None)
        calls = []
        real = messages_module.hash_value
        monkeypatch.setattr(messages_module, "hash_value",
                            lambda value: calls.append(1) or real(value))
        first = part.digest()
        assert part.digest() == first and part.digest() is first
        assert len(calls) == 1  # memoised after the first computation
        assert first == real(part.payload)  # cache is the true digest
