"""Validated read-path cache: staleness semantics and publication.

Pins the consistency contract documented in ``docs/READS.md``:

* ``bounded(0)`` reads are equivalent to ``settled`` reads;
* a ``cached`` read never observes a vetoed (unsettled) proposal's
  state — only states that passed the full coordination round publish;
* snapshots invalidate on crash/recovery and full process restart, and
  republish from the recovered engines;
* a cross-shard composite settlement republishes every child;
* concurrent readers during a settlement storm observe monotonically
  non-decreasing versions.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import (
    Community,
    DictB2BObject,
    SimRuntime,
    ThreadedRuntime,
    bounded,
    cached,
    parse_read_mode,
    settled,
    wrap_object,
)
from repro.core.object import B2BObject
from repro.core.readcache import BOUNDED, CACHED, SETTLED, ReadMode
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    RateLimitedError,
)
from repro.obs.recording import RecordingInstrumentation
from repro.obs.report import render_snapshot
from repro.protocol.validation import Decision
from repro.transport.inmemory import LinkProfile
from repro.transport.tcp import TcpNetwork


class CounterObject(B2BObject):
    """Additive merge that vetoes negative amounts at validation."""

    def __init__(self) -> None:
        super().__init__()
        self._state = {"applied": 0, "total": 0}

    def get_state(self) -> dict:
        return dict(self._state)

    def apply_state(self, state) -> None:
        self._state = dict(state)

    def merge_update(self, state, update):
        amount = int(update.get("n", 1)) if isinstance(update, dict) else 1
        return {"applied": state["applied"] + 1,
                "total": state["total"] + amount}

    def validate_update(self, update, resulting, current, proposer):
        if isinstance(update, dict) and update.get("n", 1) < 0:
            return Decision.reject("negative amounts forbidden")
        return Decision.accept()


def build(names=("A", "B", "C"), seed=0, obs=None, **kwargs):
    runtime = SimRuntime(seed=seed, profile=LinkProfile(latency=0.005))
    community = Community(list(names), runtime=runtime, obs=obs, **kwargs)
    objects = {name: DictB2BObject() for name in names}
    controllers = community.found_object("ledger", objects)
    return community, controllers, objects


def write(community, controllers, objects, org, **attrs):
    controller = controllers[org]
    controller.enter()
    controller.overwrite()
    for key, value in attrs.items():
        objects[org].set_attribute(key, value)
    controller.leave()
    community.settle(1.0)


# ---------------------------------------------------------------------------
# mode parsing
# ---------------------------------------------------------------------------

class TestReadModes:
    def test_none_and_strings_parse(self):
        assert parse_read_mode(None).kind == SETTLED
        assert parse_read_mode("settled").kind == SETTLED
        assert parse_read_mode("cached").kind == CACHED
        assert parse_read_mode(bounded(0.5)).max_staleness == 0.5

    def test_bounded_requires_nonnegative_staleness(self):
        assert bounded(0).max_staleness == 0.0
        with pytest.raises(ConfigurationError):
            bounded(-0.1)

    def test_invalid_modes_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_read_mode("eventually")
        with pytest.raises(ConfigurationError):
            parse_read_mode(ReadMode(BOUNDED))  # no max_staleness
        with pytest.raises(ConfigurationError):
            parse_read_mode(42)

    def test_describe(self):
        assert settled().describe() == "settled"
        assert cached().describe() == "cached"
        assert bounded(0.25).describe() == "bounded(0.25s)"


# ---------------------------------------------------------------------------
# core semantics
# ---------------------------------------------------------------------------

class TestReadSemantics:
    def test_genesis_snapshot_published_at_registration(self):
        community, _, _ = build(seed=1)
        result = community.examine("A", "ledger", cached())
        assert result.hit
        assert result.version == 0
        assert result.state == {}
        community.close()

    def test_cached_read_tracks_settlements(self):
        community, controllers, objects = build(seed=2)
        write(community, controllers, objects, "A", k=1)
        result = community.examine("B", "ledger", cached())
        assert result.hit and result.version == 1
        assert result.state == {"k": 1}
        write(community, controllers, objects, "B", m=2)
        result = community.examine("B", "ledger", cached())
        assert result.version == 2
        assert result.state == {"k": 1, "m": 2}
        community.close()

    def test_bounded_zero_equals_settled(self):
        """``bounded(0)`` must behave exactly like ``settled``."""
        community, controllers, objects = build(seed=3)
        write(community, controllers, objects, "A", k=1)
        # Let virtual time pass so the published snapshot has stale age.
        community.settle(1.0)
        for name in ("A", "B", "C"):
            via_settled = community.examine(name, "ledger", settled())
            via_bounded = community.examine(name, "ledger", bounded(0))
            assert via_bounded.state == via_settled.state
            assert via_bounded.version == via_settled.version
            # Both paths refreshed from the engine: neither is a stale hit.
            assert not via_settled.hit
            assert via_bounded.staleness == 0.0
        community.close()

    def test_bounded_hits_within_bound_and_refreshes_past_it(self):
        community, controllers, objects = build(seed=4)
        write(community, controllers, objects, "A", k=1)
        fresh = community.examine("A", "ledger", settled())
        assert not fresh.hit
        within = community.examine("A", "ledger", bounded(10.0))
        assert within.hit and within.staleness <= 10.0
        community.settle(5.0)  # virtual time passes; snapshot ages
        stale = community.examine("A", "ledger", bounded(1.0))
        assert not stale.hit  # over the bound: refreshed first
        assert stale.staleness == 0.0
        community.close()

    def test_snapshot_state_is_isolated_from_mutation(self):
        community, controllers, objects = build(seed=5)
        write(community, controllers, objects, "A", k=1)
        first = community.examine("B", "ledger", cached())
        first.state["k"] = "tampered"
        again = community.examine("B", "ledger", cached())
        assert again.state == {"k": 1}
        community.close()


class TestVetoedProposalInvisible:
    def test_cached_read_never_observes_vetoed_state(self):
        names = ["A", "B"]
        runtime = SimRuntime(seed=6, profile=LinkProfile(latency=0.005))
        community = Community(names, runtime=runtime)
        replicas = {name: CounterObject() for name in names}
        community.found_object("ledger", replicas)
        node = community.node("A")

        node.submit_update("ledger", {"n": 5})
        community.settle(2.0)
        agreed = community.examine("A", "ledger", cached())
        assert agreed.state["total"] == 5 and agreed.version == 1

        # Propose a doomed update; the proposer pre-applies it to its
        # engine before the responder vetoes.  The published snapshot
        # must never show it — mid-flight or after the veto.
        ticket = node.submit_update("ledger", {"n": -3})
        midflight = community.examine("A", "ledger", cached())
        assert midflight.state["total"] == 5
        assert midflight.version == 1
        community.settle(2.0)
        assert ticket.done and not ticket.valid
        after = community.examine("A", "ledger", cached())
        assert after.state == {"applied": 1, "total": 5}
        assert after.version == 1
        community.close()


# ---------------------------------------------------------------------------
# invalidation: crash, recovery, restart, composite settlement
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_crash_invalidates_and_recovery_republishes(self):
        community, controllers, objects = build(seed=7)
        write(community, controllers, objects, "A", k=1)
        node = community.node("B")
        assert node.readcache.latest("ledger") is not None
        node.crash()
        assert node.readcache.latest("ledger") is None
        node.recover()
        community.settle(1.0)
        result = community.examine("B", "ledger", cached())
        assert result.version == 1 and result.state == {"k": 1}
        community.close()

    def test_restart_restore_republishes_from_checkpoint(self):
        community, controllers, objects = build(seed=8)
        write(community, controllers, objects, "A", k=1)
        write(community, controllers, objects, "B", m=2)
        node = community.restart_node("B")
        # The fresh node has no snapshots until the object is restored.
        assert node.readcache.latest("ledger") is None
        node.restore_object("ledger", DictB2BObject())
        result = node.examine("ledger", cached())
        assert result.version == 2
        assert result.state == {"k": 1, "m": 2}
        community.close()

    def test_composite_settlement_republishes_every_child(self):
        names = ["A", "B"]
        runtime = SimRuntime(seed=9, profile=LinkProfile(latency=0.005))
        community = Community(names, runtime=runtime, num_shards=4)
        children = ["tx-alpha", "tx-beta", "tx-gamma"]
        for child in children:
            community.found_object(
                child, {name: CounterObject() for name in names})
        node = community.node("A")
        before = {child: node.examine(child, cached()).version
                  for child in children}
        assert before == {child: 0 for child in children}
        ticket = node.submit_composite({child: {"n": 7}
                                        for child in children})
        assert not ticket.aborted
        community.settle(5.0)
        assert ticket.done and ticket.valid
        for child in children:
            result = node.examine(child, cached())
            assert result.version == 1, child
            assert result.state["total"] == 7
        community.close()


# ---------------------------------------------------------------------------
# controller scope + wrapper integration
# ---------------------------------------------------------------------------

class TestControllerScopes:
    def test_cached_scope_is_read_only(self):
        community, controllers, objects = build(seed=10)
        controller = controllers["A"]
        controller.enter(cached())
        assert controller.snapshot is not None
        with pytest.raises(ProtocolError):
            controller.overwrite()
        with pytest.raises(ProtocolError):
            controller.update()
        controller.leave()
        # Scope state resets: a fresh scope can write again.
        write(community, controllers, objects, "A", k=1)
        assert controllers["A"].agreed_state() == {"k": 1}
        community.close()

    def test_read_mode_only_on_outermost_enter(self):
        community, controllers, _ = build(seed=11)
        controller = controllers["A"]
        controller.enter()
        with pytest.raises(ProtocolError):
            controller.enter(cached())
        controller.leave()
        community.close()

    def test_examine_pins_snapshot_midscope_only_when_reading(self):
        community, controllers, objects = build(seed=12)
        controller = controllers["A"]
        controller.enter()
        controller.examine(cached())
        assert controller.snapshot is not None
        controller.leave()
        controller.enter()
        controller.overwrite()
        with pytest.raises(ProtocolError):
            controller.examine(cached())
        controller._access = None
        controller.leave()
        community.close()

    def test_examine_state_oneshot(self):
        community, controllers, objects = build(seed=13)
        write(community, controllers, objects, "A", k=1)
        assert controllers["B"].examine_state(cached()) == {"k": 1}
        assert controllers["B"].examine_state() == {"k": 1}
        community.close()


class _Board:
    """Minimal app object for the wrapper read-replica path."""

    def __init__(self) -> None:
        self.cells: dict = {}

    def get_state(self) -> dict:
        return dict(self.cells)

    def apply_state(self, state) -> None:
        self.cells = dict(state)

    def place(self, key, value) -> None:
        self.cells[key] = value

    def look(self, key):
        return self.cells.get(key)


class TestWrapperReadModes:
    def test_cached_reads_served_from_replica(self):
        names = ["A", "B"]
        runtime = SimRuntime(seed=14, profile=LinkProfile(latency=0.005))
        community = Community(names, runtime=runtime)
        boards = {name: _Board() for name in names}
        from repro.core import WrappedB2BObject

        controllers = community.found_object(
            "board", {name: WrappedB2BObject(boards[name])
                      for name in names})
        proxy = wrap_object(
            boards["A"], controllers["A"],
            write_methods=("place",), read_methods=("look",),
            read_mode=cached(), read_replica=_Board(),
        )
        proxy.place("corner", "X")
        community.settle(1.0)
        assert proxy.look("corner") == "X"
        # The replica holds the snapshot; the live object is untouched
        # by reads and still serves writes.
        assert boards["A"].look("corner") == "X"
        community.close()

    def test_cached_mode_requires_replica(self):
        community, controllers, _ = build(seed=15)
        with pytest.raises(ConfigurationError):
            wrap_object(DictB2BObject(), controllers["A"],
                        read_methods=("attributes",), read_mode=cached())
        community.close()


# ---------------------------------------------------------------------------
# gateway read endpoint
# ---------------------------------------------------------------------------

class TestGatewayReads:
    def test_reads_bypass_queue_and_count(self):
        community, controllers, objects = build(seed=16)
        write(community, controllers, objects, "A", k=1)
        gateway = community.node("A").gateway()
        session = gateway.session("reader-1")
        result = session.read("ledger", cached())
        assert result.state == {"k": 1}
        stats = gateway.stats()
        assert stats["reads"] == 1
        assert stats["admitted"] == 0  # no admission slot consumed
        assert gateway.queue_depth("ledger") == 0
        community.close()

    def test_reads_are_rate_limited(self):
        community, controllers, objects = build(seed=17)
        write(community, controllers, objects, "A", k=1)
        gateway = community.node("A").gateway(rate=1.0, burst=2.0)
        session = gateway.session("reader-2")
        session.read("ledger", cached())
        session.read("ledger", cached())
        with pytest.raises(RateLimitedError):
            session.read("ledger", cached())
        assert gateway.stats()["rejected"]["rate_limited"] == 1
        community.close()


# ---------------------------------------------------------------------------
# concurrency: settlement storm over the real transport
# ---------------------------------------------------------------------------

class TestConcurrentReaders:
    def test_versions_monotonic_during_settlement_storm(self):
        names = ["A", "B"]
        runtime = ThreadedRuntime(TcpNetwork())
        community = Community(names, runtime=runtime,
                              retransmit_interval=0.5)
        replicas = {name: CounterObject() for name in names}
        community.found_object("ledger", replicas)
        node = community.node("A")
        updates = 12
        done = threading.Event()
        violations: "list[tuple[int, int]]" = []
        observed: "list[int]" = []

        def reader() -> None:
            last = -1
            while not done.is_set():
                result = node.examine("ledger", cached())
                if result.version < last:
                    violations.append((last, result.version))
                last = result.version
                observed.append(last)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            tickets = [node.submit_update("ledger", {"n": 1})
                       for _ in range(updates)]
            settled_all = community.runtime.wait_until(
                lambda: all(t.done for t in tickets), timeout=120.0)
            assert settled_all, "settlement storm did not finish"
            assert all(t.valid for t in tickets)
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=10.0)
            community.close()
        assert not violations, f"versions went backwards: {violations[:5]}"
        final = node.examine("ledger", cached())
        assert final.state["total"] == updates


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------

class TestReadcacheObservability:
    def test_metrics_and_report_section(self):
        obs = RecordingInstrumentation()
        community, controllers, objects = build(seed=18, obs=obs)
        write(community, controllers, objects, "A", k=1)
        community.settle(1.0)
        community.examine("A", "ledger", cached())     # hit
        community.examine("A", "ledger", bounded(0))   # refresh (stale)
        community.examine("A", "ledger", settled())    # refresh
        node = community.node("A")
        node.crash()
        snapshot = obs.registry.snapshot()
        counters = snapshot["counters"]
        assert counters["readcache.reads"] == 3
        assert counters["readcache.reads.cached"] == 1
        assert counters["readcache.reads.bounded"] == 1
        assert counters["readcache.reads.settled"] == 1
        assert counters["readcache.hits"] == 1
        assert counters["readcache.misses"] == 2
        assert counters["readcache.published"] >= 4
        assert counters["readcache.invalidated.crash"] == 1
        text = render_snapshot(snapshot)
        assert "== validated read cache ==" in text
        assert "snapshot hits" in text
        community.close()
