"""Dispersed OSS application (section 2, scenario 2)."""

from __future__ import annotations

import pytest

from repro.apps.oss import (
    ROLE_CUSTOMER,
    ROLE_PROVIDER,
    TICKET_ACKNOWLEDGED,
    TICKET_CLOSED,
    TICKET_OPEN,
    TICKET_RESOLVED,
    ServiceClient,
    ServiceObject,
    diff_service,
    new_service,
)
from repro.core import Community, SimRuntime
from repro.errors import RuleViolation, ValidationFailed

ROLES = {"Provider": ROLE_PROVIDER, "Customer": ROLE_CUSTOMER}


def make_pair(seed=0, **service_kwargs):
    community = Community(["Provider", "Customer"],
                          runtime=SimRuntime(seed=seed))
    replicas = {n: ServiceObject(ROLES, state=new_service(**service_kwargs))
                for n in community.names()}
    controllers = community.found_object("service", replicas)
    return (community, ServiceClient(controllers["Provider"]),
            ServiceClient(controllers["Customer"]), replicas)


class TestDiff:
    def test_provisioning_change(self):
        old = new_service()
        new = new_service()
        new["provisioning"]["capacity_mbps"] = 500
        assert diff_service(old, new) == ["provisioning:capacity_mbps"]

    def test_configuration_change(self):
        old = new_service()
        new = new_service()
        new["configuration"]["endpoints"] = ["a"]
        assert diff_service(old, new) == ["configuration:endpoints"]

    def test_ticket_lifecycle_changes(self):
        old = new_service()
        new = new_service()
        new["tickets"]["T1"] = {"summary": "x", "status": TICKET_OPEN,
                                "opened_by": "Customer"}
        assert diff_service(old, new) == ["ticket-open:T1"]
        newer = new_service()
        newer["tickets"]["T1"] = {"summary": "x", "status": TICKET_ACKNOWLEDGED,
                                  "opened_by": "Customer"}
        assert diff_service(new, newer) == ["ticket-update:T1"]
        assert diff_service(new, old) == ["ticket-delete:T1"]


class TestRoleSeparation:
    def test_customer_tailors_configuration(self):
        community, provider, customer, replicas = make_pair()
        customer.set_qos_class("silver")
        customer.set_endpoints(["london-01", "leeds-02"])
        customer.set_alert_contact("noc@acme.example")
        community.settle()
        assert replicas["Provider"].configuration["qos_class"] == "silver"
        assert replicas["Provider"].configuration["endpoints"] == [
            "london-01", "leeds-02"]

    def test_provider_controls_provisioning(self):
        community, provider, customer, replicas = make_pair(seed=1)
        provider.set_capacity(500)
        provider.set_maintenance_window("sat-03:00")
        community.settle()
        assert replicas["Customer"].provisioning["capacity_mbps"] == 500

    def test_provider_cannot_tailor_configuration(self):
        community, provider, customer, replicas = make_pair(seed=2)
        with pytest.raises(ValidationFailed) as excinfo:
            provider.set_endpoints(["sneaky"])
        assert "may not tailor" in excinfo.value.diagnostics[0]

    def test_customer_cannot_change_provisioning(self):
        community, provider, customer, replicas = make_pair(seed=3)
        with pytest.raises(ValidationFailed) as excinfo:
            customer.set_capacity(10_000)
        assert "provisioning" in excinfo.value.diagnostics[0]

    def test_qos_bounded_by_purchased_tier(self):
        community, provider, customer, replicas = make_pair(
            seed=4, purchased_tier="silver")
        customer.set_qos_class("silver")  # at the tier: fine
        with pytest.raises(ValidationFailed) as excinfo:
            customer.set_qos_class("gold")
        assert "exceeds the purchased tier" in excinfo.value.diagnostics[0]

    def test_unknown_qos_class_rejected(self):
        community, provider, customer, replicas = make_pair(seed=5)
        with pytest.raises(ValidationFailed):
            customer.set_qos_class("diamond")

    def test_endpoint_limit(self):
        community, provider, customer, replicas = make_pair(seed=6)
        with pytest.raises(ValidationFailed):
            customer.set_endpoints([f"ep{i}" for i in range(17)])

    def test_unknown_role_at_construction(self):
        with pytest.raises(RuleViolation):
            ServiceObject({"X": "janitor"})

    def test_stranger_rejected(self):
        service = ServiceObject(ROLES)
        decision = service.validate_state(new_service(), new_service(),
                                          "Stranger")
        assert not decision.accepted


class TestTicketWorkflow:
    def test_full_lifecycle(self):
        community, provider, customer, replicas = make_pair(seed=10)
        customer.open_ticket("T1", "packet loss on london-01")
        provider.acknowledge_ticket("T1")
        provider.resolve_ticket("T1")
        customer.close_ticket("T1")
        community.settle()
        for replica in replicas.values():
            assert replica.ticket("T1")["status"] == TICKET_CLOSED

    def test_customer_can_reopen_unfixed_ticket(self):
        community, provider, customer, replicas = make_pair(seed=11)
        customer.open_ticket("T1", "still broken")
        provider.acknowledge_ticket("T1")
        provider.resolve_ticket("T1")
        customer.reopen_ticket("T1")
        community.settle()
        assert replicas["Provider"].ticket("T1")["status"] == TICKET_OPEN

    def test_only_customer_opens_tickets(self):
        community, provider, customer, replicas = make_pair(seed=12)
        with pytest.raises(ValidationFailed) as excinfo:
            provider.open_ticket("T1", "self-reported")
        assert "only the customer opens" in excinfo.value.diagnostics[0]

    def test_provider_cannot_close(self):
        community, provider, customer, replicas = make_pair(seed=13)
        customer.open_ticket("T1", "x")
        provider.acknowledge_ticket("T1")
        provider.resolve_ticket("T1")
        with pytest.raises(ValidationFailed) as excinfo:
            provider.close_ticket("T1")
        assert "only the customer" in excinfo.value.diagnostics[0]

    def test_illegal_transition_rejected(self):
        community, provider, customer, replicas = make_pair(seed=14)
        customer.open_ticket("T1", "x")
        with pytest.raises(ValidationFailed) as excinfo:
            provider.resolve_ticket("T1")  # must acknowledge first
        assert "illegal ticket transition" in excinfo.value.diagnostics[0]

    def test_tickets_never_deleted(self):
        community, provider, customer, replicas = make_pair(seed=15)
        customer.open_ticket("T1", "x")
        community.settle()
        controller = customer.controller
        controller.enter()
        controller.overwrite()
        state = replicas["Customer"].get_state()
        del state["tickets"]["T1"]
        replicas["Customer"].apply_state(state)
        with pytest.raises(ValidationFailed) as excinfo:
            controller.leave()
        assert "never deleted" in excinfo.value.diagnostics[0]

    def test_summary_is_immutable(self):
        community, provider, customer, replicas = make_pair(seed=16)
        customer.open_ticket("T1", "original")
        community.settle()
        controller = customer.controller
        controller.enter()
        controller.overwrite()
        state = replicas["Customer"].get_state()
        state["tickets"]["T1"]["summary"] = "rewritten history"
        replicas["Customer"].apply_state(state)
        with pytest.raises(ValidationFailed) as excinfo:
            controller.leave()
        assert "only a ticket's status" in excinfo.value.diagnostics[0]

    def test_duplicate_ticket_id_rejected_locally(self):
        community, provider, customer, replicas = make_pair(seed=17)
        customer.open_ticket("T1", "x")
        community.settle()
        with pytest.raises(RuleViolation):
            customer.open_ticket("T1", "again")
