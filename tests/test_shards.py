"""The shard scheduler: routing, budgets, workers, cross-shard atomicity,
and the clock/error-handling fixes that shipped with it."""

from __future__ import annotations

import threading

import pytest

from repro.core import (
    Community,
    DepthBudget,
    DictB2BObject,
    ShardMap,
    ShardScheduler,
    submit_transaction,
)
from repro.core.object import B2BObject
from repro.core.runtime import SimRuntime
from repro.errors import ConfigurationError, PipelineSaturatedError
from repro.obs.live.flight import FlightRecorder
from repro.obs.recording import RecordingInstrumentation
from repro.obs.report import render_snapshot
from repro.protocol.validation import Decision
from repro.transport.inmemory import LinkProfile


def sharded_community(names_or_count, seed=0, **kwargs):
    if isinstance(names_or_count, int):
        names = [f"Org{i + 1}" for i in range(names_or_count)]
    else:
        names = list(names_or_count)
    runtime = SimRuntime(seed=seed, profile=LinkProfile(latency=0.005))
    return Community(names, runtime=runtime, **kwargs)


class CounterObject(B2BObject):
    """Additive-merge counter: double application is visible."""

    def __init__(self) -> None:
        super().__init__()
        self._state = {"applied": 0, "total": 0}

    def get_state(self) -> dict:
        return dict(self._state)

    def apply_state(self, state) -> None:
        self._state = dict(state)

    def merge_update(self, state, update):
        amount = int(update.get("n", 1)) if isinstance(update, dict) else 1
        return {"applied": state["applied"] + 1,
                "total": state["total"] + amount}


class PickyObject(CounterObject):
    """Counter that vetoes negative amounts at validation time."""

    def validate_update(self, update, resulting, current, proposer):
        if isinstance(update, dict) and update.get("n", 1) < 0:
            return Decision.reject("negative amounts forbidden")
        return Decision.accept()


# ---------------------------------------------------------------------------
# unit: consistent-hash map / budget / scheduler
# ---------------------------------------------------------------------------

class TestShardMap:
    def test_mapping_is_deterministic_across_instances(self):
        names = [f"obj-{i}" for i in range(100)]
        first = ShardMap(8)
        second = ShardMap(8)
        assert [first.shard_of(n) for n in names] == \
            [second.shard_of(n) for n in names]

    def test_every_index_in_range_and_all_shards_used(self):
        shard_map = ShardMap(8)
        spread = shard_map.spread([f"obj-{i}" for i in range(200)])
        assert set(spread) <= set(range(8))
        assert len(spread) == 8  # 200 names cover all 8 shards

    def test_single_shard_takes_everything(self):
        shard_map = ShardMap(1)
        assert {shard_map.shard_of(f"o{i}") for i in range(20)} == {0}

    def test_override_pins_and_validates(self):
        shard_map = ShardMap(4, overrides={"pinned": 3})
        assert shard_map.shard_of("pinned") == 3
        with pytest.raises(ConfigurationError):
            shard_map.assign("bad", 4)

    def test_consistent_hashing_limits_movement(self):
        names = [f"obj-{i}" for i in range(400)]
        small, large = ShardMap(4), ShardMap(5)
        moved = sum(1 for n in names
                    if small.shard_of(n) != large.shard_of(n))
        # Consistent hashing: growing 4 -> 5 shards should move roughly
        # 1/5 of the keys, not rehash everything.
        assert moved < len(names) // 2

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            ShardMap(0)


class TestDepthBudget:
    def test_acquire_release_cycle(self):
        budget = DepthBudget(2)
        assert budget.try_acquire()
        assert budget.try_acquire()
        assert not budget.try_acquire()
        budget.release()
        assert budget.try_acquire()

    def test_release_never_goes_negative(self):
        budget = DepthBudget(1)
        budget.release(5)
        assert budget.used == 0


class TestShardScheduler:
    def test_none_and_single_shard_route_to_zero(self):
        scheduler = ShardScheduler(num_shards=1)
        assert scheduler.shard_for(None).index == 0
        assert scheduler.shard_for("anything").index == 0

    def test_shards_for_returns_canonical_order(self):
        scheduler = ShardScheduler(num_shards=8)
        names = [f"obj-{i}" for i in range(30)]
        shards = scheduler.shards_for(names)
        indices = [shard.index for shard in shards]
        assert indices == sorted(set(indices))

    def test_lock_all_is_reentrant_with_single_locks(self):
        scheduler = ShardScheduler(num_shards=3)
        with scheduler.lock_all():
            # RLocks: the owning thread may re-acquire individually.
            with scheduler.shard_for("x").lock:
                pass

    def test_worker_runs_submitted_work_on_shard_thread(self):
        scheduler = ShardScheduler(num_shards=2, workers=True, name="T")
        try:
            seen = {}
            done = threading.Event()

            def work():
                seen["thread"] = threading.current_thread().name
                done.set()

            scheduler.shards[1].submit(work)
            assert done.wait(2.0)
            assert seen["thread"] == "shard-T-1"
        finally:
            scheduler.stop()

    def test_stopped_shard_runs_work_inline(self):
        scheduler = ShardScheduler(num_shards=1, workers=True, name="T")
        scheduler.stop()
        ran = []
        scheduler.shards[0].submit(lambda: ran.append(True))
        assert ran == [True]


# ---------------------------------------------------------------------------
# integration: a sharded community
# ---------------------------------------------------------------------------

class TestShardedCommunity:
    def test_many_objects_settle_across_shards(self):
        community = sharded_community(3, seed=11, num_shards=4)
        names = community.names()
        objects = [f"obj-{i}" for i in range(12)]
        for object_name in objects:
            community.found_object(
                object_name, {name: DictB2BObject() for name in names})
        node = community.node("Org1")
        # The objects genuinely land on more than one shard.
        assert len(node.shards.map.spread(objects)) > 1
        tickets = [node.submit_update(object_name, {"k": object_name})
                   for object_name in objects]
        community.settle()
        assert all(t.done and t.valid for t in tickets)
        for object_name in objects:
            for name in names:
                state = community.node(name).controllers[
                    object_name].b2b_object.get_state()
                assert state == {"k": object_name}

    def test_simruntime_never_starts_workers(self):
        community = sharded_community(2, seed=12, num_shards=4,
                                      shard_workers=True)
        assert not community.node("Org1").shards.workers

    def test_shared_depth_budget_saturates_the_shard(self):
        community = sharded_community(2, seed=13, num_shards=1,
                                      shard_max_depth=2)
        names = community.names()
        community.found_object(
            "hot", {name: DictB2BObject() for name in names})
        node = community.node("Org1")
        # Budget units are held from submission to settlement, so two
        # admitted updates exhaust the shared allowance of 2.
        for index in range(2):
            node.submit_update("hot", {f"k{index}": index})
        with pytest.raises(PipelineSaturatedError, match="shard pipeline"):
            node.submit_update("hot", {"overflow": True})
        community.settle()

    def test_restart_node_keeps_shard_topology(self, tmp_path):
        community = sharded_community(2, seed=14, num_shards=4,
                                      storage_dir=str(tmp_path))
        names = community.names()
        community.found_object(
            "obj", {name: DictB2BObject() for name in names})
        node = community.node("Org1")
        node.submit_update("obj", {"k": 1})
        community.settle()
        replacement = community.restart_node("Org1")
        assert replacement.shards.num_shards == 4
        replacement.restore_object("obj", DictB2BObject())
        community.settle()
        state = replacement.controllers["obj"].b2b_object.get_state()
        assert state == {"k": 1}

    def test_per_shard_settlement_counters(self):
        obs = RecordingInstrumentation()
        community = sharded_community(2, seed=15, num_shards=4, obs=obs)
        names = community.names()
        objects = [f"obj-{i}" for i in range(8)]
        for object_name in objects:
            community.found_object(
                object_name, {name: DictB2BObject() for name in names})
        node = community.node("Org1")
        for object_name in objects:
            node.submit_update(object_name, {"k": 1})
        community.settle()
        snapshot = obs.registry.snapshot()
        counters = snapshot["counters"]
        total = counters.get("shards.settled", 0)
        assert total >= len(objects)
        spread = node.shards.map.spread(objects)
        for index in spread:
            assert counters.get(f"shards.settled.s{index}", 0) > 0
        report = render_snapshot(snapshot)
        assert "== shard scheduler ==" in report


# ---------------------------------------------------------------------------
# cross-shard composite transactions
# ---------------------------------------------------------------------------

class TestCompositeTransactions:
    def _community(self, seed, cls=CounterObject, objects=("alpha", "beta")):
        community = sharded_community(3, seed=seed, num_shards=4)
        names = community.names()
        for object_name in objects:
            community.found_object(
                object_name, {name: cls() for name in names})
        return community

    def test_cross_shard_transaction_settles_atomically(self):
        community = self._community(21)
        node = community.node("Org1")
        ticket = node.submit_composite({"alpha": {"n": 3}, "beta": {"n": 5}})
        assert not ticket.aborted
        assert set(ticket.children) == {"alpha", "beta"}
        community.settle()
        assert ticket.done and ticket.valid and not ticket.partial
        for name in community.names():
            controllers = community.node(name).controllers
            assert controllers["alpha"].b2b_object.get_state() == \
                {"applied": 1, "total": 3}
            assert controllers["beta"].b2b_object.get_state() == \
                {"applied": 1, "total": 5}

    def test_rejected_child_aborts_with_nothing_applied(self):
        community = self._community(22, cls=PickyObject)
        node = community.node("Org1")
        ticket = node.submit_composite({"alpha": {"n": 3}, "beta": {"n": -1}})
        assert ticket.aborted
        assert ticket.done and ticket.valid is False
        assert any("beta" in diag and "negative" in diag
                   for diag in ticket.child_diagnostics())
        assert ticket.children == {}
        community.settle()
        # All-or-nothing: the valid sibling was not applied either.
        for name in community.names():
            controllers = community.node(name).controllers
            assert controllers["alpha"].b2b_object.get_state() == \
                {"applied": 0, "total": 0}
            assert controllers["beta"].b2b_object.get_state() == \
                {"applied": 0, "total": 0}

    def test_transaction_atomic_under_concurrent_child_traffic(self):
        community = self._community(23)
        node = community.node("Org1")
        other = community.node("Org2")
        side = [other.submit_update("alpha", {"n": 1}) for _ in range(3)]
        side += [other.submit_update("beta", {"n": 1}) for _ in range(3)]
        ticket = node.submit_composite({"alpha": {"n": 10}, "beta": {"n": 20}})
        community.settle()
        assert ticket.done and ticket.valid and not ticket.partial
        assert all(t.done and t.valid for t in side)
        alpha = node.controllers["alpha"].b2b_object.get_state()
        beta = node.controllers["beta"].b2b_object.get_state()
        # Each child applied the transaction exactly once plus the side
        # traffic — no partial or double application anywhere.
        assert alpha == {"applied": 4, "total": 13}
        assert beta == {"applied": 4, "total": 23}

    def test_composite_object_under_batched_pipeline(self):
        from repro.core import CompositeB2BObject

        community = sharded_community(2, seed=26, num_shards=2)
        names = community.names()
        composites = {
            name: CompositeB2BObject(
                {"left": CounterObject(), "right": CounterObject()})
            for name in names
        }
        community.found_object("bundle", composites)
        node = community.node("Org1")
        node.pipeline("bundle", max_batch=8)
        tickets = [
            node.submit_update("bundle", {"left": {"n": 1}})
            for _ in range(5)
        ] + [
            node.submit_update("bundle", {"right": {"n": 2}})
            for _ in range(5)
        ]
        community.settle()
        assert all(t.done and t.valid for t in tickets)
        # The queued updates coalesced into batched runs, and the batch
        # folded through the composite merge child by child.
        engine = node.party.session("bundle").state
        assert engine.agreed_sid.seq < len(tickets)
        for name in names:
            state = composites[name].get_state()
            assert state["left"] == {"applied": 5, "total": 5}
            assert state["right"] == {"applied": 5, "total": 10}

    def test_empty_transaction_rejected(self):
        community = self._community(24)
        with pytest.raises(ConfigurationError):
            submit_transaction(community.node("Org1"), {})

    def test_children_admitted_in_canonical_shard_order(self):
        community = self._community(25, objects=tuple(
            f"obj-{i}" for i in range(6)))
        node = community.node("Org1")
        updates = {f"obj-{i}": {"n": 1} for i in range(6)}
        ticket = node.submit_composite(updates)
        expected = sorted(
            updates, key=lambda n: (node.shards.shard_for(n).index, n))
        assert ticket.object_names == expected
        community.settle()
        assert ticket.valid


# ---------------------------------------------------------------------------
# satellite fixes: flight-recorder clock, swallowed handler errors
# ---------------------------------------------------------------------------

class TestFlightClockBinding:
    def test_preattached_recorder_uses_virtual_time(self):
        # The CLI builds RecordingInstrumentation(flight=...) before the
        # community (and its clock) exists; the community must bind its
        # clock so sim runs never stamp wall-clock times into the ring.
        flight = FlightRecorder(capacity=256)
        obs = RecordingInstrumentation(flight=flight)
        community = sharded_community(2, seed=31, obs=obs)
        names = community.names()
        community.found_object(
            "obj", {name: DictB2BObject() for name in names})
        community.node("Org1").submit_update("obj", {"k": 1})
        community.settle()
        events = flight.events()
        assert events, "protocol activity must reach the flight ring"
        stamps = [event["t"] for event in events]
        # Virtual timestamps: small and monotone, never ~1.7e9 wall time.
        assert all(stamp < 1e6 for stamp in stamps), stamps[:5]
        assert stamps == sorted(stamps)

    def test_bind_clock_does_not_replace_existing(self):
        class FixedClock:
            def now(self) -> float:
                return 42.0

        flight = FlightRecorder(capacity=4, clock=FixedClock())
        flight.bind_clock(None)

        class OtherClock:
            def now(self) -> float:
                return 7.0

        flight.bind_clock(OtherClock())
        flight.record("probe")
        assert flight.events()[0]["t"] == 42.0

    def test_node_live_reuses_preattached_recorder(self):
        flight = FlightRecorder(capacity=64)
        obs = RecordingInstrumentation(flight=flight)
        community = sharded_community(2, seed=32, obs=obs)
        live = community.node("Org1").live()
        assert live.flight is flight


class TestHandlerErrorAccounting:
    def test_timer_wheel_counts_raising_callbacks(self):
        from repro.transport.tcp import _TimerWheel

        obs = RecordingInstrumentation()
        wheel = _TimerWheel(obs=obs)
        fired = threading.Event()

        def boom():
            fired.set()
            raise RuntimeError("timer bug")

        try:
            wheel.schedule(0.0, boom)
            assert fired.wait(2.0)
            deadline = threading.Event()
            for _ in range(40):
                if obs.registry.snapshot()["counters"].get(
                        "transport.tcp.handler_errors.timer"):
                    break
                deadline.wait(0.05)
            counters = obs.registry.snapshot()["counters"]
            assert counters.get("transport.tcp.handler_errors") == 1
            assert counters.get("transport.tcp.handler_errors.timer") == 1
        finally:
            wheel.stop()

    def test_reactor_counts_command_and_timer_errors(self):
        from repro.transport.tcp import TcpNetwork

        obs = RecordingInstrumentation()
        network = TcpNetwork(obs=obs, reactor=True)
        try:
            reactor = network._reactor
            fired = threading.Event()

            def boom():
                fired.set()
                raise RuntimeError("bug")

            reactor._post(boom)
            reactor.schedule(0.0, boom)
            for _ in range(40):
                counters = obs.registry.snapshot()["counters"]
                if (counters.get("transport.tcp.handler_errors.command")
                        and counters.get(
                            "transport.tcp.handler_errors.timer")):
                    break
                threading.Event().wait(0.05)
            counters = obs.registry.snapshot()["counters"]
            assert counters.get("transport.tcp.handler_errors.command") == 1
            assert counters.get("transport.tcp.handler_errors.timer") == 1
            assert counters.get("transport.tcp.handler_errors") == 2
        finally:
            network.close()

    def test_handler_errors_reach_flight_ring_and_report(self):
        flight = FlightRecorder(capacity=16)
        obs = RecordingInstrumentation(flight=flight)
        obs.handler_error("OrgX", "dispatch")
        kinds = [event["kind"] for event in flight.events()]
        assert "handler_error" in kinds
        report = render_snapshot(obs.registry.snapshot())
        assert "handler errors (dispatch)" in report
