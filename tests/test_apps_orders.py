"""Order processing application (section 5.2, Figure 7)."""

from __future__ import annotations

import pytest

from repro.apps.orders import (
    ROLE_APPROVER,
    ROLE_CUSTOMER,
    ROLE_DISPATCHER,
    ROLE_SUPPLIER,
    OrderClient,
    OrderObject,
    diff_orders,
    empty_order,
)
from repro.core import Community, SimRuntime
from repro.errors import RuleViolation, ValidationFailed
from repro.protocol.validation import Decision


class TestDiff:
    def test_add_item(self):
        new = {"items": {"w": {"quantity": 1, "price": None}}, "delivery": None}
        assert diff_orders(empty_order(), new) == ["add:w"]

    def test_add_priced_item_includes_price_change(self):
        new = {"items": {"w": {"quantity": 1, "price": 5}}, "delivery": None}
        assert set(diff_orders(empty_order(), new)) == {"add:w", "price:w"}

    def test_quantity_and_price_changes(self):
        old = {"items": {"w": {"quantity": 1, "price": None, "approved": False}},
               "delivery": None}
        new = {"items": {"w": {"quantity": 3, "price": 7, "approved": False}},
               "delivery": None}
        assert set(diff_orders(old, new)) == {"quantity:w", "price:w"}

    def test_remove_item(self):
        old = {"items": {"w": {"quantity": 1, "price": None}}, "delivery": None}
        assert diff_orders(old, empty_order()) == ["remove:w"]

    def test_delivery_change(self):
        new = {"items": {}, "delivery": {"terms": "48h", "committed": True}}
        assert diff_orders(empty_order(), new) == ["delivery"]

    def test_no_change(self):
        assert diff_orders(empty_order(), empty_order()) == []


class TestRoleValidation:
    ROLES = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER,
             "Approver": ROLE_APPROVER, "Dispatcher": ROLE_DISPATCHER}

    def validate(self, current, proposed, proposer):
        order = OrderObject(self.ROLES)
        return order.validate_state(proposed, current, proposer)

    def test_customer_may_add_and_requantify(self):
        new = {"items": {"w": {"quantity": 2, "price": None}}, "delivery": None}
        assert self.validate(empty_order(), new, "Customer").accepted

    def test_customer_may_not_price(self):
        new = {"items": {"w": {"quantity": 2, "price": 9}}, "delivery": None}
        decision = self.validate(empty_order(), new, "Customer")
        assert not decision.accepted

    def test_supplier_may_price(self):
        old = {"items": {"w": {"quantity": 2, "price": None, "approved": False}},
               "delivery": None}
        new = {"items": {"w": {"quantity": 2, "price": 9, "approved": False}},
               "delivery": None}
        assert self.validate(old, new, "Supplier").accepted

    def test_supplier_may_not_amend_anything_else(self):
        old = {"items": {"w": {"quantity": 2, "price": None, "approved": False}},
               "delivery": None}
        new = {"items": {"w": {"quantity": 5, "price": 9, "approved": False}},
               "delivery": None}
        decision = self.validate(old, new, "Supplier")
        assert not decision.accepted
        assert any("quantity" in d for d in decision.diagnostics)

    def test_approver_approves_only(self):
        old = {"items": {"w": {"quantity": 2, "price": 9, "approved": False}},
               "delivery": None}
        new = {"items": {"w": {"quantity": 2, "price": 9, "approved": True}},
               "delivery": None}
        assert self.validate(old, new, "Approver").accepted
        other = {"items": {"w": {"quantity": 3, "price": 9, "approved": True}},
                 "delivery": None}
        assert not self.validate(old, other, "Approver").accepted

    def test_dispatcher_commits_delivery_only(self):
        new = {"items": {}, "delivery": {"terms": "48h", "committed": True}}
        assert self.validate(empty_order(), new, "Dispatcher").accepted
        added = {"items": {"w": {"quantity": 1, "price": None}},
                 "delivery": None}
        assert not self.validate(empty_order(), added, "Dispatcher").accepted

    def test_unknown_proposer_rejected(self):
        assert not self.validate(empty_order(), empty_order(), "Stranger").accepted

    def test_quantity_must_be_positive(self):
        new = {"items": {"w": {"quantity": 0, "price": None}}, "delivery": None}
        assert not self.validate(empty_order(), new, "Customer").accepted

    def test_unknown_role_rejected_at_construction(self):
        with pytest.raises(RuleViolation):
            OrderObject({"X": "king"})


def make_two_party(seed=0):
    community = Community(["Customer", "Supplier"], runtime=SimRuntime(seed=seed))
    roles = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER}
    objects = {n: OrderObject(roles) for n in community.names()}
    controllers = community.found_object("order", objects)
    return (community, OrderClient(controllers["Customer"]),
            OrderClient(controllers["Supplier"]), objects)


class TestFigure7:
    def test_exact_figure7_sequence(self):
        community, customer, supplier, objects = make_two_party()
        # customer orders 2 widget1s: valid
        customer.add_item("widget1", 2)
        # supplier prices widget1 at 10: validated and reflected
        supplier.price_item("widget1", 10)
        community.settle(1.0)
        assert objects["Customer"].item("widget1") == {
            "quantity": 2, "price": 10, "approved": False}
        # customer amends the order for 10 widget2s: valid
        customer.add_item("widget2", 10)
        community.settle(1.0)
        assert objects["Supplier"].item("widget2")["quantity"] == 10
        # supplier prices widget2 AND changes quantity: rejected as a whole
        with pytest.raises(ValidationFailed) as excinfo:
            supplier.price_and_change_quantity("widget2", 20, 5)
        assert any("quantity" in d for d in excinfo.value.diagnostics)
        community.settle(1.0)
        # the customer's copy is untouched by the invalid update
        assert objects["Customer"].item("widget2") == {
            "quantity": 10, "price": None, "approved": False}
        # and the supplier's replica rolled back
        assert objects["Supplier"].item("widget2") == {
            "quantity": 10, "price": None, "approved": False}

    def test_supplier_retry_with_only_price_succeeds(self):
        community, customer, supplier, objects = make_two_party(seed=1)
        customer.add_item("widget2", 10)
        with pytest.raises(ValidationFailed):
            supplier.price_and_change_quantity("widget2", 20, 5)
        supplier.price_item("widget2", 20)
        community.settle(1.0)
        assert objects["Customer"].item("widget2")["price"] == 20

    def test_customer_cannot_price(self):
        community, customer, supplier, objects = make_two_party(seed=2)
        customer.add_item("widget1", 2)
        with pytest.raises(ValidationFailed):
            # impersonate a pricing action through the customer client
            customer._mutate(lambda state: state["items"]["widget1"].update(price=1))


class TestFourPartyOrder:
    def test_full_workflow(self):
        names = ["Customer", "Supplier", "Approver", "Dispatcher"]
        community = Community(names, runtime=SimRuntime(seed=3))
        roles = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER,
                 "Approver": ROLE_APPROVER, "Dispatcher": ROLE_DISPATCHER}
        objects = {n: OrderObject(roles) for n in names}
        controllers = community.found_object("order", objects)
        clients = {n: OrderClient(controllers[n]) for n in names}

        clients["Customer"].add_item("widget1", 3)
        clients["Supplier"].price_item("widget1", 30)
        clients["Approver"].approve_item("widget1")
        clients["Dispatcher"].commit_delivery("within 48h")
        community.settle(2.0)
        for name in names:
            item = objects[name].item("widget1")
            assert item == {"quantity": 3, "price": 30, "approved": True}
            assert objects[name].get_state()["delivery"] == {
                "terms": "within 48h", "committed": True}

    def test_dispatcher_cannot_approve(self):
        names = ["Customer", "Supplier", "Approver", "Dispatcher"]
        community = Community(names, runtime=SimRuntime(seed=4))
        roles = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER,
                 "Approver": ROLE_APPROVER, "Dispatcher": ROLE_DISPATCHER}
        objects = {n: OrderObject(roles) for n in names}
        controllers = community.found_object("order", objects)
        clients = {n: OrderClient(controllers[n]) for n in names}
        clients["Customer"].add_item("widget1", 3)
        with pytest.raises(ValidationFailed):
            clients["Dispatcher"].approve_item("widget1")
