"""Concurrency regressions for the TCP transport and the reliable layer.

These tests pin down bugs that only surface when real listener threads
and retransmit timers drive the endpoints concurrently:

* seeded drop injection must be reproducible even with many sender
  threads interleaving;
* an ack racing a retransmit-exhaustion callback must resolve to exactly
  one outcome (never a KeyError, never ack + failure both firing);
* the duplicate-suppression window must stay bounded through a
  retransmission storm while still suppressing every duplicate;
* pooled connections must survive a peer restart (transparent
  reconnect).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.transport.base import Envelope, Network, TimerHandle
from repro.transport.reliable import ReliableEndpoint, _DedupWindow
from repro.transport.tcp import TcpNetwork


def _drop_pattern(network: TcpNetwork, link: "tuple[str, str]",
                  sends: int) -> "list[bool]":
    sender, recipient = link
    return [network._should_drop(Envelope(sender, recipient, {"i": i}))
            for i in range(sends)]


class TestSeededDropDeterminism:
    def test_single_thread_reproducible(self):
        one = TcpNetwork(drop_probability=0.3, drop_seed=42)
        two = TcpNetwork(drop_probability=0.3, drop_seed=42)
        other = TcpNetwork(drop_probability=0.3, drop_seed=43)
        try:
            pattern = _drop_pattern(one, ("A", "B"), 200)
            assert pattern == _drop_pattern(two, ("A", "B"), 200)
            assert pattern != _drop_pattern(other, ("A", "B"), 200)
            assert any(pattern) and not all(pattern)
        finally:
            one.close(), two.close(), other.close()

    def test_links_are_independent_streams(self):
        network = TcpNetwork(drop_probability=0.3, drop_seed=7)
        try:
            ab = _drop_pattern(network, ("A", "B"), 100)
            # Interleaving traffic on other links must not perturb A->B.
            fresh = TcpNetwork(drop_probability=0.3, drop_seed=7)
            for i in range(100):
                fresh._should_drop(Envelope("C", "D", {"i": i}))
                fresh._should_drop(Envelope("B", "A", {"i": i}))
            assert _drop_pattern(fresh, ("A", "B"), 100) == ab
            fresh.close()
        finally:
            network.close()

    def test_concurrent_senders_reproducible_per_link(self):
        """The seed-regression: concurrent threads on distinct links must
        each see the same drop pattern a single-threaded run sees."""
        links = [(f"S{i}", f"R{i}") for i in range(4)]
        expected = {}
        reference = TcpNetwork(drop_probability=0.4, drop_seed=99)
        for link in links:
            expected[link] = _drop_pattern(reference, link, 300)
        reference.close()

        for _ in range(3):
            network = TcpNetwork(drop_probability=0.4, drop_seed=99)
            results = {}

            def worker(link):
                results[link] = _drop_pattern(network, link, 300)

            threads = [threading.Thread(target=worker, args=(link,))
                       for link in links]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            network.close()
            assert results == expected


class _StubNetwork(Network):
    """Synchronous stub: captures sends, hands timers to the test."""

    def __init__(self):
        self.sent = []
        self.timers = []

    def register(self, party_id, handler):
        self.handler = handler

    def send(self, envelope):
        self.sent.append(envelope)

    def schedule(self, delay, callback):
        self.timers.append(callback)
        return TimerHandle(lambda: None)

    def now(self):
        return 0.0


class TestRetransmitAckRace:
    def test_ack_racing_retry_exhaustion_resolves_once(self):
        """Fire the final retransmit callback and the ack concurrently,
        many times: exactly one path may claim the message, and neither
        may raise."""
        for _ in range(200):
            network = _StubNetwork()
            failures, errors = [], []
            endpoint = ReliableEndpoint("A", network,
                                        retransmit_interval=0.01,
                                        max_retries=0)
            endpoint.on_delivery_failure(
                lambda peer, payload, error: failures.append(peer))
            msg_id = endpoint.send("B", {"x": 1})
            retransmit = network.timers[-1]
            barrier = threading.Barrier(2)

            def run(fn):
                barrier.wait()
                try:
                    fn()
                except Exception as exc:  # noqa: BLE001 - the regression
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(retransmit,)),
                threading.Thread(
                    target=run, args=(lambda: endpoint._handle_ack(msg_id),)
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            outcomes = len(failures) + endpoint.acks_received
            assert outcomes == 1, (failures, endpoint.acks_received)
            assert endpoint.outstanding_count() == 0

    def test_concurrent_acks_count_once(self):
        network = _StubNetwork()
        endpoint = ReliableEndpoint("A", network, retransmit_interval=0.01)
        msg_id = endpoint.send("B", {"x": 1})
        threads = [
            threading.Thread(target=endpoint._handle_ack, args=(msg_id,))
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert endpoint.acks_received == 1
        assert endpoint.outstanding_count() == 0


class TestDedupWindowBound:
    def test_window_suppresses_and_stays_bounded(self):
        window = _DedupWindow(window=64)
        for i in range(10_000):
            assert not window.seen_before(f"A/inst/{i}")
            assert window.seen_before(f"A/inst/{i}")  # immediate duplicate
            assert len(window) <= 64

    def test_sources_are_bounded(self):
        window = _DedupWindow(window=8, max_sources=16)
        for instance in range(200):
            window.seen_before(f"A/{instance:04x}/1")
        assert window.source_count <= 16

    def test_endpoint_bounded_through_retransmission_storm(self):
        """A storm of duplicates of live traffic is fully suppressed and
        the dedup structure never exceeds its per-sender window."""
        network = _StubNetwork()
        inbox = []
        endpoint = ReliableEndpoint("B", network, retransmit_interval=5.0,
                                    dedup_window=128)
        endpoint.on_message(lambda sender, payload: inbox.append(payload["i"]))
        for i in range(500):
            envelope = Envelope("A", "B",
                                {"type": "data", "data": {"i": i}},
                                msg_id=f"A/feed/{i}")
            # Retransmission storm: every frame arrives four times.
            for _ in range(4):
                endpoint._on_raw_message(envelope)
            assert endpoint.dedup_entries() <= 128
        assert inbox == list(range(500))
        assert endpoint.duplicates_suppressed == 3 * 500


class TestTcpConcurrency:
    def test_multithreaded_send_ack_stress(self):
        """Many sender threads over one pooled link: every message is
        delivered exactly once and the outstanding map drains."""
        network = TcpNetwork()
        try:
            inbox = []
            inbox_lock = threading.Lock()
            done = threading.Event()
            total = 4 * 25
            sender = ReliableEndpoint("A", network, retransmit_interval=0.1)
            receiver = ReliableEndpoint("B", network, retransmit_interval=0.1)

            def on_message(peer, payload):
                with inbox_lock:
                    inbox.append(payload["i"])
                    if len(inbox) >= total:
                        done.set()

            receiver.on_message(on_message)

            def worker(base):
                for i in range(25):
                    sender.send("B", {"i": base + i})

            threads = [threading.Thread(target=worker, args=(base,))
                       for base in range(0, total, 25)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert done.wait(15.0)
            deadline = time.monotonic() + 10.0
            while sender.outstanding_count() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sorted(inbox) == list(range(total))  # exactly once
            assert sender.outstanding_count() == 0
        finally:
            network.close()

    def test_pooled_connection_survives_peer_restart(self):
        """Kill the receiving process's network and bring it back on the
        same port: the sender's pooled channel must reconnect and the
        reliable layer must deliver what was lost in between."""
        sender_net = TcpNetwork()
        receiver_net = TcpNetwork()
        try:
            inbox = []
            receiver = ReliableEndpoint("B", receiver_net,
                                        retransmit_interval=0.05)
            receiver.on_message(
                lambda peer, payload: inbox.append(payload["i"]))
            host, port = receiver_net.address_of("B")
            sender_net.add_remote_party("B", host, port)
            sender = ReliableEndpoint("A", sender_net,
                                      retransmit_interval=0.05)
            # The receiver must be able to ack back to the sender.
            a_host, a_port = sender_net.address_of("A")
            receiver_net.add_remote_party("A", a_host, a_port)

            sender.send("B", {"i": 1})
            deadline = time.monotonic() + 5.0
            while not inbox and time.monotonic() < deadline:
                time.sleep(0.01)
            assert inbox == [1]

            # Peer restart: tear the whole receiving network down …
            receiver_net.close()
            sender.send("B", {"i": 2})  # lost or stuck — must be retried
            time.sleep(0.15)

            # … and bring it back on the same port with a fresh endpoint.
            # Pre-registering the listener pins the port; the endpoint's
            # own register() call then just installs its handler.
            receiver_net = TcpNetwork()
            receiver_net.register("B", lambda envelope: None, port=port)
            receiver = ReliableEndpoint("B", receiver_net,
                                        retransmit_interval=0.05)
            receiver.on_message(
                lambda peer, payload: inbox.append(payload["i"]))
            receiver_net.add_remote_party("A", a_host, a_port)

            deadline = time.monotonic() + 10.0
            while len(inbox) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert inbox == [1, 2]
            deadline = time.monotonic() + 5.0
            while sender.outstanding_count() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sender.outstanding_count() == 0
        finally:
            sender_net.close()
            receiver_net.close()

    def test_per_message_mode_still_delivers(self):
        network = TcpNetwork(pooled=False)
        try:
            done = threading.Event()
            inbox = []
            sender = ReliableEndpoint("A", network, retransmit_interval=0.2)
            receiver = ReliableEndpoint("B", network, retransmit_interval=0.2)

            def on_message(peer, payload):
                inbox.append((peer, payload))
                done.set()

            receiver.on_message(on_message)
            sender.send("B", {"hello": "legacy"})
            assert done.wait(5.0)
            assert inbox == [("A", {"hello": "legacy"})]
        finally:
            network.close()

    def test_reliable_delivery_under_injected_loss_pooled(self):
        network = TcpNetwork(drop_probability=0.3, drop_seed=5)
        try:
            inbox = []
            inbox_lock = threading.Lock()
            done = threading.Event()
            sender = ReliableEndpoint("A", network, retransmit_interval=0.03)
            receiver = ReliableEndpoint("B", network, retransmit_interval=0.03)

            def on_message(peer, payload):
                with inbox_lock:
                    inbox.append(payload["i"])
                    if len(inbox) >= 20:
                        done.set()

            receiver.on_message(on_message)
            for i in range(20):
                sender.send("B", {"i": i})
            assert done.wait(20.0)
            assert sorted(inbox) == list(range(20))
        finally:
            network.close()


class TestPoolMetrics:
    def test_connection_and_coalescing_metrics(self):
        from repro.obs import RecordingInstrumentation

        obs = RecordingInstrumentation()
        network = TcpNetwork(obs=obs)
        try:
            done = threading.Event()
            count = [0]
            sender = ReliableEndpoint("A", network, retransmit_interval=0.5,
                                      obs=obs)
            receiver = ReliableEndpoint("B", network, retransmit_interval=0.5,
                                        obs=obs)

            def on_message(peer, payload):
                count[0] += 1
                if count[0] >= 50:
                    done.set()

            receiver.on_message(on_message)
            for i in range(50):
                sender.send("B", {"i": i})
            assert done.wait(10.0)
            snapshot = obs.registry.snapshot()
            counters = snapshot["counters"]
            # One persistent connection each way — never one per message.
            opened = counters["transport.tcp.connections_opened"]
            assert 1 <= opened <= 4
            assert counters.get("transport.tcp.connections_reused", 0) >= 1
            assert counters.get("transport.tcp.frames_coalesced", 0) >= 2
        finally:
            network.close()
