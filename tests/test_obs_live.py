"""The live telemetry plane: exporter, health watchdogs, flight recorder."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.hooks import Instrumentation
from repro.obs.live import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    CounterDeltaRule,
    CounterRateRule,
    FlightRecorder,
    GaugeLevelRule,
    HealthMonitor,
    QuantileBudgetRule,
    RuleView,
    StalledRunsRule,
    TelemetryServer,
    default_rules,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recording import RecordingInstrumentation
from repro.obs.report import render_snapshot


class ManualClock:
    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_seq_monotonic(self):
        flight = FlightRecorder(capacity=4)
        for index in range(10):
            flight.record("tick", index=index)
        events = flight.events()
        assert len(events) == 4
        assert flight.recorded == 10
        assert [event["index"] for event in events] == [6, 7, 8, 9]
        assert [event["seq"] for event in events] == [7, 8, 9, 10]

    def test_dump_is_jsonl(self, tmp_path):
        flight = FlightRecorder(capacity=8)
        flight.record("a", x=1)
        flight.record("b", y="two")
        path = tmp_path / "flight.jsonl"
        count = flight.dump(str(path))
        assert count == 2
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "a" and parsed[0]["x"] == 1
        assert parsed[1]["kind"] == "b" and parsed[1]["y"] == "two"

    def test_clock_stamps_events(self):
        clock = ManualClock(41.0)
        flight = FlightRecorder(capacity=2, clock=clock)
        flight.record("a")
        clock.advance(1.0)
        flight.record("b")
        times = [event["t"] for event in flight.events()]
        assert times == [41.0, 42.0]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_recording_instrumentation_feeds_ring(self):
        obs = RecordingInstrumentation()
        obs.flight = FlightRecorder(capacity=16)
        obs.run_started("A", "obj", "r1", "proposer", "sync")
        obs.protocol_message("A", "obj", "r1", "m1", "sent", 128)
        obs.breaker_transition("A", "obj", "closed", "open")
        kinds = [event["kind"] for event in obs.flight.events()]
        assert kinds == ["run_started", "protocol_message",
                        "breaker_transition"]

    def test_no_flight_means_no_ring_work(self):
        # The default wiring must not require a recorder.
        obs = RecordingInstrumentation()
        assert obs.flight is None
        obs.run_started("A", "obj", "r1", "proposer", "sync")
        obs.gateway_rejected("A", "obj", "c", "overloaded", 0.05)


# ---------------------------------------------------------------------------
# torn-snapshot regression (satellite)
# ---------------------------------------------------------------------------


class TestSnapshotConsistency:
    def test_concurrent_observe_and_snapshot(self):
        """A histogram snapshot must never mix fields from different
        moments: with every observation equal to 2.0, any internally
        consistent snapshot has sum == 2 * count exactly."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        stop = threading.Event()
        errors: "list[str]" = []

        def writer():
            while not stop.is_set():
                histogram.observe(2.0)

        def reader():
            for _ in range(400):
                snap = registry.snapshot()["histograms"].get("h")
                if snap is None:
                    continue
                if snap["sum"] != 2.0 * snap["count"]:
                    errors.append(
                        f"torn: count={snap['count']} sum={snap['sum']}")
                if snap["count"] and not (snap["min"] <= snap["p50"]
                                          <= snap["max"]):
                    errors.append("quantile outside min/max")

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        stop.set()  # writers stop after readers spun up; some overlap ran
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]

    def test_concurrent_instrument_creation_during_snapshot(self):
        registry = MetricsRegistry()

        def creator():
            for index in range(300):
                registry.counter(f"c{index}").inc()
                registry.histogram(f"h{index}").observe(1.0)

        thread = threading.Thread(target=creator)
        thread.start()
        try:
            for _ in range(50):
                snapshot = registry.snapshot()
                assert isinstance(snapshot["counters"], dict)
        finally:
            thread.join()
        final = registry.snapshot()
        assert final["counters"]["c299"] == 1

    def test_gauge_snapshot_single_acquisition(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.set(3)
        assert gauge.snapshot() == {"value": 3.0, "high_water": 5.0}


# ---------------------------------------------------------------------------
# health rules
# ---------------------------------------------------------------------------


def _view(current=None, previous=None, elapsed=1.0, now=10.0):
    return RuleView(current or {}, previous or {}, elapsed, now)


class TestHealthRules:
    def test_counter_rate_rule(self):
        rule = CounterRateRule("storm", "retrans", 10.0)
        view = _view({"counters": {"retrans": 100}},
                     {"counters": {"retrans": 50}}, elapsed=2.0)
        assert rule.evaluate(view) == pytest.approx(25.0)
        calm = _view({"counters": {"retrans": 55}},
                     {"counters": {"retrans": 50}}, elapsed=2.0)
        assert rule.evaluate(calm) is None

    def test_counter_delta_rule_fires_on_any_growth(self):
        rule = CounterDeltaRule("flap", "transitions", 0.0)
        assert rule.evaluate(_view({"counters": {"transitions": 1}},
                                   {"counters": {}})) == 1.0
        assert rule.evaluate(_view({"counters": {"transitions": 1}},
                                   {"counters": {"transitions": 1}})) is None

    def test_gauge_level_rule(self):
        rule = GaugeLevelRule("sat", "depth", 8.0)
        hot = _view({"gauges": {"depth": {"value": 9.0, "high_water": 9.0}}})
        assert rule.evaluate(hot) == 9.0
        assert rule.evaluate(_view()) is None

    def test_quantile_budget_rule_needs_min_count(self):
        rule = QuantileBudgetRule("slow", "settle", 1.0, min_count=10)
        few = _view({"histograms": {"settle": {"count": 3, "p99": 9.0}}})
        assert rule.evaluate(few) is None
        many = _view({"histograms": {"settle": {"count": 50, "p99": 9.0}}})
        assert rule.evaluate(many) == 9.0

    def test_stalled_runs_rule_strikes(self):
        rule = StalledRunsRule(strikes=2)
        stalled = {"counters": {"protocol.runs.started": 5,
                                "protocol.runs.valid": 3}}
        assert rule.evaluate(_view(stalled, stalled)) is None  # strike 1
        assert rule.evaluate(_view(stalled, stalled)) == 2.0   # strike 2
        progressing = {"counters": {"protocol.runs.started": 6,
                                    "protocol.runs.valid": 4}}
        assert rule.evaluate(_view(progressing, stalled)) is None
        assert rule.severity == UNHEALTHY

    def test_rules_tolerate_empty_registry(self):
        view = _view()
        for rule in default_rules():
            assert rule.evaluate(view) is None

    def test_severity_validated(self):
        with pytest.raises(ValueError):
            CounterRateRule("x", "c", 1.0, severity="fine")


class _AlertCapture(Instrumentation):
    def __init__(self) -> None:
        self.alerts: "list[tuple]" = []
        self.changes: "list[tuple]" = []

    def health_alert(self, party, rule, severity, message, value, threshold):
        self.alerts.append((party, rule, severity, value, threshold))

    def health_changed(self, party, old_state, new_state):
        self.changes.append((party, old_state, new_state))


class TestHealthMonitor:
    def _monitor(self, registry, clock, **kwargs):
        capture = _AlertCapture()
        rules = [CounterDeltaRule("flap", "gateway.breaker.transitions",
                                  0.0, severity=DEGRADED)]
        monitor = HealthMonitor(registry, rules=rules, obs=capture,
                                party="OrgA", clock=clock.now, **kwargs)
        return monitor, capture

    def test_alert_once_per_episode_and_health_transitions(self):
        clock = ManualClock()
        registry = MetricsRegistry()
        monitor, capture = self._monitor(registry, clock)
        clock.advance(1.0)
        assert monitor.evaluate_once() == []
        assert monitor.health == HEALTHY

        registry.counter("gateway.breaker.transitions").inc()
        clock.advance(1.0)
        alerts = monitor.evaluate_once()
        assert [alert.rule for alert in alerts] == ["flap"]
        assert monitor.health == DEGRADED
        assert capture.alerts == [("OrgA", "flap", DEGRADED, 1.0, 0.0)]
        assert capture.changes == [("OrgA", HEALTHY, DEGRADED)]

        # Counter keeps growing: the rule stays red but the episode is
        # already open, so no second alert.
        registry.counter("gateway.breaker.transitions").inc()
        clock.advance(1.0)
        assert monitor.evaluate_once() == []
        assert monitor.health == DEGRADED

        # Quiet interval closes the episode and health recovers.
        clock.advance(1.0)
        assert monitor.evaluate_once() == []
        assert monitor.health == HEALTHY
        assert capture.changes[-1] == ("OrgA", DEGRADED, HEALTHY)
        assert [(old, new) for _, old, new in monitor.transitions] == [
            (HEALTHY, DEGRADED), (DEGRADED, HEALTHY)]

        # A fresh trip opens a new episode: a second alert is emitted.
        registry.counter("gateway.breaker.transitions").inc()
        clock.advance(1.0)
        assert [a.rule for a in monitor.evaluate_once()] == ["flap"]

    def test_worst_severity_wins(self):
        clock = ManualClock()
        registry = MetricsRegistry()
        rules = [
            GaugeLevelRule("queue", "depth", 1.0, severity=DEGRADED),
            GaugeLevelRule("deep", "depth", 5.0, severity=UNHEALTHY),
        ]
        monitor = HealthMonitor(registry, rules=rules, clock=clock.now)
        registry.gauge("depth").set(10)
        clock.advance(1.0)
        monitor.evaluate_once()
        assert monitor.health == UNHEALTHY
        assert monitor.firing() == {"queue", "deep"}

    def test_dump_on_alert(self, tmp_path):
        clock = ManualClock()
        registry = MetricsRegistry()
        flight = FlightRecorder(capacity=8, clock=clock)
        flight.record("protocol_message", phase="m1")
        dump = tmp_path / "dump.jsonl"
        monitor, _ = self._monitor(registry, clock, flight=flight,
                                   dump_path=str(dump))
        registry.counter("gateway.breaker.transitions").inc()
        clock.advance(1.0)
        monitor.evaluate_once()
        lines = dump.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "protocol_message"

    def test_status_shape(self):
        clock = ManualClock()
        monitor, _ = self._monitor(MetricsRegistry(), clock)
        status = monitor.status()
        assert status["health"] == HEALTHY
        assert status["firing"] == []
        assert status["alerts"] == []
        assert status["transitions"] == []

    def test_watchdog_thread_evaluates(self):
        registry = MetricsRegistry()
        registry.counter("gateway.breaker.transitions").inc()
        capture = _AlertCapture()
        rules = [CounterDeltaRule("flap", "gateway.breaker.transitions",
                                  0.0, severity=DEGRADED)]
        # Baseline is taken at construction, so inc() again afterwards.
        monitor = HealthMonitor(registry, rules=rules, obs=capture,
                                party="OrgA", interval=0.01)
        registry.counter("gateway.breaker.transitions").inc()
        monitor.start()
        try:
            deadline = threading.Event()
            for _ in range(200):
                if capture.alerts:
                    break
                deadline.wait(0.01)
            assert capture.alerts, "watchdog thread never evaluated"
        finally:
            monitor.stop()


# ---------------------------------------------------------------------------
# exporter
# ---------------------------------------------------------------------------


class TestPrometheusRendering:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("protocol.m1.sent").inc(3)
        registry.gauge("pipeline.depth").set(4)
        registry.histogram("gateway.settle_seconds").observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_protocol_m1_sent_total counter" in text
        assert "repro_protocol_m1_sent_total 3" in text
        assert "repro_pipeline_depth 4" in text
        assert "repro_pipeline_depth_high_water 4" in text
        assert 'repro_gateway_settle_seconds{quantile="0.99"}' in text
        assert "repro_gateway_settle_seconds_count 1" in text
        assert "repro_gateway_settle_seconds_sum 0.5" in text

    def test_name_sanitisation(self):
        registry = MetricsRegistry()
        registry.counter("gateway.breaker.closed->open").inc()
        text = render_prometheus(registry.snapshot())
        assert "repro_gateway_breaker_closed__open_total 1" in text

    def test_health_gauge(self):
        text = render_prometheus({}, {"health": "degraded",
                                      "firing": ["breaker_flap"]})
        assert "repro_node_health 1" in text
        assert 'repro_health_rule_firing{rule="breaker_flap"} 1' in text

    def test_empty_snapshot_renders(self):
        assert render_prometheus({}) == "\n"


class TestTelemetryServer:
    @pytest.fixture()
    def server(self):
        registry = MetricsRegistry()
        registry.counter("protocol.runs.started").inc(2)
        flight = FlightRecorder(capacity=8)
        flight.record("protocol_message", phase="m1")
        monitor = HealthMonitor(registry, rules=[])
        server = TelemetryServer(registry, monitor=monitor,
                                 flight=flight).start()
        yield server
        server.stop()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read().decode("utf-8")

    def test_metrics_route(self, server):
        status, body = self._get(server.url + "/metrics")
        assert status == 200
        assert "repro_protocol_runs_started_total 2" in body

    def test_metrics_json_route(self, server):
        status, body = self._get(server.url + "/metrics.json")
        assert status == 200
        payload = json.loads(body)
        assert payload["metrics"]["counters"]["protocol.runs.started"] == 2
        assert payload["health"]["health"] == HEALTHY
        assert payload["flight"]["recorded"] == 1

    def test_health_route(self, server):
        status, body = self._get(server.url + "/health")
        assert status == 200
        assert json.loads(body) == {"health": "healthy"}

    def test_flight_route(self, server):
        status, body = self._get(server.url + "/flight")
        assert status == 200
        assert json.loads(body.splitlines()[0])["kind"] == "protocol_message"

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_unhealthy_answers_503(self):
        registry = MetricsRegistry()
        rules = [GaugeLevelRule("deep", "depth", 1.0, severity=UNHEALTHY)]
        monitor = HealthMonitor(registry, rules=rules)
        registry.gauge("depth").set(5)
        monitor.evaluate_once()
        server = TelemetryServer(registry, monitor=monitor).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/health")
            assert excinfo.value.code == 503
        finally:
            server.stop()

    def test_flight_404_without_recorder(self):
        server = TelemetryServer(MetricsRegistry()).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.url + "/flight")
            assert excinfo.value.code == 404
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# end-to-end: injected party crash, watched live (acceptance scenario)
# ---------------------------------------------------------------------------


class TestCrashScenario:
    def test_crash_trips_breaker_alert_and_recovers(self, tmp_path):
        from repro.gateway import (
            CRASH_BREAKER_OPTIONS,
            CrashInjection,
            LoadSimConfig,
            build_gateway_community,
            run_crash_scenario,
        )

        dump = tmp_path / "flight.jsonl"
        watchdog = 0.5
        community, gateway, object_name = build_gateway_community(
            orgs=2, seed=7, obs=RecordingInstrumentation(),
            queue_capacity=256, max_inflight=64,
            breaker=dict(CRASH_BREAKER_OPTIONS),
            pipeline_options={"max_batch": 64})
        stats, live = run_crash_scenario(
            community, gateway, object_name,
            config=LoadSimConfig(clients=60, requests_per_client=2,
                                 arrival_window=3.0, seed=7),
            crash=CrashInjection(org="Org2", crash_at=1.0, recover_at=4.0),
            watchdog_interval=watchdog, dump_path=str(dump))

        # The crash tripped the breaker...
        transitions = gateway.breaker(object_name).transitions
        assert transitions, "crash never tripped the breaker"
        trip_time = transitions[0][0]
        assert trip_time > 1.0

        # ...and the watchdog alerted within one interval of the trip,
        # with no post-processing: the alert is already in the monitor.
        monitor = live.monitor
        alerts = [a for a in monitor.alerts if a.rule == "breaker_flap"]
        assert alerts, "no breaker HealthAlert fired"
        assert alerts[0].time - trip_time <= watchdog + 1e-9
        assert alerts[0].severity == DEGRADED

        # Node health went healthy -> degraded and ended healthy again.
        moves = [(old, new) for _, old, new in monitor.transitions]
        assert moves[0] == (HEALTHY, DEGRADED)
        assert moves[-1][1] == HEALTHY
        assert live.node.health() == HEALTHY

        # The flight dump was written on alert and holds the m1/m2/m3
        # protocol traffic that preceded the trip.
        events = [json.loads(line)
                  for line in dump.read_text().splitlines()]
        phases = {event["phase"] for event in events
                  if event["kind"] == "protocol_message"
                  and event["t"] <= trip_time}
        assert {"m1", "m2", "m3"} <= phases
        assert any(event["kind"] == "breaker_transition"
                   for event in events)

        # The load still made it through once the victim recovered.
        assert stats.settled_valid > 0

        # Satellite: rejections are labelled by reason and retry-after
        # hints land in the histogram.
        snapshot = live.registry.snapshot()
        rejected = gateway.stats()["rejected"]
        assert set(rejected) == {"rate_limited", "overloaded",
                                 "circuit_open"}
        if sum(rejected.values()):
            assert snapshot["histograms"][
                "gateway.retry_after_seconds"]["count"] > 0


# ---------------------------------------------------------------------------
# snapshot-based report rendering (satellite)
# ---------------------------------------------------------------------------


class TestReportRendering:
    def test_empty_snapshot_renders_without_errors(self):
        text = render_snapshot({})
        assert "== protocol phases" in text
        assert "== signature operations" in text
        # Sections gated on activity stay silent on an empty registry.
        assert "== gateway ==" not in text
        assert "== coordination runs ==" not in text

    def test_empty_registry_via_render_report(self):
        from repro.obs.report import render_report

        assert "== storage ==" in render_report(MetricsRegistry())

    def test_partial_gateway_section(self):
        # A gateway that only ever rejected: no settle histogram, no
        # queue gauge — the section must still render with zeros.
        snapshot = {"counters": {"gateway.rejected": 3,
                                 "gateway.rejected.overloaded": 3}}
        text = render_snapshot(snapshot)
        assert "shed (overloaded)" in text
        assert "retry-after p99 s" in text

    def test_gateway_retry_after_percentiles(self):
        obs = RecordingInstrumentation()
        obs.gateway_rejected("A", "obj", "c", "rate_limited", 0.25)
        obs.gateway_admitted("A", "obj", "c")
        text = render_snapshot(obs.registry.snapshot())
        assert "rate limited" in text
        assert "retry-after p50 s" in text
        assert "0.25" in text

    def test_partial_run_section(self):
        snapshot = {"counters": {"protocol.runs.started": 2}}
        text = render_snapshot(snapshot)
        assert "runs started" in text
        assert "run time p95 (s)" in text

    def test_health_section(self):
        text = render_snapshot({}, health={"health": "degraded",
                                           "firing": ["breaker_flap"],
                                           "alerts": [{"rule": "x"}],
                                           "transitions": []})
        assert "== node health ==" in text
        assert "degraded" in text
        assert "breaker_flap" in text
