"""Edge cases of the coordination engine not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.crypto.hashing import hash_value
from repro.protocol.coordination import freeze
from repro.protocol.events import MisbehaviourEvent, RunCompleted
from repro.protocol.messages import (
    MODE_UPDATE,
    build_proposal,
    make_signed,
    propose_message,
)
from repro.protocol.ids import new_state_id
from repro.protocol.validation import CallbackValidator, Decision, StateMerger

from tests.engine_helpers import EngineHarness, found


def make_harness(n=2, initial=None, seed=0, **kwargs):
    names = [f"P{i + 1}" for i in range(n)]
    harness = EngineHarness(names, seed=seed)
    found(harness, "obj", names, initial if initial is not None else {"v": 0},
          **kwargs)
    return harness


def engine(harness, name):
    return harness.party(name).session("obj").state


class TestFreeze:
    def test_freeze_deep_copies(self):
        original = {"a": [1, {"b": 2}]}
        frozen = freeze(original)
        original["a"][1]["b"] = 99
        assert frozen == {"a": [1, {"b": 2}]}

    def test_freeze_rejects_unencodable(self):
        with pytest.raises(TypeError):
            freeze({"bad": object()})


class TestUpdateModeEdges:
    def test_lying_update_hash_rejected(self):
        """m1 whose update_hash does not match the shipped update body."""
        harness = make_harness(seed=1)
        proposer = engine(harness, "P1")
        update = {"b": 2}
        resulting = {"v": 0, "b": 2}
        new_sid, _ = new_state_id(0, resulting, harness.party("P1").ctx.rng)
        payload = build_proposal(
            "P1", "obj", proposer.group.group_id, proposer.agreed_sid,
            new_sid, auth_commitment=hash_value(b"a" * 32),
            mode=MODE_UPDATE, update_hash=hash_value({"something": "else"}),
        )
        part = make_signed(payload, harness.party("P1").ctx.signer,
                           harness.tsa)
        harness.deliver("P1", "P2", propose_message(part, update))
        run = engine(harness, "P2").runs()[0]
        assert not run.own_decision.accepted
        assert any("update hash does not match" in d
                   for d in run.own_decision.diagnostics)

    def test_update_that_does_not_yield_claimed_state_rejected(self):
        harness = make_harness(seed=2)
        proposer = engine(harness, "P1")
        update = {"b": 2}
        lied_state = {"v": 0, "b": 999}  # not what applying the update gives
        new_sid, _ = new_state_id(0, lied_state, harness.party("P1").ctx.rng)
        payload = build_proposal(
            "P1", "obj", proposer.group.group_id, proposer.agreed_sid,
            new_sid, auth_commitment=hash_value(b"a" * 32),
            mode=MODE_UPDATE, update_hash=hash_value(update),
        )
        part = make_signed(payload, harness.party("P1").ctx.signer,
                           harness.tsa)
        harness.deliver("P1", "P2", propose_message(part, update))
        run = engine(harness, "P2").runs()[0]
        assert any("does not yield the claimed new state" in d
                   for d in run.own_decision.diagnostics)

    def test_responder_with_failing_merger_rejects_cleanly(self):
        class ExplodingMerger(StateMerger):
            def apply(self, state, update):
                raise RuntimeError("merge machinery broke")

        names = ["P1", "P2"]
        harness = EngineHarness(names, seed=3)
        harness.party("P1").create_object("obj", names, {"v": 0})
        harness.party("P2").create_object("obj", names, {"v": 0},
                                          merger=ExplodingMerger())
        run_id, output = engine(harness, "P1").propose_update({"b": 1})
        harness.pump("P1", output)
        run = engine(harness, "P2").run(run_id)
        assert not run.own_decision.accepted
        assert any("update could not be applied" in d
                   for d in run.own_decision.diagnostics)
        # the proposer rolled back and both replicas stay consistent
        assert engine(harness, "P1").current_state == {"v": 0}
        assert engine(harness, "P2").agreed_state == {"v": 0}


class TestProposeUpdateProposerFailure:
    def test_propose_update_with_broken_merger_raises(self):
        class ExplodingMerger(StateMerger):
            def apply(self, state, update):
                raise RuntimeError("merge machinery broke")

        harness = EngineHarness(["P1", "P2"], seed=4)
        harness.party("P1").create_object("obj", ["P1", "P2"], {"v": 0},
                                          merger=ExplodingMerger())
        harness.party("P2").create_object("obj", ["P1", "P2"], {"v": 0})
        with pytest.raises(RuntimeError):
            engine(harness, "P1").propose_update({"b": 1})
        assert not engine(harness, "P1").busy  # nothing half-started


class TestForceCompletionEdges:
    def test_unknown_run_is_noop(self):
        harness = make_harness(seed=10)
        output = engine(harness, "P1").force_completion("nope")
        assert output.messages == [] and output.events == []

    def test_settled_run_is_noop(self):
        harness = make_harness(seed=11)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        output = engine(harness, "P1").force_completion(run_id)
        assert output.messages == [] and output.events == []

    def test_responder_side_is_noop(self):
        harness = make_harness(3, seed=12)
        harness.blocked_edges = {("P1", "P3")}
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        output = engine(harness, "P2").force_completion(run_id)
        assert output.events == []


class TestAbortEdges:
    def test_abort_with_no_active_run_is_noop(self):
        harness = make_harness(seed=20)
        output = engine(harness, "P1").abort_active_run("why not")
        assert output.events == []

    def test_responder_can_locally_abandon_blocked_run(self):
        harness = make_harness(3, seed=21)
        # P2 accepted but m3 never arrives (P1 -> P2 blocked for commit).
        harness.blocked_edges = {("P1", "P2")}
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        assert engine(harness, "P2").busy is False  # P2 never got m1 at all
        # Instead: block only the commit by letting m1 through first.
        harness = make_harness(3, seed=22)
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        # deliver m1 to P2 but drop everything after
        for recipient, message in output.messages:
            if recipient == "P2":
                harness.deliver("P1", "P2", message)
        assert engine(harness, "P2").busy
        abort_output = engine(harness, "P2").abort_active_run("timeout")
        harness.pump("P2", abort_output)
        assert not engine(harness, "P2").busy
        assert engine(harness, "P2").agreed_state == {"v": 0}


class TestMiscHandling:
    def test_commit_for_own_proposal_flagged(self):
        harness = make_harness(seed=30)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        run = engine(harness, "P1").run(run_id)
        # reflect P1's own commit back at it under a fresh... P1's run is
        # settled, so the commit is simply ignored; craft an open one:
        harness2 = make_harness(3, seed=31)
        harness2.blocked_edges = {("P3", "P1")}
        run_id2, output2 = engine(harness2, "P1").propose_overwrite({"v": 1})
        harness2.pump("P1", output2)
        # P1's run is open (P3's response missing); now P2 echoes a fake
        # commit for it back to P1:
        fake_commit = {
            "msg_type": "commit",
            "object": "obj",
            "new_sid": engine(harness2, "P1").active_run().new_sid.to_dict(),
            "auth": b"",
            "proposal": engine(harness2, "P1").active_run().proposal.to_dict(),
            "responses": [],
        }
        harness2.deliver("P2", "P1", fake_commit)
        events = harness2.events_of("P1", MisbehaviourEvent)
        assert any(e.kind == "protocol-abuse" for e in events)
        assert engine(harness2, "P1").busy  # still waiting, not corrupted

    def test_proposal_from_non_member_rejected(self):
        harness = make_harness(2, seed=32)
        outsider = EngineHarness(["P3"], seed=33)
        found(outsider, "obj", ["P3"], {"v": 0})
        # P3 crafts a proposal for the P1/P2 object and sends it to P2.
        rogue = outsider.party("P3").session("obj").state
        run_id, output = rogue.propose_overwrite({"v": 666})
        message = propose_message(rogue.run(run_id).proposal,
                                  rogue.run(run_id).body)
        harness.deliver("P3", "P2", message)
        run = [r for r in engine(harness, "P2").runs()
               if r.proposer == "P3"]
        assert run and not run[0].own_decision.accepted
        assert any("not a group member" in d
                   for d in run[0].own_decision.diagnostics)

    def test_run_completed_events_carry_evidence(self):
        harness = make_harness(seed=34)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        completed = harness.events_of("P1", RunCompleted)[0]
        assert completed.evidence is not None
        assert completed.evidence["type"] == "authenticated-decision"
        assert completed.evidence["valid"] is True
