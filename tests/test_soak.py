"""Soak test: a long randomized scenario mixing every operation.

One deterministic pseudo-random schedule interleaves state overwrites,
updates, vetoes, joins, voluntary departures, evictions, crashes,
partitions and message loss — then asserts the global invariants: all
current members agree on state, group view and identifiers, and every
evidence chain verifies.
"""

from __future__ import annotations

import pytest

from repro.core import Community, DictB2BObject, SimRuntime
from repro.crypto.prng import DeterministicRandomSource
from repro.errors import B2BError, ValidationFailed
from repro.protocol.validation import CallbackValidator, Decision
from repro.transport.inmemory import LinkProfile

OPERATIONS = 60


class SoakDriver:
    def __init__(self, seed):
        self.rng = DeterministicRandomSource(f"soak:{seed}")
        profile = LinkProfile(latency=0.005, jitter=0.01,
                              drop_probability=0.1,
                              duplicate_probability=0.05)
        self.community = Community(
            ["Org1", "Org2", "Org3"],
            runtime=SimRuntime(seed=seed, profile=profile),
        )
        self.objects = {n: DictB2BObject() for n in self.community.names()}
        self.controllers = self.community.found_object(
            "soak", self.objects)
        self.members = ["Org1", "Org2", "Org3"]
        self.next_org = 4
        self.op_counter = 0
        self.stats = {"writes": 0, "vetoed": 0, "joins": 0, "leaves": 0,
                      "evictions": 0, "crashes": 0, "skipped": 0}

    def _choice(self, options):
        return options[self.rng.random_below(len(options))]

    def run(self):
        operations = ["write", "write", "write", "update", "veto_write",
                      "join", "leave", "evict", "crash_recover"]
        for _ in range(OPERATIONS):
            operation = self._choice(operations)
            try:
                getattr(self, f"op_{operation}")()
            except (ValidationFailed, B2BError):
                self.stats["skipped"] += 1
            self.community.settle(3.0)
        self.community.settle(10.0)
        return self.stats

    # -- operations ------------------------------------------------------

    def _writer(self):
        return self._choice(self.members)

    def op_write(self):
        org = self._writer()
        controller = self.controllers[org]
        controller.enter()
        controller.overwrite()
        self.op_counter += 1
        self.objects[org].set_attribute(f"w{self.op_counter}",
                                        self.rng.random_below(100))
        controller.leave()
        self.stats["writes"] += 1

    def op_update(self):
        org = self._writer()
        controller = self.controllers[org]
        controller.enter()
        controller.update()
        self.op_counter += 1
        self.objects[org].set_attribute(f"u{self.op_counter}", 1)
        controller.leave()
        self.stats["writes"] += 1

    def op_veto_write(self):
        org = self._writer()
        victims = [m for m in self.members if m != org]
        if not victims:
            return
        victim = self._choice(victims)
        engine = self.community.node(victim).party.session("soak").state
        original = engine.validator
        engine.validator = CallbackValidator(
            state=lambda p, c, pr: Decision.reject("soak veto")
        )
        try:
            controller = self.controllers[org]
            controller.enter()
            controller.overwrite()
            self.op_counter += 1
            self.objects[org].set_attribute(f"v{self.op_counter}", 1)
            with pytest.raises(ValidationFailed):
                controller.leave()
            self.stats["vetoed"] += 1
        finally:
            engine.validator = original

    def op_join(self):
        if len(self.members) >= 6:
            return
        name = f"Org{self.next_org}"
        self.next_org += 1
        self.community.add_organisation(name)
        sponsor = self.community.node(self.members[0]).party.session(
            "soak").group.connect_sponsor()
        replica = DictB2BObject()
        controller = self.community.node(name).connect(
            "soak", replica, sponsor, timeout=60.0)
        self.objects[name] = replica
        self.controllers[name] = controller
        self.members.append(name)
        self.stats["joins"] += 1

    def op_leave(self):
        if len(self.members) <= 2:
            return
        org = self.members[-1]  # most recent leaves
        self.controllers[org].disconnect()
        self.members.remove(org)
        del self.controllers[org]
        del self.objects[org]
        self.stats["leaves"] += 1

    def op_evict(self):
        if len(self.members) <= 2:
            return
        subject = self.members[0]
        proposer = self.members[-1]
        self.controllers[proposer].evict([subject])
        self.members.remove(subject)
        self.controllers.pop(subject, None)
        self.objects.pop(subject, None)
        self.stats["evictions"] += 1

    def op_crash_recover(self):
        org = self._choice(self.members)
        node = self.community.node(org)
        node.crash()
        self.community.settle(0.3)
        node.recover()
        self.stats["crashes"] += 1


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_mixed_operations(seed):
    driver = SoakDriver(seed)
    stats = driver.run()

    # Global invariants after the storm:
    community = driver.community
    members = driver.members
    assert len(members) >= 2
    # 1. every current member holds the identical agreed state + ids
    states, sids, groups = set(), set(), set()
    for name in members:
        engine = community.node(name).party.session("soak").state
        states.add(tuple(sorted(engine.agreed_state.items())))
        sids.add(engine.agreed_sid)
        groups.add(tuple(engine.group.members))
    assert len(states) == 1, stats
    assert len(sids) == 1
    assert groups == {tuple(members)}
    # 2. vetoed keys never appear in the agreed state
    agreed = dict(next(iter(states)))
    assert not any(key.startswith("v") for key in agreed)
    # 3. every member's evidence chain verifies
    for name in members:
        assert community.node(name).ctx.evidence.verify_chain() > 0
    # 4. the soak actually exercised a mix of operations
    assert stats["writes"] > 5
