"""RSA and HMAC signature schemes, certificates, and time-stamps."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.certificates import Certificate, CertificateAuthority, CertificateStore
from repro.crypto.prng import DeterministicRandomSource
from repro.crypto.rsa import RsaPublicKey, generate_keypair, rsa_sign_int, rsa_verify_int
from repro.crypto.signature import (
    HmacSigner,
    HmacVerifier,
    Signature,
    generate_party_keypair,
    verifier_for_public_key,
)
from repro.crypto.timestamp import TimestampService, verify_timestamp
from repro.errors import CertificateError, KeyGenerationError, SignatureError, TimestampError
from repro.util.clocks import VirtualClock

RNG = DeterministicRandomSource("signature-tests")
KEYPAIR = generate_party_keypair("Alice", bits=512, rng=RNG)
OTHER = generate_party_keypair("Bob", bits=512, rng=RNG)


class TestRsaRaw:
    def test_sign_verify_round_trip(self):
        key = KEYPAIR.private_key
        message = 12345678901234567890
        assert rsa_verify_int(key.public_key, rsa_sign_int(key, message)) == message

    def test_out_of_range_rejected(self):
        key = KEYPAIR.private_key
        with pytest.raises(ValueError):
            rsa_sign_int(key, key.modulus)

    def test_keypair_modulus_bits(self):
        assert KEYPAIR.private_key.modulus.bit_length() == 512

    def test_crt_parameters_precomputed_at_construction(self):
        # Signing is the per-message hot path: dp/dq/q_inv must be
        # derived once, not per _crt_power call, and must be consistent.
        from repro.crypto.numbers import mod_inverse

        key = KEYPAIR.private_key
        assert key.crt_dp == key.private_exponent % (key.prime_p - 1)
        assert key.crt_dq == key.private_exponent % (key.prime_q - 1)
        assert key.crt_q_inv == mod_inverse(key.prime_q, key.prime_p)
        message = 98765432109876543210
        assert pow(rsa_sign_int(key, message), key.public_exponent,
                   key.modulus) == message

    def test_keygen_rejects_tiny_modulus(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(64, RNG)

    def test_keygen_rejects_even_exponent(self):
        with pytest.raises(KeyGenerationError):
            generate_keypair(256, RNG, public_exponent=4)

    def test_public_key_serialisation(self):
        public = KEYPAIR.public_key
        assert RsaPublicKey.from_dict(public.to_dict()) == public

    def test_public_key_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            RsaPublicKey.from_dict({"kind": "dsa", "n": 1, "e": 1})


class TestRsaSignatures:
    def test_round_trip(self):
        signer, verifier = KEYPAIR.signer(), KEYPAIR.verifier()
        value = {"action": "propose", "seq": 7, "blob": b"\x01\x02"}
        assert verifier.verify(value, signer.sign(value))

    def test_modified_value_fails(self):
        signer, verifier = KEYPAIR.signer(), KEYPAIR.verifier()
        sig = signer.sign({"x": 1})
        assert not verifier.verify({"x": 2}, sig)

    def test_wrong_key_fails(self):
        sig = KEYPAIR.signer().sign({"x": 1})
        assert not OTHER.verifier().verify({"x": 1}, sig)

    def test_tampered_signature_bytes_fail(self):
        signer, verifier = KEYPAIR.signer(), KEYPAIR.verifier()
        sig = signer.sign({"x": 1})
        bad = Signature(sig.scheme, sig.signer,
                        bytes([sig.value[0] ^ 1]) + sig.value[1:])
        assert not verifier.verify({"x": 1}, bad)

    def test_wrong_length_signature_fails(self):
        verifier = KEYPAIR.verifier()
        assert not verifier.verify({"x": 1},
                                   Signature("rsa-sha256", "Alice", b"short"))

    def test_wrong_scheme_fails(self):
        verifier = KEYPAIR.verifier()
        sig = KEYPAIR.signer().sign({"x": 1})
        assert not verifier.verify(
            {"x": 1}, Signature("hmac-sha256", sig.signer, sig.value)
        )

    def test_signatures_are_deterministic(self):
        signer = KEYPAIR.signer()
        assert signer.sign({"x": 1}).value == signer.sign({"x": 1}).value

    def test_require_raises_with_context(self):
        verifier = KEYPAIR.verifier()
        sig = KEYPAIR.signer().sign({"x": 1})
        with pytest.raises(SignatureError, match="proposal"):
            verifier.require({"x": 2}, sig, "proposal")

    def test_signature_serialisation(self):
        sig = KEYPAIR.signer().sign({"x": 1})
        assert Signature.from_dict(sig.to_dict()) == sig

    def test_verifier_from_serialised_key(self):
        sig = KEYPAIR.signer().sign({"x": 1})
        verifier = verifier_for_public_key(KEYPAIR.public_key.to_dict())
        assert verifier.verify({"x": 1}, sig)

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.integers(min_value=0, max_value=2**32),
                           max_size=4))
    def test_round_trip_property(self, value):
        assert KEYPAIR.verifier().verify(value, KEYPAIR.signer().sign(value))


class TestHmacScheme:
    def test_round_trip(self):
        signer = HmacSigner("A", b"shared-key")
        verifier = HmacVerifier(b"shared-key")
        assert verifier.verify({"x": 1}, signer.sign({"x": 1}))

    def test_wrong_key_fails(self):
        signer = HmacSigner("A", b"key1")
        assert not HmacVerifier(b"key2").verify({"x": 1}, signer.sign({"x": 1}))

    def test_scheme_is_tagged_non_repudiable(self):
        # evidence verification distinguishes MACs from true signatures
        assert HmacSigner("A", b"k").sign({}).scheme == "hmac-sha256"


class TestCertificates:
    def _authority(self, clock=None):
        return CertificateAuthority(
            "RootCA", clock=clock,
            keypair=generate_party_keypair("RootCA", bits=512, rng=RNG),
        )

    def test_issue_and_verify(self):
        ca = self._authority()
        cert = ca.issue("Alice", KEYPAIR.public_key)
        store = CertificateStore()
        store.trust_authority("RootCA", ca.verifier)
        store.add_certificate(cert)
        sig = KEYPAIR.signer().sign({"m": 1})
        assert store.verifier_for("Alice").verify({"m": 1}, sig)

    def test_untrusted_issuer_rejected(self):
        ca = self._authority()
        cert = ca.issue("Alice", KEYPAIR.public_key)
        store = CertificateStore()
        with pytest.raises(CertificateError, match="untrusted"):
            store.add_certificate(cert)

    def test_forged_certificate_rejected(self):
        ca = self._authority()
        cert = ca.issue("Alice", KEYPAIR.public_key)
        forged = Certificate(
            serial=cert.serial, subject="Mallory", issuer=cert.issuer,
            public_key=cert.public_key, not_before=cert.not_before,
            not_after=cert.not_after, signature=cert.signature,
        )
        store = CertificateStore()
        store.trust_authority("RootCA", ca.verifier)
        with pytest.raises(CertificateError, match="invalid issuer signature"):
            store.add_certificate(forged)

    def test_expired_certificate_rejected(self):
        clock = VirtualClock()
        ca = self._authority(clock)
        cert = ca.issue("Alice", KEYPAIR.public_key, lifetime=10.0)
        store = CertificateStore(clock=clock)
        store.trust_authority("RootCA", ca.verifier)
        store.add_certificate(cert)
        clock.advance(11.0)
        with pytest.raises(CertificateError, match="expired"):
            store.verifier_for("Alice")

    def test_revocation(self):
        ca = self._authority()
        cert = ca.issue("Alice", KEYPAIR.public_key)
        store = CertificateStore()
        store.trust_authority("RootCA", ca.verifier)
        store.add_certificate(cert)
        ca.revoke(cert.serial)
        store.update_revocations("RootCA", ca.revocation_list())
        with pytest.raises(CertificateError, match="revoked"):
            store.verifier_for("Alice")

    def test_unknown_party(self):
        store = CertificateStore()
        with pytest.raises(CertificateError, match="no certificate"):
            store.verifier_for("Nobody")

    def test_serialisation_round_trip(self):
        ca = self._authority()
        cert = ca.issue("Alice", KEYPAIR.public_key)
        assert Certificate.from_dict(cert.to_dict()) == cert

    def test_serials_increment(self):
        ca = self._authority()
        c1 = ca.issue("Alice", KEYPAIR.public_key)
        c2 = ca.issue("Bob", OTHER.public_key)
        assert c2.serial == c1.serial + 1


class TestTimestamps:
    def test_stamp_and_verify(self):
        clock = VirtualClock(123.456)
        tsa = TimestampService(
            clock=clock, keypair=generate_party_keypair("TSA", bits=512, rng=RNG)
        )
        token = tsa.stamp({"deal": "x"})
        verify_timestamp(token, {"deal": "x"}, tsa.verifier)
        assert token.time == pytest.approx(123.456, abs=0.001)

    def test_wrong_value_rejected(self):
        tsa = TimestampService(
            keypair=generate_party_keypair("TSA", bits=512, rng=RNG)
        )
        token = tsa.stamp({"deal": "x"})
        with pytest.raises(TimestampError, match="digest"):
            verify_timestamp(token, {"deal": "y"}, tsa.verifier)

    def test_wrong_service_key_rejected(self):
        tsa = TimestampService(
            keypair=generate_party_keypair("TSA", bits=512, rng=RNG)
        )
        token = tsa.stamp({"deal": "x"})
        with pytest.raises(TimestampError, match="signature"):
            verify_timestamp(token, {"deal": "x"}, OTHER.verifier())

    def test_issued_counter(self):
        tsa = TimestampService(
            keypair=generate_party_keypair("TSA", bits=512, rng=RNG)
        )
        tsa.stamp({"a": 1})
        tsa.stamp({"b": 2})
        assert tsa.issued_count == 2

    def test_token_serialisation(self):
        from repro.crypto.timestamp import TimestampToken
        tsa = TimestampService(
            keypair=generate_party_keypair("TSA", bits=512, rng=RNG)
        )
        token = tsa.stamp({"a": 1})
        assert TimestampToken.from_dict(token.to_dict()) == token


class TestMinimumModulus:
    def test_smallest_modulus_that_fits_sha256_signature(self):
        # EMSA-PKCS1-v1_5 with SHA-256 needs 51 payload bytes + 3 frame
        # bytes + >= 8 padding bytes = 62 bytes = 496 bits.
        from repro.crypto.signature import RsaSigner, RsaVerifier
        from repro.crypto.rsa import generate_keypair
        keypair = generate_keypair(496, RNG)
        signer = RsaSigner("Tiny", keypair)
        verifier = RsaVerifier(keypair.public_key)
        signature = signer.sign({"x": 1})
        assert verifier.verify({"x": 1}, signature)

    def test_too_small_modulus_raises_on_sign(self):
        from repro.crypto.signature import RsaSigner
        from repro.crypto.rsa import generate_keypair
        keypair = generate_keypair(488, RNG)
        signer = RsaSigner("TooTiny", keypair)
        with pytest.raises(SignatureError, match="too small"):
            signer.sign({"x": 1})
