"""The docs checker itself: broken links and stale examples are caught."""

from __future__ import annotations

import importlib.util
import os

import pytest

TOOL_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "tools", "check_docs.py")


@pytest.fixture
def check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_docs_are_clean(check_docs):
    """The committed documentation passes its own gate."""
    assert check_docs.check_links() == []
    assert check_docs.check_examples() == []


def test_broken_link_reported(check_docs, tmp_path, monkeypatch):
    (tmp_path / "doc.md").write_text(
        "see [the spec](missing/SPEC.md) and [web](https://example.com)\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
    problems = check_docs.check_links()
    assert len(problems) == 1
    assert "missing/SPEC.md" in problems[0]


def test_links_inside_code_blocks_ignored(check_docs, tmp_path, monkeypatch):
    (tmp_path / "doc.md").write_text(
        "```\n[not a link](nowhere.md)\n```\n"
        "and inline `[also not](gone.md)` code\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
    assert check_docs.check_links() == []


def test_anchors_and_existing_targets_resolve(check_docs, tmp_path,
                                              monkeypatch):
    (tmp_path / "other.md").write_text("# other\n")
    (tmp_path / "doc.md").write_text(
        "[sibling](other.md#some-anchor) [self](#local)\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
    assert check_docs.check_links() == []


def test_failing_example_reported(check_docs, tmp_path, monkeypatch):
    (tmp_path / "BAD.md").write_text(
        "intro\n```python\nraise RuntimeError('stale example')\n```\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
    monkeypatch.setattr(check_docs, "EXECUTABLE_DOCS", ("BAD.md",))
    problems = check_docs.check_examples()
    assert len(problems) == 1
    assert "stale example" in problems[0]


def test_placeholder_examples_skipped(check_docs, tmp_path, monkeypatch):
    (tmp_path / "DOC.md").write_text(
        "```python\nconnect(host, ...)  # illustrative\n```\n"
        "```python\nx = 1 + 1\nassert x == 2\n```\n"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
    monkeypatch.setattr(check_docs, "EXECUTABLE_DOCS", ("DOC.md",))
    assert check_docs.check_examples() == []
