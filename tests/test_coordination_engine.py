"""The state coordination protocol at the engine level (sections 4.2-4.4)."""

from __future__ import annotations

import pytest

from repro.errors import ConcurrencyError
from repro.protocol.coordination import OUTCOME_INVALID, OUTCOME_VALID
from repro.protocol.events import (
    MisbehaviourEvent,
    RunBlocked,
    RunCompleted,
    StateInstalled,
    StateRolledBack,
)
from repro.protocol.validation import CallbackValidator, Decision

from tests.engine_helpers import EngineHarness, found


def make_harness(n=3, initial=None, seed=0, **kwargs):
    names = [f"P{i + 1}" for i in range(n)]
    harness = EngineHarness(names, seed=seed)
    found(harness, "obj", names, initial if initial is not None else {"v": 0},
          **kwargs)
    return harness


def engine(harness, name):
    return harness.party(name).session("obj").state


class TestHappyPath:
    def test_unanimous_overwrite_installs_everywhere(self):
        harness = make_harness(3)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        for name in harness.names:
            assert engine(harness, name).agreed_state == {"v": 1}
            assert engine(harness, name).current_state == {"v": 1}
        completed = harness.events_of("P1", RunCompleted)
        assert completed and completed[0].valid and completed[0].run_id == run_id

    def test_all_parties_share_the_agreed_identifier(self):
        harness = make_harness(4)
        _, output = engine(harness, "P2").propose_overwrite({"v": 9})
        harness.pump("P2", output)
        sids = {engine(harness, n).agreed_sid for n in harness.names}
        assert len(sids) == 1
        assert next(iter(sids)).seq == 1

    def test_sequence_numbers_advance_across_proposers(self):
        harness = make_harness(3)
        for index, proposer in enumerate(["P1", "P2", "P3", "P1"]):
            _, output = engine(harness, proposer).propose_overwrite(
                {"v": index + 1}
            )
            harness.pump(proposer, output)
        assert engine(harness, "P2").agreed_sid.seq == 4

    def test_update_mode(self):
        harness = make_harness(3, initial={"a": 1})
        _, output = engine(harness, "P1").propose_update({"b": 2})
        harness.pump("P1", output)
        for name in harness.names:
            assert engine(harness, name).agreed_state == {"a": 1, "b": 2}

    def test_singleton_group_trivially_valid(self):
        harness = EngineHarness(["Solo"])
        found(harness, "obj", ["Solo"], {"v": 0})
        run_id, output = engine(harness, "Solo").propose_overwrite({"v": 1})
        harness.pump("Solo", output)
        assert engine(harness, "Solo").agreed_state == {"v": 1}
        assert engine(harness, "Solo").run(run_id).outcome == OUTCOME_VALID

    def test_two_party(self):
        harness = make_harness(2)
        _, output = engine(harness, "P2").propose_overwrite({"v": 5})
        harness.pump("P2", output)
        assert engine(harness, "P1").agreed_state == {"v": 5}

    def test_states_are_frozen_copies(self):
        harness = make_harness(2)
        state = {"v": 1, "nested": [1, 2]}
        _, output = engine(harness, "P1").propose_overwrite(state)
        state["nested"].append(3)  # caller mutates afterwards
        harness.pump("P1", output)
        assert engine(harness, "P2").agreed_state == {"v": 1, "nested": [1, 2]}

    def test_evidence_and_journal_written(self):
        harness = make_harness(2)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        log = harness.party("P1").ctx.evidence
        assert log.find("proposal-sent", run_id=run_id) is not None
        assert log.find("authenticated-decision", run_id=run_id) is not None
        assert log.verify_chain() > 0
        journal = harness.party("P1").ctx.journal
        assert journal.outcome(run_id) == OUTCOME_VALID
        assert not journal.open_runs()

    def test_checkpoint_saved_on_install(self):
        harness = make_harness(2)
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        for name in harness.names:
            checkpoint = harness.party(name).ctx.checkpoints.require_latest("obj")
            assert checkpoint.state == {"v": 1} and checkpoint.sequence == 1


class TestVetoAndRollback:
    def test_single_veto_invalidates(self):
        harness = make_harness(3)
        engine(harness, "P3").validator = CallbackValidator(
            state=lambda p, c, proposer: Decision.reject("policy says no")
        )
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        for name in harness.names:
            assert engine(harness, name).agreed_state == {"v": 0}
        completed = harness.events_of("P1", RunCompleted)[0]
        assert not completed.valid
        assert any("policy says no" in d for d in completed.diagnostics)

    def test_proposer_rolls_back(self):
        harness = make_harness(2)
        engine(harness, "P2").validator = CallbackValidator(
            state=lambda p, c, proposer: Decision.reject("no")
        )
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        # invariant 2: pre-applied before responses arrive
        harness.pump("P1", output)
        rollbacks = harness.events_of("P1", StateRolledBack)
        assert rollbacks and rollbacks[0].state == {"v": 0}
        assert engine(harness, "P1").current_state == {"v": 0}
        assert engine(harness, "P1").current_sid == engine(harness, "P1").agreed_sid

    def test_rejected_run_leaves_engines_unblocked(self):
        harness = make_harness(3)
        engine(harness, "P2").validator = CallbackValidator(
            state=lambda p, c, proposer: Decision.reject("no")
        )
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        for name in harness.names:
            assert not engine(harness, name).busy
        # and a subsequent valid proposal succeeds
        engine(harness, "P2").validator = CallbackValidator()
        _, output = engine(harness, "P1").propose_overwrite({"v": 2})
        harness.pump("P1", output)
        assert engine(harness, "P3").agreed_state == {"v": 2}

    def test_update_veto(self):
        harness = make_harness(2, initial={"a": 1})
        engine(harness, "P2").validator = CallbackValidator(
            update=lambda u, r, c, proposer: Decision.reject("bad delta")
        )
        _, output = engine(harness, "P1").propose_update({"b": 2})
        harness.pump("P1", output)
        assert engine(harness, "P2").agreed_state == {"a": 1}
        assert engine(harness, "P1").current_state == {"a": 1}


class TestInvariants:
    def test_invariant_1_mid_transition_proposer_rejected(self):
        """A responder whose replica is mid-transition rejects (busy)."""
        harness = make_harness(3)
        # P1's proposal never reaches anyone: P1 is mid-transition
        # (invariant 2 pre-apply) while P2 and P3 remain free.
        harness.blocked_edges = {("P1", "P2"), ("P1", "P3")}
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        harness.blocked_edges = set()
        _, output = engine(harness, "P2").propose_overwrite({"v": 2})
        harness.pump("P2", output)
        completed = harness.events_of("P2", RunCompleted)[0]
        assert not completed.valid
        assert any("invariant-1" in d or "busy" in d
                   for d in completed.diagnostics)

    def test_invariant_3_stale_sequence_rejected(self):
        harness = make_harness(2)
        stale = engine(harness, "P1")
        # Drive a real run to advance both parties to seq 1.
        _, output = engine(harness, "P2").propose_overwrite({"v": 7})
        harness.pump("P2", output)
        # Forge a proposal with seq <= agreed by resetting the counter.
        stale.highest_seq_seen = 0
        _, output = stale.propose_overwrite({"v": 8})
        harness.pump("P1", output)
        completed = [e for e in harness.events_of("P1", RunCompleted)
                     if e.role == "proposer"]
        assert completed and not completed[-1].valid
        assert any("invariant-3" in d for d in completed[-1].diagnostics)

    def test_invariant_4_replayed_tuple_rejected(self, ):
        harness = make_harness(2)
        proposer = engine(harness, "P1")
        run_id, output = proposer.propose_overwrite({"v": 1})
        original_m1 = None
        for recipient, message in output.messages:
            if message.get("msg_type") == "propose":
                original_m1 = message
        harness.pump("P1", output)
        # Replay the original m1: the engine re-handles idempotently and
        # re-sends its stored response, not a second acceptance.
        before = len(harness.party("P2").ctx.evidence._store._records)
        harness.deliver("P1", "P2", original_m1)
        assert engine(harness, "P2").agreed_state == {"v": 1}
        # no new proposal-received evidence (idempotent path)
        log = harness.party("P2").ctx.evidence
        received = [e for e in log.entries("proposal-received")]
        assert len(received) == 1

    def test_null_transition_rejected(self):
        harness = make_harness(2, initial={"v": 0})
        _, output = engine(harness, "P1").propose_overwrite({"v": 0})
        harness.pump("P1", output)
        completed = harness.events_of("P1", RunCompleted)[0]
        assert not completed.valid
        assert any("null state transition" in d for d in completed.diagnostics)

    def test_null_transition_allowed_when_configured(self):
        names = ["P1", "P2"]
        harness = EngineHarness(names)
        found(harness, "obj", names, {"v": 0}, reject_null_transitions=False)
        _, output = engine(harness, "P1").propose_overwrite({"v": 0})
        harness.pump("P1", output)
        assert harness.events_of("P1", RunCompleted)[0].valid

    def test_reinstalling_an_earlier_state_is_legitimate(self):
        # uniqueness refers to the proposal tuple, not the proposed state
        harness = make_harness(2, initial={"v": 0})
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        _, output = engine(harness, "P2").propose_overwrite({"v": 0})
        harness.pump("P2", output)
        assert engine(harness, "P1").agreed_state == {"v": 0}
        assert engine(harness, "P1").agreed_sid.seq == 2


class TestConcurrencyControl:
    def test_proposer_cannot_start_two_runs(self):
        harness = make_harness(3)
        harness.blocked_edges = {("P2", "P1"), ("P3", "P1")}
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        with pytest.raises(ConcurrencyError):
            engine(harness, "P1").propose_overwrite({"v": 2})

    def test_busy_responder_rejects_competing_proposal(self):
        harness = make_harness(3)
        # P1 proposes but its commit never reaches P3
        harness.blocked_edges = {("P1", "P3")}
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        assert engine(harness, "P3").busy is False  # P3 never saw m1
        assert engine(harness, "P2").busy  # P2 accepted, waiting for m3
        harness.blocked_edges = set()
        _, output = engine(harness, "P3").propose_overwrite({"v": 2})
        harness.pump("P3", output)
        completed = harness.events_of("P3", RunCompleted)[-1]
        assert not completed.valid
        assert any("busy" in d or "invariant-1" in d
                   for d in completed.diagnostics)

    def test_concurrent_runs_converge_to_one_winner(self):
        # Proposals from P1 and P2 race; serialisation ensures at most one
        # installs and all replicas agree afterwards.
        harness = make_harness(3)
        _, out1 = engine(harness, "P1").propose_overwrite({"v": 1})
        _, out2 = engine(harness, "P2").propose_overwrite({"v": 2})
        harness.pump("P1", out1)
        harness.pump("P2", out2)
        states = {tuple(sorted(engine(harness, n).agreed_state.items()))
                  for n in harness.names}
        assert len(states) == 1


class TestIdempotenceAndRecovery:
    def test_duplicate_m1_resends_response(self):
        harness = make_harness(2)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        m1 = output.messages[0][1]
        harness.pump("P1", output)
        # duplicate m1 handled idempotently; still settled once
        harness.deliver("P1", "P2", m1)
        assert engine(harness, "P2").run(run_id).outcome == OUTCOME_VALID
        completions = harness.events_of("P2", RunCompleted)
        assert len(completions) == 1

    def test_resend_outstanding_completes_after_loss(self):
        harness = make_harness(3)
        harness.blocked_edges = {("P1", "P3")}  # P3 misses m1
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        assert engine(harness, "P1").busy
        harness.blocked_edges = set()
        resend = harness.party("P1").resend_outstanding()
        harness.pump("P1", resend)
        for name in harness.names:
            assert engine(harness, name).agreed_state == {"v": 1}

    def test_late_response_after_settlement_triggers_commit_resend(self):
        harness = make_harness(3)
        # P3's first response is lost; P1 can't finish until resend.
        harness.blocked_edges = {("P3", "P1")}
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        assert engine(harness, "P1").busy
        harness.blocked_edges = set()
        resend = harness.party("P3").resend_outstanding()
        harness.pump("P3", resend)
        assert engine(harness, "P1").agreed_state == {"v": 1}
        assert engine(harness, "P3").agreed_state == {"v": 1}

    def test_check_progress_reports_blocked_runs(self):
        harness = make_harness(2)
        harness.blocked_edges = {("P2", "P1")}
        _, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        harness.clock.advance(100.0)
        progress = engine(harness, "P1").check_progress(timeout=10.0)
        blocked = [e for e in progress.events if isinstance(e, RunBlocked)]
        assert blocked and blocked[0].waiting_on == ["P2"]
        assert blocked[0].age >= 100.0

    def test_abort_active_run(self):
        harness = make_harness(2)
        harness.blocked_edges = {("P2", "P1")}
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        output = engine(harness, "P1").abort_active_run("operator decision")
        harness.pump("P1", output)
        run = engine(harness, "P1").run(run_id)
        assert run.outcome == OUTCOME_INVALID
        assert engine(harness, "P1").current_state == {"v": 0}
        assert not engine(harness, "P1").busy


class TestMisbehaviourDetection:
    def test_impersonated_proposal_dropped(self):
        harness = make_harness(3)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        m1 = output.messages[0][1]
        # P3 relays P1's proposal claiming to be the proposer transport-wise
        harness.deliver("P3", "P2", m1)
        events = harness.events_of("P2", MisbehaviourEvent)
        assert any(e.kind == "impersonation" for e in events)
        assert engine(harness, "P2").agreed_state == {"v": 0}

    def test_unsolicited_response_detected(self):
        harness = make_harness(3)
        run_id, output = engine(harness, "P1").propose_overwrite({"v": 1})
        harness.pump("P1", output)
        # P2 sends its (now stale) response for a non-existent run at P3
        response = engine(harness, "P2").run(run_id).own_response
        from repro.protocol.messages import respond_message
        harness.deliver("P2", "P3", respond_message(response))
        events = harness.events_of("P3", MisbehaviourEvent)
        assert any(e.kind == "unsolicited-response" for e in events)

    def test_malformed_message_detected(self):
        harness = make_harness(2)
        harness.deliver("P1", "P2", {"msg_type": "propose", "object": "obj",
                                     "proposal": "junk"})
        events = harness.events_of("P2", MisbehaviourEvent)
        assert any(e.kind == "malformed-message" for e in events)

    def test_unknown_message_type_detected(self):
        harness = make_harness(2)
        output = engine(harness, "P2").handle("P1", {"msg_type": "sabotage"})
        assert any(isinstance(e, MisbehaviourEvent)
                   and e.kind == "unknown-message" for e in output.events)

    def test_unroutable_message_ignored(self):
        harness = make_harness(2)
        harness.deliver("P1", "P2", {"msg_type": "propose"})  # no object
        assert harness.events_of("P2") == []

    def test_commit_for_unknown_run_flags_selective_send(self):
        # Build a genuine commit in a twin deployment (same parties/keys),
        # then present it to a replica that never saw the proposal — the
        # situation a selectively-sending proposer creates.
        twin = make_harness(2, seed=1)
        commit_holder = {}
        run_id, output = engine(twin, "P1").propose_overwrite({"v": 1})
        twin.pump("P1", output)
        run = engine(twin, "P1").run(run_id)
        assert run.commit is not None
        victim_harness = make_harness(2, seed=2)
        harness = victim_harness
        harness.deliver("P1", "P2", run.commit)
        events = harness.events_of("P2", MisbehaviourEvent)
        assert any(e.kind == "selective-send" for e in events)
        assert engine(harness, "P2").agreed_state == {"v": 0}
