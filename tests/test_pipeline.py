"""The proposal pipeline: batched runs, busy retries, replay window."""

from __future__ import annotations

import pytest

from repro.core import Community, DictB2BObject
from repro.obs.recording import RecordingInstrumentation
from repro.protocol.coordination import OUTCOME_INVALID
from repro.protocol.events import MisbehaviourEvent, RunCompleted
from repro.protocol.pipeline import ProposalPipeline, is_transient_rejection
from repro.protocol.validation import CallbackValidator, Decision

from tests.engine_helpers import EngineHarness, found


def make_harness(n=3, initial=None, seed=0, **kwargs):
    names = [f"P{i + 1}" for i in range(n)]
    harness = EngineHarness(names, seed=seed)
    found(harness, "obj", names, initial if initial is not None else {"v": 0},
          **kwargs)
    return harness


def engine(harness, name):
    return harness.party(name).session("obj").state


def completed_run(harness, name, run_id):
    for event in harness.events_of(name, RunCompleted):
        if event.run_id == run_id:
            return event
    raise AssertionError(f"no RunCompleted for {run_id} at {name}")


class TestBatchedProposals:
    def test_batch_folds_updates_in_order(self):
        harness = make_harness(3, initial={"v": 0})
        run_id, output = engine(harness, "P1").propose_update_batch(
            [{"a": 1}, {"b": 2}, {"v": 9}]
        )
        harness.pump("P1", output)
        for name in harness.names:
            assert engine(harness, name).agreed_state == {
                "a": 1, "b": 2, "v": 9,
            }
        assert completed_run(harness, "P1", run_id).valid

    def test_batch_costs_one_run(self):
        harness = make_harness(2, initial={"v": 0})
        _, output = engine(harness, "P1").propose_update_batch(
            [{"k": i} for i in range(10)]
        )
        harness.pump("P1", output)
        assert engine(harness, "P2").agreed_state == {"v": 0, "k": 9}
        # Ten updates advanced the agreed sequence by exactly one.
        assert engine(harness, "P2").agreed_sid.seq == 1

    def test_empty_batch_rejected_locally(self):
        harness = make_harness(2)
        with pytest.raises(ValueError):
            engine(harness, "P1").propose_update_batch([])

    def test_per_step_validation_names_the_offending_step(self):
        harness = make_harness(2, initial={"v": 0})
        engine(harness, "P2").validator = CallbackValidator(
            update=lambda update, resulting, current, proposer:
                Decision.reject("negative values forbidden")
                if update.get("v", 0) < 0 else Decision.accept()
        )
        run_id, output = engine(harness, "P1").propose_update_batch(
            [{"v": 1}, {"v": -5}, {"v": 2}]
        )
        harness.pump("P1", output)
        event = completed_run(harness, "P1", run_id)
        assert not event.valid
        assert any("batch[1]" in diag and "negative values forbidden" in diag
                   for diag in event.diagnostics), event.diagnostics
        # A policy veto rolls everyone back; no misbehaviour is implied.
        for name in harness.names:
            assert engine(harness, name).agreed_state == {"v": 0}
            assert not harness.events_of(name, MisbehaviourEvent)

    def test_replayed_batch_proposal_vetoed(self):
        harness = make_harness(2, initial={"v": 0})
        run_id, output = engine(harness, "P1").propose_update_batch(
            [{"a": 1}, {"b": 2}]
        )
        replay = [msg for _, msg in output.messages][0]
        harness.pump("P1", output)
        assert completed_run(harness, "P1", run_id).valid
        # A replay while the run record exists is answered idempotently;
        # the seen-tuple window defends the case where the record is gone
        # (post-restart recovery re-notes seen tuples from the journal).
        engine(harness, "P2")._runs.pop(run_id)
        harness.deliver("P1", "P2", replay)
        rejected = [run for run in engine(harness, "P2").runs()
                    if run.outcome == OUTCOME_INVALID]
        assert rejected and any(
            "invariant-4" in diag
            for run in rejected for diag in run.own_decision.diagnostics
        )


class TestSeenWindow:
    def test_window_bounds_the_replay_set(self):
        harness = make_harness(2, initial={"v": 0})
        for name in harness.names:
            engine(harness, name).seen_window = 3
        for i in range(10):
            _, output = engine(harness, "P1").propose_update({"k": i})
            harness.pump("P1", output)
        for name in harness.names:
            state = engine(harness, name)
            assert len(state._seen_proposal_keys) <= 3
            assert len(state._seen_proposal_order) <= 3

    def test_recent_replay_still_caught_after_eviction(self):
        harness = make_harness(2, initial={"v": 0})
        for name in harness.names:
            engine(harness, name).seen_window = 3
        replay = None
        replay_run_id = None
        for i in range(10):
            run_id, output = engine(harness, "P1").propose_update({"k": i})
            if i == 9:
                replay = [msg for _, msg in output.messages][0]
                replay_run_id = run_id
            harness.pump("P1", output)
        engine(harness, "P2")._runs.pop(replay_run_id)
        harness.deliver("P1", "P2", replay)
        rejected = [run for run in engine(harness, "P2").runs()
                    if run.outcome == OUTCOME_INVALID]
        assert rejected
        # An evicted tuple is still blocked by invariant 3 (stale seq).
        _, output = engine(harness, "P1").propose_update({"done": True})
        harness.pump("P1", output)
        assert engine(harness, "P2").agreed_state["done"] is True


class TestTransientRejection:
    def test_busy_and_invariant1_are_transient(self):
        assert is_transient_rejection(["P2: busy: concurrent run active"])
        assert is_transient_rejection([
            "P2: busy: concurrent run active",
            "P3: invariant-1: replica is mid-transition",
        ])

    def test_policy_vetoes_are_not_transient(self):
        assert not is_transient_rejection([])
        assert not is_transient_rejection(["P2: policy says no"])
        assert not is_transient_rejection([
            "P2: busy: concurrent run active",
            "P3: policy says no",
        ])


class TestPipelineCoalescing:
    def test_submissions_during_a_run_batch_into_one_follow_up(self):
        harness = make_harness(2, initial={"v": 0})
        pipe = ProposalPipeline(engine(harness, "P1"))
        first_ticket, first_output = pipe.submit({"k": 0})
        assert pipe.inflight_run_id is not None
        # Four more submissions arrive while the first run is in flight.
        later = []
        for i in range(1, 5):
            ticket, output = pipe.submit({"k": i})
            assert not output.messages  # queued, not proposed
            later.append(ticket)
        assert pipe.depth == 4
        harness.pump("P1", first_output)
        event = completed_run(harness, "P1", pipe.inflight_run_id)
        batch_output = pipe.on_event(event)
        assert first_ticket.done and first_ticket.valid
        batch_run_id = pipe.inflight_run_id
        harness.pump("P1", batch_output)
        batch_event = completed_run(harness, "P1", batch_run_id)
        pipe.on_event(batch_event)
        assert all(t.done and t.valid for t in later)
        # One initial run plus one batched run settled all five updates.
        assert engine(harness, "P2").agreed_sid.seq == 2
        assert engine(harness, "P2").agreed_state == {
            "v": 0, "k": 4,
        }

    def test_max_batch_splits_the_queue(self):
        harness = make_harness(2, initial={"v": 0})
        pipe = ProposalPipeline(engine(harness, "P1"), max_batch=3)
        tickets = []
        first_output = None
        for i in range(7):
            ticket, output = pipe.submit({"k": i})
            if i == 0:
                first_output = output
            tickets.append(ticket)
        outputs = [first_output]
        for _ in range(10):
            if all(t.done for t in tickets):
                break
            harness.pump("P1", outputs[-1])
            event = completed_run(harness, "P1", pipe.inflight_run_id)
            outputs.append(pipe.on_event(event))
        assert all(t.done and t.valid for t in tickets)
        # 1 single + batches of at most 3 for the remaining 6 updates.
        assert engine(harness, "P2").agreed_sid.seq == 3


class TestBusyRetry:
    def test_benign_busy_veto_retries_without_misbehaviour(self):
        """The satellite scenario: a responder that is mid-run vetoes
        with ``busy:``; the pipeline retries once the responder's run
        settles, and neither party records misbehaviour evidence."""
        harness = make_harness(2, initial={"v": 0})
        proposer = engine(harness, "P1")
        responder = engine(harness, "P2")
        pipe = ProposalPipeline(proposer)

        # P2 starts its own run but its messages are withheld, so P2 is
        # busy and P1 does not know it.
        _, held = responder.propose_overwrite({"v": 100})

        ticket, output = pipe.submit({"mine": 1})
        run_id = pipe.inflight_run_id
        harness.pump("P1", output)
        event = completed_run(harness, "P1", run_id)
        assert not event.valid
        assert is_transient_rejection(event.diagnostics), event.diagnostics
        pipe.on_event(event)
        assert not ticket.done
        assert pipe.busy_retries == 1
        assert pipe.retry_delay() is not None

        # The responder's run now completes; contention is over.
        harness.pump("P2", held)
        assert proposer.agreed_state == {"v": 100}

        harness.clock.advance(pipe.retry_delay() + 1e-9)
        retry_output = pipe.poll()
        retry_run = pipe.inflight_run_id
        assert retry_run is not None and retry_run != run_id
        harness.pump("P1", retry_output)
        pipe.on_event(completed_run(harness, "P1", retry_run))
        assert ticket.done and ticket.valid
        for name in harness.names:
            assert engine(harness, name).agreed_state == {"v": 100, "mine": 1}
            assert not harness.events_of(name, MisbehaviourEvent)
            assert harness.party(name).ctx.evidence.find(
                "misbehaviour") is None

    def test_genuine_veto_resolves_tickets_invalid(self):
        harness = make_harness(2, initial={"v": 0})
        engine(harness, "P2").validator = CallbackValidator(
            update=lambda update, resulting, current, proposer:
                Decision.reject("policy says no")
        )
        pipe = ProposalPipeline(engine(harness, "P1"))
        ticket, output = pipe.submit({"k": 1})
        harness.pump("P1", output)
        pipe.on_event(completed_run(harness, "P1", ticket.run_id
                                    or pipe.inflight_run_id))
        assert ticket.done and ticket.valid is False
        assert any("policy says no" in diag for diag in ticket.diagnostics)
        assert pipe.busy_retries == 0

    def test_retry_attempts_are_bounded(self):
        harness = make_harness(2, initial={"v": 0})
        proposer = engine(harness, "P1")
        pipe = ProposalPipeline(proposer, max_busy_retries=2,
                                base_retry_delay=0.01)
        # P2 stays busy forever: its run is never delivered or settled.
        _, _held = engine(harness, "P2").propose_overwrite({"v": 100})

        ticket, output = pipe.submit({"mine": 1})
        for _ in range(3):
            if ticket.done:
                break
            harness.pump("P1", output)
            event = completed_run(harness, "P1", pipe.inflight_run_id)
            pipe.on_event(event)
            delay = pipe.retry_delay()
            if delay is not None:
                harness.clock.advance(delay + 1e-9)
                output = pipe.poll()
        assert ticket.done and ticket.valid is False
        assert pipe.busy_retries == 2


class TestAppsAdoptPipeline:
    def test_orders_pipelined_submission_respects_roles(self):
        from repro.apps.orders import (
            ROLE_CUSTOMER,
            ROLE_SUPPLIER,
            OrderClient,
            OrderObject,
        )

        roles = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER}
        community = Community(list(roles), seed=31)
        try:
            controllers = community.found_object(
                "order", {name: OrderObject(roles) for name in roles})
            customer = OrderClient(controllers["Customer"])
            supplier = OrderClient(controllers["Supplier"])
            added = [customer.submit_add_item(f"part-{i}", i + 1)
                     for i in range(4)]
            assert all(customer.wait(t, timeout=60.0) for t in added)
            priced = supplier.submit_price_item("part-2", 30)
            assert supplier.wait(priced, timeout=60.0)
            # A role violation submitted through the pipeline is a
            # genuine veto: the ticket fails, nobody reports misbehaviour.
            bad = supplier.submit_change_quantity("part-0", 99)
            assert supplier.wait(bad, timeout=60.0) is False
            assert any("supplier may not" in diag
                       for diag in bad.diagnostics)
            community.settle()
            assert customer.order.item("part-2")["price"] == 30
            assert supplier.order.get_state() == customer.order.get_state()
            for name in roles:
                assert not community.node(name).misbehaviour_reports
        finally:
            community.close()

    def test_auction_pipelined_bids_validate_per_step(self):
        from repro.apps.auction import AuctionHouse, AuctionObject

        names = ["HouseA", "HouseB"]
        community = Community(names, seed=32)
        try:
            controllers = community.found_object(
                "auction",
                {name: AuctionObject(item="lot-1", reserve=50)
                 for name in names})
            house_a = AuctionHouse(controllers["HouseA"])
            house_b = AuctionHouse(controllers["HouseB"])
            assert house_a.wait(house_a.submit_bid("alice", 60), timeout=60.0)
            assert house_b.wait(house_b.submit_bid("bob", 75), timeout=60.0)
            low = house_a.submit_bid("carol", 70)
            assert house_a.wait(low, timeout=60.0) is False
            assert any("does not exceed" in diag for diag in low.diagnostics)
            assert house_a.wait(house_a.submit_close(), timeout=60.0)
            community.settle()
            assert house_b.auction.winner == {"bidder": "bob", "amount": 75}
            for name in names:
                assert not community.node(name).misbehaviour_reports
        finally:
            community.close()


class TestNodePipeline:
    def test_concurrent_proposers_converge_with_metrics(self):
        obs = RecordingInstrumentation()
        names = ["OrgA", "OrgB", "OrgC"]
        community = Community(names, seed=21, obs=obs)
        try:
            objects = {name: DictB2BObject() for name in names}
            community.found_object("ledger", objects)
            tickets = []
            for i in range(6):
                tickets.append(
                    community.node("OrgA").submit_update("ledger",
                                                         {f"a{i}": i}))
                tickets.append(
                    community.node("OrgB").submit_update("ledger",
                                                         {f"b{i}": i}))
            for ticket in tickets:
                community.node("OrgA").wait_for_pipeline(ticket, timeout=60.0)
                assert ticket.done and ticket.valid, ticket.diagnostics
            community.settle()
            reference = objects["OrgA"].get_state()
            assert len(reference) == 12
            for name in names:
                assert objects[name].get_state() == reference
                assert not community.node(name).misbehaviour_reports
            registry = obs.registry
            assert registry.counter_value("pipeline.batched_updates") > 0
            assert registry.histogram("pipeline.batch_size").summary()[
                "max"] >= 2
        finally:
            community.close()
