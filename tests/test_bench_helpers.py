"""Benchmark harness helpers."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    assert_replicas_converged,
    build_community,
    found_dict_object,
    protocol_message_count,
    run_state_workload,
)
from repro.bench.metrics import LatencyRecorder, MessageCounter, format_table
from repro.bench.workload import (
    counter_states,
    large_state,
    order_edit_sequence,
    random_updates,
)
from repro.util.encoding import canonical_bytes


class TestMetrics:
    def test_latency_summary(self):
        recorder = LatencyRecorder()
        for value in [1.0, 2.0, 3.0, 4.0]:
            recorder.record(value)
        summary = recorder.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        # Linear interpolation between closest ranks: the even-count
        # median is the midpoint, not the lower sample.
        assert summary["p50"] == pytest.approx(2.5)
        assert summary["p99"] == pytest.approx(3.97)
        assert summary["stddev"] == pytest.approx(1.29099, abs=1e-4)

    def test_empty_recorder(self):
        summary = LatencyRecorder().summary()
        assert summary["count"] == 0 and summary["mean"] == 0.0

    def test_percentile_bounds(self):
        recorder = LatencyRecorder([1.0, 2.0, 3.0])
        assert recorder.percentile(0.0) == 1.0
        assert recorder.percentile(1.0) == 3.0

    def test_message_counter_delta(self):
        community = build_community(2, seed=1)
        network = community.runtime.network
        counter = MessageCounter()
        counter.start(network)
        controllers, objects = found_dict_object(community)
        run_state_workload(community, controllers, counter_states(1))
        delta = counter.delta(network)
        assert delta["delivered"] > 0

    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4


class TestWorkloads:
    def test_counter_states_distinct(self):
        states = list(counter_states(5))
        assert len(states) == 5
        assert len({canonical_bytes(s) for s in states}) == 5

    def test_random_updates_deterministic(self):
        assert list(random_updates(5, seed=3)) == list(random_updates(5, seed=3))
        assert list(random_updates(5, seed=3)) != list(random_updates(5, seed=4))

    def test_large_state_size(self):
        state = large_state(4096)
        assert len(canonical_bytes(state)) >= 4096

    def test_order_edit_sequence(self):
        edits = list(order_edit_sequence(2))
        assert edits[0] == ("customer", "widget1", 1)
        assert edits[1][0] == "supplier"
        assert len(edits) == 4


class TestHarness:
    def test_run_state_workload_and_convergence(self):
        community = build_community(3, seed=5)
        controllers, objects = found_dict_object(community)
        summary = run_state_workload(community, controllers, counter_states(4))
        assert summary["completed"] == 4 and summary["rejected"] == 0
        assert summary["latency"]["count"] == 4
        state = assert_replicas_converged(controllers)
        assert state["counter"] == 4

    def test_divergence_detected(self):
        community = build_community(2, seed=6)
        controllers, objects = found_dict_object(community)
        objects["Org2"]._attributes["rogue"] = True
        community.node("Org2").party.session("shared").state.agreed_state = {
            "rogue": True}
        with pytest.raises(AssertionError, match="divergence"):
            assert_replicas_converged(controllers)

    def test_protocol_message_count_formula(self):
        assert protocol_message_count(2) == 3
        assert protocol_message_count(5) == 12

    def test_measured_messages_match_formula(self):
        # raw protocol messages = 3(n-1); the reliable layer adds one ack
        # per message on a loss-free network.
        for n in (2, 3, 4):
            community = build_community(n, seed=7)
            controllers, objects = found_dict_object(community)
            community.settle()
            counter = MessageCounter()
            counter.start(community.runtime.network)
            summary = run_state_workload(community, controllers,
                                         counter_states(1))
            delta = counter.delta(community.runtime.network)
            assert delta["delivered"] == 2 * protocol_message_count(n)
