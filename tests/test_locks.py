"""Local concurrency control hooks (section 5)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import Community, DictB2BObject, ThreadedRuntime
from repro.core.locks import (
    LockManager,
    LockingController,
    ReadersWriterLock,
    install_locking,
)
from repro.errors import ConcurrencyError


class TestReadersWriterLock:
    def test_multiple_readers(self):
        lock = ReadersWriterLock()
        lock.acquire_read()
        lock.acquire_read()
        assert lock.readers == 2
        lock.release_read()
        lock.release_read()
        assert lock.readers == 0

    def test_writer_excludes_readers(self):
        lock = ReadersWriterLock()
        lock.acquire_write()
        with pytest.raises(ConcurrencyError):
            lock.acquire_read(timeout=0.05)
        lock.release_write()
        lock.acquire_read()
        lock.release_read()

    def test_readers_exclude_writer(self):
        lock = ReadersWriterLock()
        lock.acquire_read()
        with pytest.raises(ConcurrencyError):
            lock.acquire_write(timeout=0.05)
        lock.release_read()
        lock.acquire_write()
        lock.release_write()

    def test_waiting_writer_blocks_new_readers(self):
        lock = ReadersWriterLock()
        lock.acquire_read()
        started = threading.Event()
        acquired = threading.Event()

        def writer():
            started.set()
            lock.acquire_write(timeout=5.0)
            acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        started.wait(1.0)
        time.sleep(0.05)  # let the writer start waiting
        with pytest.raises(ConcurrencyError):
            lock.acquire_read(timeout=0.05)  # writer has priority
        lock.release_read()
        assert acquired.wait(2.0)
        thread.join(2.0)

    def test_release_without_hold_rejected(self):
        lock = ReadersWriterLock()
        with pytest.raises(ConcurrencyError):
            lock.release_read()
        with pytest.raises(ConcurrencyError):
            lock.release_write()

    def test_write_not_reentrant(self):
        lock = ReadersWriterLock()
        lock.acquire_write()
        with pytest.raises(ConcurrencyError):
            lock.acquire_write(timeout=0.05)
        lock.release_write()


class TestLockManager:
    def test_per_object_locks(self):
        manager = LockManager()
        assert manager.lock_for("a") is manager.lock_for("a")
        assert manager.lock_for("a") is not manager.lock_for("b")


def make_locked_pair(make_community):
    community = make_community(2, seed=60)
    objects = {n: DictB2BObject() for n in community.names()}
    community.found_object("shared", objects)
    manager = LockManager(timeout=0.2)
    controller = install_locking(
        community.node("Org1"), "shared", objects["Org1"],
        lock_manager=manager,
    )
    return community, controller, objects, manager


class TestLockingController:
    def test_examine_scope_takes_read_lock(self, make_community):
        community, controller, objects, manager = make_locked_pair(make_community)
        lock = manager.lock_for("shared")
        controller.enter()
        controller.examine()
        assert lock.readers == 1
        controller.leave()
        assert lock.readers == 0

    def test_write_scope_upgrades_and_releases(self, make_community):
        community, controller, objects, manager = make_locked_pair(make_community)
        lock = manager.lock_for("shared")
        controller.enter()
        controller.overwrite()
        assert lock.write_held
        objects["Org1"].set_attribute("k", 1)
        controller.leave()
        assert not lock.write_held
        community.settle()
        assert objects["Org2"].get_attribute("k") == 1

    def test_nested_scopes_release_once(self, make_community):
        community, controller, objects, manager = make_locked_pair(make_community)
        lock = manager.lock_for("shared")
        controller.enter()
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("k", 1)
        controller.leave()
        assert lock.write_held  # inner leave keeps the lock
        controller.leave()
        assert not lock.write_held

    def test_writer_excludes_second_scope(self, make_community):
        community, controller, objects, manager = make_locked_pair(make_community)
        lock = manager.lock_for("shared")
        lock.acquire_write()  # another "thread" holds the object
        with pytest.raises(ConcurrencyError):
            controller.enter()
        lock.release_write()

    def test_concurrent_threads_over_tcp(self):
        """Two application threads write through one locking controller."""
        runtime = ThreadedRuntime()
        try:
            community = Community(["Org1", "Org2"], runtime=runtime,
                                  retransmit_interval=0.2)
            objects = {n: DictB2BObject() for n in community.names()}
            community.found_object("shared", objects)
            controller = install_locking(
                community.node("Org1"), "shared", objects["Org1"],
            )
            errors = []

            def writer(key):
                try:
                    for i in range(3):
                        controller.enter()
                        controller.overwrite()
                        objects["Org1"].set_attribute(key, i)
                        controller.leave()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(f"k{i}",))
                       for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            runtime.settle(0.3)
            assert errors == []
            assert objects["Org2"].get_attribute("k0") == 2
            assert objects["Org2"].get_attribute("k1") == 2
        finally:
            runtime.close()
