"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

import repro.core.community as community_module
from repro.core.community import Community
from repro.core.runtime import SimRuntime
from repro.crypto.prng import DeterministicRandomSource
from repro.crypto.rsa import generate_keypair
from repro.crypto.signature import KeyPair
from repro.transport.inmemory import LinkProfile

# ---------------------------------------------------------------------------
# Key-generation cache: RSA keygen dominates test time, and tests never rely
# on two same-named parties having different keys, so cache by (name, bits).
# ---------------------------------------------------------------------------

_KEY_CACHE: "dict[tuple[str, int], KeyPair]" = {}
_CACHE_RNG = DeterministicRandomSource("test-key-cache")


def _cached_generate_party_keypair(party_id, bits=512, rng=None):
    key = (party_id, bits)
    if key not in _KEY_CACHE:
        _KEY_CACHE[key] = KeyPair(
            party_id=party_id,
            private_key=generate_keypair(bits, _CACHE_RNG),
        )
    return _KEY_CACHE[key]


@pytest.fixture(autouse=True)
def _fast_keys(monkeypatch):
    monkeypatch.setattr(
        community_module, "generate_party_keypair", _cached_generate_party_keypair
    )


# ---------------------------------------------------------------------------
# Community factories
# ---------------------------------------------------------------------------

@pytest.fixture
def make_community():
    """Factory for simulated communities with configurable faults."""

    def build(names_or_count, seed=0, profile=None, **kwargs) -> Community:
        if isinstance(names_or_count, int):
            names = [f"Org{i + 1}" for i in range(names_or_count)]
        else:
            names = list(names_or_count)
        runtime = SimRuntime(seed=seed,
                             profile=profile or LinkProfile(latency=0.005))
        return Community(names, runtime=runtime, **kwargs)

    return build


@pytest.fixture
def lossy_profile():
    return LinkProfile(latency=0.01, jitter=0.02,
                       drop_probability=0.25, duplicate_probability=0.15)


@pytest.fixture
def community2(make_community) -> Community:
    return make_community(2, seed=2)


@pytest.fixture
def community3(make_community) -> Community:
    return make_community(3, seed=3)


@pytest.fixture
def community4(make_community) -> Community:
    return make_community(4, seed=4)


# ---------------------------------------------------------------------------
# Transport matrix options: run the socket-backed tests under any TCP
# mode / wire codec combination (CI runs a reactor+binary leg).
# ---------------------------------------------------------------------------

def pytest_addoption(parser):
    parser.addoption(
        "--tcp-mode", default=None,
        choices=["pooled", "per-message", "reactor"],
        help="Default TcpNetwork socket mode for tests that do not pick one",
    )
    parser.addoption(
        "--wire-codec", default=None, choices=["json", "binary"],
        help="Default TcpNetwork wire codec for tests that do not pick one",
    )


@pytest.fixture(autouse=True)
def _tcp_matrix(request, monkeypatch):
    """Re-default TcpNetwork construction per the --tcp-mode/--wire-codec
    options.  Explicit keyword arguments in a test always win — the
    options only move the defaults, so mode-specific tests keep testing
    their mode under any matrix leg."""
    mode = request.config.getoption("--tcp-mode")
    codec = request.config.getoption("--wire-codec")
    if mode is None and codec is None:
        yield
        return
    from repro.transport import tcp as tcp_module

    original = tcp_module.TcpNetwork.__init__

    def patched(self, *args, **kwargs):
        if (mode is not None and "pooled" not in kwargs
                and "reactor" not in kwargs):
            kwargs["pooled"] = mode == "pooled"
            kwargs["reactor"] = mode == "reactor"
        if codec is not None and "codec" not in kwargs:
            kwargs["codec"] = codec
        original(self, *args, **kwargs)

    monkeypatch.setattr(tcp_module.TcpNetwork, "__init__", patched)
    yield
