"""End-to-end observability of instrumented coordination runs."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    build_community,
    found_dict_object,
    protocol_message_count,
    run_state_workload,
)
from repro.bench.workload import counter_states
from repro.obs.hooks import NULL_INSTRUMENTATION
from repro.obs.recording import RecordingInstrumentation
from repro.obs.report import render_report


def _run_instrumented(n_parties: int, updates: int = 1, seed: int = 21):
    obs = RecordingInstrumentation(collect=True)
    community = build_community(n_parties, seed=seed, obs=obs)
    controllers, _objects = found_dict_object(community)
    summary = run_state_workload(community, controllers,
                                 counter_states(updates))
    assert summary["completed"] == updates
    return obs, community


class TestMessageComplexity:
    def test_three_party_run_matches_paper_formula(self):
        """One 3-party run sends exactly 3(n-1) = 6 protocol messages."""
        obs, _community = _run_instrumented(3)
        registry = obs.registry
        n = 3
        assert registry.counter_value("protocol.m1.sent") == n - 1
        assert registry.counter_value("protocol.m2.sent") == n - 1
        assert registry.counter_value("protocol.m3.sent") == n - 1
        assert (registry.counter_value("protocol.messages.sent")
                == protocol_message_count(n))
        # Loss-free network: everything sent is received exactly once.
        assert (registry.counter_value("protocol.messages.received")
                == protocol_message_count(n))

    @pytest.mark.parametrize("n_parties", [2, 4])
    def test_formula_scales_with_group_size(self, n_parties):
        obs, _community = _run_instrumented(n_parties)
        assert (obs.registry.counter_value("protocol.messages.sent")
                == protocol_message_count(n_parties))

    def test_messages_scale_linearly_with_runs(self):
        runs = 3
        obs, _community = _run_instrumented(3, updates=runs)
        assert (obs.registry.counter_value("protocol.messages.sent")
                == runs * protocol_message_count(3))


class TestRunMetrics:
    def test_run_counters_and_spans(self):
        obs, _community = _run_instrumented(3)
        registry = obs.registry
        # The run starts at each of the 3 parties (1 proposer, 2 responders)
        # and settles as valid everywhere.
        assert registry.counter_value("protocol.runs.started") == 3
        assert registry.counter_value("protocol.runs.started.proposer") == 1
        assert registry.counter_value("protocol.runs.started.responder") == 2
        assert registry.counter_value("protocol.runs.valid") == 3
        assert registry.counter_value("protocol.runs.invalid") == 0
        assert registry.counter_value("protocol.validation.accepted") == 2
        assert registry.histogram("protocol.run_seconds").count == 3
        # Each party handled the phases addressed to it.
        assert registry.histogram("protocol.m1.handle_seconds").count == 2
        assert registry.histogram("protocol.m2.handle_seconds").count == 2
        assert registry.histogram("protocol.m3.handle_seconds").count == 2

    def test_crypto_and_storage_instruments_populated(self):
        obs, _community = _run_instrumented(3)
        registry = obs.registry
        assert registry.histogram("crypto.sign_seconds").count > 0
        assert registry.histogram("crypto.verify_seconds").count > 0
        assert registry.counter_value("crypto.verify.failures") == 0
        assert registry.counter_value("crypto.keygen.count") >= 3
        assert registry.counter_value("storage.journal.appends") > 0
        assert registry.counter_value("storage.evidence.appends") > 0
        assert registry.counter_value("transport.acks_received") > 0

    def test_trace_collector_sees_run_lifecycle(self):
        obs, _community = _run_instrumented(3)
        assert obs.collector is not None
        started = obs.collector.named("run.started")
        settled = obs.collector.named("run.settled")
        assert len(started) == 3 and len(settled) == 3
        roles = sorted(record.attrs["role"] for record in started)
        assert roles == ["proposer", "responder", "responder"]
        assert all(record.attrs["outcome"] == "valid" for record in settled)

    def test_report_renders_phase_breakdown(self):
        obs, _community = _run_instrumented(3)
        report = render_report(obs.registry)
        assert "m1" in report and "m2" in report and "m3" in report
        assert "signature operations" in report
        assert "reliable transport" in report


class TestDefaultIsNoop:
    def test_community_defaults_to_null_instrumentation(self):
        community = build_community(2, seed=5)
        assert community.obs is NULL_INSTRUMENTATION
        node = community.node("Org1")
        assert node.ctx.obs is NULL_INSTRUMENTATION
        controllers, _objects = found_dict_object(community)
        summary = run_state_workload(community, controllers, counter_states(1))
        assert summary["completed"] == 1

    def test_rejected_proposal_counted(self):
        from repro.apps.tictactoe import CROSS, NOUGHT, TicTacToeObject
        from repro.core.community import Community
        from repro.core.runtime import SimRuntime
        from repro.errors import ValidationFailed

        obs = RecordingInstrumentation()
        names = ["Cross", "Nought"]
        community = Community(
            names, runtime=SimRuntime(seed=3), obs=obs,
        )
        players = {"Cross": CROSS, "Nought": NOUGHT}
        objects = {name: TicTacToeObject(players=players) for name in names}
        controllers = community.found_object("game", objects)
        controller = controllers["Cross"]
        controller.enter()
        controller.overwrite()
        game = objects["Cross"]
        board = game.board
        board[0] = NOUGHT  # Cross plays Nought's mark: vetoed (Figure 5)
        game.apply_state({"board": board, "next": NOUGHT, "winner": ""})
        with pytest.raises(ValidationFailed):
            controller.leave()
        community.settle()  # let m3 reach the responder so its run settles
        registry = obs.registry
        assert registry.counter_value("protocol.validation.rejected") == 1
        assert registry.counter_value("protocol.runs.invalid") == 2
