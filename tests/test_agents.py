"""Trusted agents and TTP relays (Figures 1b and 6)."""

from __future__ import annotations

import pytest

from repro.agents import (
    DisclosurePolicy,
    FilterDisclosurePolicy,
    StateRelay,
    TrustedAgent,
    ValidatingTTP,
)
from repro.core import Community, DictB2BObject, SimRuntime
from repro.errors import ValidationFailed
from repro.protocol.validation import Decision


def make_community(names, seed=0):
    return Community(list(names), runtime=SimRuntime(seed=seed))


class TestStateRelay:
    def test_relays_agreed_state(self):
        community = make_community(["A", "Hub", "B"])
        left = {n: DictB2BObject() for n in ["A", "Hub"]}
        right = {n: DictB2BObject() for n in ["Hub", "B"]}
        left_ctrl = community.found_object("left", left)
        community.found_object("right", right)
        StateRelay(community.node("Hub"), "left", "right")
        c = left_ctrl["A"]
        c.enter(); c.overwrite()
        left["A"].set_attribute("x", 1)
        c.leave()
        community.settle(2.0)
        assert right["B"].get_attribute("x") == 1

    def test_transform_none_withholds(self):
        community = make_community(["A", "Hub", "B"])
        left = {n: DictB2BObject() for n in ["A", "Hub"]}
        right = {n: DictB2BObject() for n in ["Hub", "B"]}
        left_ctrl = community.found_object("left", left)
        community.found_object("right", right)
        relay = StateRelay(community.node("Hub"), "left", "right",
                           transform=lambda state: None)
        c = left_ctrl["A"]
        c.enter(); c.overwrite()
        left["A"].set_attribute("x", 1)
        c.leave()
        community.settle(2.0)
        assert right["B"].attributes() == {}
        assert relay.withheld == 1 and relay.relayed == 0


class TestValidatingTTP:
    def _setup_game(self, seed=0):
        from repro.apps import CROSS, NOUGHT, TicTacToeObject, TicTacToePlayer
        community = make_community(["Cross", "Nought", "TTP"], seed=seed)
        players = {"Cross": CROSS, "Nought": NOUGHT}
        side_c = {n: TicTacToeObject(players) for n in ["Cross", "TTP"]}
        side_n = {n: TicTacToeObject(players) for n in ["TTP", "Nought"]}
        ctrl_c = community.found_object("game_c", side_c)
        ctrl_n = community.found_object("game_n", side_n)
        ttp = ValidatingTTP(community.node("TTP"), ["game_c", "game_n"])
        cross = TicTacToePlayer(ctrl_c["Cross"], CROSS)
        nought = TicTacToePlayer(ctrl_n["Nought"], NOUGHT)
        return community, ttp, cross, nought, side_c, side_n

    def test_valid_moves_flow_through(self):
        community, ttp, cross, nought, side_c, side_n = self._setup_game()
        cross.save_move(4)
        community.settle(2.0)
        assert side_n["Nought"].board[4] == "X"
        nought.save_move(0)
        community.settle(2.0)
        assert side_c["Cross"].board[0] == "O"
        assert ttp.relayed == 2

    def test_invalid_move_never_disclosed_to_opponent(self):
        community, ttp, cross, nought, side_c, side_n = self._setup_game(seed=1)
        cross.save_move(4)
        community.settle(2.0)
        with pytest.raises(ValidationFailed):
            nought.save_move(4)  # already claimed; TTP vetoes
        community.settle(2.0)
        # Cross's replica never saw the attempt
        assert side_c["Cross"].board[4] == "X"
        assert side_c["Cross"].board.count("") == 8

    def test_requires_two_sides(self):
        community = make_community(["A"])
        with pytest.raises(ValueError):
            ValidatingTTP(community.node("A"), ["only"])


class TestTrustedAgents:
    def _setup(self, seed=0):
        """Figure 1b: three orgs behind three agents."""
        orgs = ["Org1", "Org2", "Org3"]
        agents = ["TA1", "TA2", "TA3"]
        community = make_community(orgs + agents, seed=seed)
        inner_ctrls = {}
        inner_objs = {}
        for org, agent in zip(orgs, agents):
            objects = {org: DictB2BObject(), agent: DictB2BObject()}
            ctrls = community.found_object(f"inner_{org}", objects)
            inner_ctrls[org] = ctrls[org]
            inner_objs[org] = objects
        outer_objs = {agent: DictB2BObject() for agent in agents}
        community.found_object("outer", outer_objs)
        tas = {}
        for org, agent in zip(orgs, agents):
            tas[agent] = TrustedAgent(
                community.node(agent), f"inner_{org}", "outer",
                policy=FilterDisclosurePolicy(
                    disclosed_keys=[f"public_{org}"],
                ),
            )
        return community, inner_ctrls, inner_objs, outer_objs, tas

    def test_disclosed_keys_propagate_to_all_orgs(self):
        community, ctrls, inner, outer, tas = self._setup()
        c = ctrls["Org1"]
        c.enter(); c.overwrite()
        inner["Org1"]["Org1"].set_attribute("public_Org1", "hello")
        c.leave()
        community.settle(5.0)
        assert outer["TA2"].get_attribute("public_Org1") == "hello"
        # and delivered onward into Org2's inner object
        assert inner["Org2"]["Org2"].get_attribute("public_Org1") == "hello"

    def test_private_keys_are_withheld(self):
        community, ctrls, inner, outer, tas = self._setup(seed=1)
        c = ctrls["Org1"]
        c.enter(); c.overwrite()
        inner["Org1"]["Org1"].set_attribute("public_Org1", "open")
        inner["Org1"]["Org1"].set_attribute("secret", "classified")
        c.leave()
        community.settle(5.0)
        assert outer["TA2"].get_attribute("public_Org1") == "open"
        assert outer["TA2"].get_attribute("secret") is None
        assert inner["Org3"]["Org3"].get_attribute("secret") is None

    def test_disclosure_policy_defaults(self):
        policy = DisclosurePolicy()
        assert policy.outbound({"a": 1}) == {"a": 1}
        assert policy.inbound({"a": 1}) == {"a": 1}

    def test_filter_policy_inbound_keys(self):
        policy = FilterDisclosurePolicy(["pub"], inbound_keys=["allowed"])
        assert policy.outbound({"pub": 1, "priv": 2}) == {"pub": 1}
        assert policy.inbound({"allowed": 1, "other": 2}) == {"allowed": 1}
