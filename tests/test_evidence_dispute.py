"""Evidence verification and extra-protocol dispute resolution."""

from __future__ import annotations

import pytest

from repro.errors import DisputeError
from repro.protocol.dispute import (
    RULING_REJECTED,
    RULING_UNDECIDABLE,
    RULING_UPHELD,
    Arbiter,
)
from repro.protocol.evidence import find_equivocation, verify_authenticated_decision
from repro.protocol.events import RunCompleted
from repro.protocol.messages import SignedPart, make_signed
from repro.protocol.validation import CallbackValidator, Decision
from repro.util.encoding import canonical_bytes, from_canonical_bytes

from tests.engine_helpers import EngineHarness, found


def run_and_get_bundle(harness, proposer="P1", state=None, expect_valid=True):
    engine = harness.party(proposer).session("obj").state
    run_id, output = engine.propose_overwrite(state or {"v": 1})
    harness.pump(proposer, output)
    completed = [e for e in harness.events_of(proposer, RunCompleted)
                 if e.run_id == run_id]
    assert completed and completed[0].valid == expect_valid
    return run_id, completed[0].evidence


def make_harness(names=("P1", "P2", "P3"), seed=0):
    harness = EngineHarness(list(names), seed=seed)
    found(harness, "obj", list(names), {"v": 0})
    return harness


class TestVerifyAuthenticatedDecision:
    def test_valid_bundle(self):
        harness = make_harness()
        _, bundle = run_and_get_bundle(harness)
        verdict = verify_authenticated_decision(
            bundle, harness._resolve, tsa_verifier=harness.tsa.verifier
        )
        assert verdict.authentic and verdict.valid
        assert verdict.proposer == "P1"
        assert set(verdict.responders) == {"P2", "P3"}

    def test_vetoed_bundle_is_authentic_but_invalid(self):
        harness = make_harness()
        harness.party("P2").session("obj").state.validator = CallbackValidator(
            state=lambda p, c, pr: Decision.reject("veto")
        )
        _, bundle = run_and_get_bundle(harness, expect_valid=False)
        verdict = verify_authenticated_decision(
            bundle, harness._resolve, tsa_verifier=harness.tsa.verifier
        )
        assert verdict.authentic and not verdict.valid
        assert any("veto" in d for d in verdict.diagnostics)

    def test_tampered_decision_in_bundle_detected(self):
        harness = make_harness()
        harness.party("P2").session("obj").state.validator = CallbackValidator(
            state=lambda p, c, pr: Decision.reject("veto")
        )
        _, bundle = run_and_get_bundle(harness, expect_valid=False)
        tampered = from_canonical_bytes(canonical_bytes(bundle))
        for response in tampered["responses"]:
            response["payload"]["decision"] = {"verdict": "accept",
                                               "diagnostics": []}
        tampered["valid"] = True
        verdict = verify_authenticated_decision(
            tampered, harness._resolve, tsa_verifier=harness.tsa.verifier
        )
        assert not verdict.authentic
        assert any("signature" in p for p in verdict.problems)

    def test_wrong_auth_preimage_detected(self):
        harness = make_harness()
        _, bundle = run_and_get_bundle(harness)
        tampered = from_canonical_bytes(canonical_bytes(bundle))
        tampered["auth"] = b"\x00" * 32
        verdict = verify_authenticated_decision(
            tampered, harness._resolve, tsa_verifier=harness.tsa.verifier
        )
        assert not verdict.authentic
        assert any("authenticator" in p for p in verdict.problems)

    def test_missing_response_detected_with_expected_set(self):
        harness = make_harness()
        _, bundle = run_and_get_bundle(harness)
        pruned = from_canonical_bytes(canonical_bytes(bundle))
        pruned["responses"] = pruned["responses"][:1]
        verdict = verify_authenticated_decision(
            pruned, harness._resolve, tsa_verifier=harness.tsa.verifier,
            expected_recipients={"P2", "P3"},
        )
        assert not verdict.valid
        assert any("missing responses" in p for p in verdict.problems)

    def test_malformed_bundle(self):
        verdict = verify_authenticated_decision({}, lambda p: None)
        assert not verdict.authentic


class TestFindEquivocation:
    def _signed_response(self, harness, name, digest, verdict):
        payload = {
            "type": "state-response",
            "responder": name,
            "proposal_digest": digest,
            "decision": {"verdict": verdict, "diagnostics": []},
        }
        signer = harness.party(name).ctx.signer
        return make_signed(payload, signer, None)

    def test_conflicting_responses_found(self):
        harness = make_harness()
        a = self._signed_response(harness, "P2", b"d1", "accept")
        b = self._signed_response(harness, "P2", b"d1", "reject")
        hit = find_equivocation([a, b])
        assert hit is not None and hit[0] == "P2"

    def test_consistent_duplicates_are_fine(self):
        harness = make_harness()
        a = self._signed_response(harness, "P2", b"d1", "accept")
        assert find_equivocation([a, a]) is None

    def test_different_proposals_are_not_equivocation(self):
        harness = make_harness()
        a = self._signed_response(harness, "P2", b"d1", "accept")
        b = self._signed_response(harness, "P2", b"d2", "reject")
        assert find_equivocation([a, b]) is None


class TestArbiter:
    def _arbiter(self, harness):
        return Arbiter(harness._resolve, tsa_verifier=harness.tsa.verifier)

    def test_validity_claim_upheld(self):
        harness = make_harness()
        run_id, _ = run_and_get_bundle(harness)
        arbiter = self._arbiter(harness)
        arbiter.submit("P1", harness.party("P1").ctx.evidence)
        ruling = arbiter.rule_on_state_validity("obj", run_id, "P1")
        assert ruling.outcome == RULING_UPHELD

    def test_validity_claim_upheld_for_any_member(self):
        # every member holds the full bundle after m3
        harness = make_harness()
        run_id, _ = run_and_get_bundle(harness)
        arbiter = self._arbiter(harness)
        arbiter.submit("P3", harness.party("P3").ctx.evidence)
        assert arbiter.rule_on_state_validity("obj", run_id, "P3").upheld

    def test_vetoed_state_cannot_be_claimed_valid(self):
        harness = make_harness()
        harness.party("P2").session("obj").state.validator = CallbackValidator(
            state=lambda p, c, pr: Decision.reject("veto")
        )
        run_id, _ = run_and_get_bundle(harness, expect_valid=False)
        arbiter = self._arbiter(harness)
        arbiter.submit("P1", harness.party("P1").ctx.evidence)
        ruling = arbiter.rule_on_state_validity("obj", run_id, "P1")
        assert ruling.outcome == RULING_REJECTED
        assert any("not unanimously" in r for r in ruling.reasons)

    def test_unknown_run_is_undecidable(self):
        harness = make_harness()
        arbiter = self._arbiter(harness)
        arbiter.submit("P1", harness.party("P1").ctx.evidence)
        ruling = arbiter.rule_on_state_validity("obj", "nonexistent", "P1")
        assert ruling.outcome == RULING_UNDECIDABLE

    def test_tampered_log_rejected_and_attributed(self):
        harness = make_harness()
        run_id, _ = run_and_get_bundle(harness)
        log = harness.party("P1").ctx.evidence
        record = from_canonical_bytes(log._store._records[0])
        record["payload"]["tampered"] = True
        log._store._records[0] = canonical_bytes(record)
        arbiter = self._arbiter(harness)
        arbiter.submit("P1", log)
        ruling = arbiter.rule_on_state_validity("obj", run_id, "P1")
        assert ruling.outcome == RULING_REJECTED
        assert ruling.culprits == ["P1"]

    def test_no_submission_raises(self):
        harness = make_harness()
        arbiter = self._arbiter(harness)
        with pytest.raises(DisputeError):
            arbiter.rule_on_state_validity("obj", "r", "P1")

    def test_participation_claim(self):
        harness = make_harness()
        run_id, _ = run_and_get_bundle(harness)
        arbiter = self._arbiter(harness)
        arbiter.submit("P2", harness.party("P2").ctx.evidence)
        assert arbiter.rule_on_participation("obj", run_id, "P1").upheld
        assert arbiter.rule_on_participation("obj", run_id, "P3").upheld
        ghost = arbiter.rule_on_participation("obj", run_id, "P9")
        assert ghost.outcome == RULING_UNDECIDABLE

    def test_misbehaviour_unsupported_claim_rejected(self):
        harness = make_harness()
        run_and_get_bundle(harness)
        arbiter = self._arbiter(harness)
        for name in harness.names:
            arbiter.submit(name, harness.party(name).ctx.evidence)
        ruling = arbiter.rule_on_misbehaviour("P2")
        assert ruling.outcome == RULING_REJECTED

    def test_testimony_alone_is_undecidable(self):
        harness = make_harness()
        # P1 unilaterally records an (unproven) misbehaviour entry
        harness.party("P1").ctx.evidence.record(
            "misbehaviour", {"party": "P2", "kind": "made-up", "detail": ""}
        )
        arbiter = self._arbiter(harness)
        arbiter.submit("P1", harness.party("P1").ctx.evidence)
        ruling = arbiter.rule_on_misbehaviour("P2")
        assert ruling.outcome == RULING_UNDECIDABLE


class TestArbiterEquivocationProof:
    def test_cross_log_equivocation_upholds_misbehaviour(self):
        """Two different orgs hold two *different* signed responses by the
        accused to the same proposal: irrefutable equivocation."""
        harness = make_harness()
        run_id, _ = run_and_get_bundle(harness)
        # Fabricate the conflict: take P2's genuine response from the run
        # and forge a second, different response signed with P2's real key
        # (the accused is the key-holder, so it *can* produce this).
        engine1 = harness.party("P1").session("obj").state
        run = engine1.run(run_id)
        genuine = run.responses["P2"]
        conflicting_payload = dict(genuine.payload)
        conflicting_payload["decision"] = {"verdict": "reject",
                                           "diagnostics": ["changed my mind"]}
        conflicting = make_signed(conflicting_payload,
                                  harness.party("P2").ctx.signer,
                                  harness.tsa)
        # P3's log records having received the conflicting version.
        harness.party("P3").ctx.evidence.record(
            "response-received",
            {"run_id": run_id, "response": conflicting.to_dict(),
             "object": "obj"},
        )
        arbiter = Arbiter(harness._resolve, tsa_verifier=harness.tsa.verifier)
        for name in harness.names:
            arbiter.submit(name, harness.party(name).ctx.evidence)
        ruling = arbiter.rule_on_misbehaviour("P2")
        assert ruling.upheld
        assert ruling.culprits == ["P2"]

    def test_unverifiable_conflict_carries_no_weight(self):
        """A 'conflicting response' with a bad signature cannot convict."""
        harness = make_harness()
        run_id, _ = run_and_get_bundle(harness)
        engine1 = harness.party("P1").session("obj").state
        genuine = engine1.run(run_id).responses["P2"]
        forged_payload = dict(genuine.payload)
        forged_payload["decision"] = {"verdict": "reject", "diagnostics": []}
        # signed by P3 but claiming to be P2's response
        forged = make_signed(forged_payload, harness.party("P3").ctx.signer,
                             harness.tsa)
        from repro.crypto.signature import Signature
        impostor = SignedPart(
            forged.payload,
            Signature(forged.signature.scheme, "P2", forged.signature.value),
            forged.timestamp,
        )
        harness.party("P3").ctx.evidence.record(
            "response-received",
            {"run_id": run_id, "response": impostor.to_dict(),
             "object": "obj"},
        )
        arbiter = Arbiter(harness._resolve, tsa_verifier=harness.tsa.verifier)
        for name in harness.names:
            arbiter.submit(name, harness.party(name).ctx.evidence)
        ruling = arbiter.rule_on_misbehaviour("P2")
        assert not ruling.upheld
