"""Reliable-endpoint retry bounds and duplicate handling counters."""

from __future__ import annotations

from repro.obs.recording import RecordingInstrumentation
from repro.transport.inmemory import LinkProfile, SimNetwork
from repro.transport.reliable import ReliableEndpoint


def _attach(network, name, inbox, obs=None, **kwargs):
    endpoint = ReliableEndpoint(name, network, retransmit_interval=0.02,
                                obs=obs, **kwargs)
    endpoint.on_message(lambda sender, payload: inbox.append((sender, payload)))
    return endpoint


class TestRetryExhaustion:
    def test_bounded_retries_exhaust_and_count(self):
        network = SimNetwork(seed=41)
        obs = RecordingInstrumentation()
        failures = []
        sender = ReliableEndpoint("A", network, retransmit_interval=0.02,
                                  max_retries=3, obs=obs)
        sender.on_delivery_failure(
            lambda peer, payload, error: failures.append((peer, payload))
        )
        network.partition({"A"}, {"B"})
        _attach(network, "B", [])
        sender.send("B", {"x": 1})
        network.run(max_time=10.0)

        assert failures == [("B", {"x": 1})]
        assert sender.outstanding_count() == 0
        assert sender.retransmissions == 3
        assert sender.acks_received == 0
        registry = obs.registry
        assert registry.counter_value("transport.retry_exhausted") == 1
        assert registry.counter_value("transport.retransmissions") == 3
        assert registry.counter_value("transport.acks_received") == 0
        # The exhausted message left the queue: gauge returns to zero but
        # its high-water mark recorded the in-flight message.
        depth = registry.gauge("transport.queue_depth")
        assert depth.value == 0.0 and depth.high_water >= 1.0

    def test_retry_exhausted_trace_event(self):
        network = SimNetwork(seed=42)
        obs = RecordingInstrumentation(collect=True)
        sender = ReliableEndpoint("A", network, retransmit_interval=0.02,
                                  max_retries=2, obs=obs)
        network.partition({"A"}, {"B"})
        _attach(network, "B", [])
        sender.send("B", {"x": 2})
        network.run(max_time=10.0)
        (event,) = obs.collector.named("transport.retry_exhausted")
        assert event.attrs["attempts"] == 2
        assert event.attrs["recipient"] == "B"


class TestDuplicateHandling:
    def test_duplicated_data_suppressed_once_only(self):
        network = SimNetwork(
            seed=43, default_profile=LinkProfile(duplicate_probability=1.0)
        )
        obs = RecordingInstrumentation()
        inbox = []
        sender = _attach(network, "A", [], obs=obs)
        receiver = _attach(network, "B", inbox, obs=obs)
        for i in range(5):
            sender.send("B", {"i": i})
        network.run(max_time=30.0)

        # Every message delivered exactly once despite 100% duplication.
        assert sorted(p["i"] for _, p in inbox) == list(range(5))
        assert receiver.duplicates_suppressed >= 5
        assert (obs.registry.counter_value("transport.duplicates_suppressed")
                == receiver.duplicates_suppressed)

    def test_duplicate_acks_counted_once(self):
        network = SimNetwork(
            seed=44, default_profile=LinkProfile(duplicate_probability=1.0)
        )
        obs = RecordingInstrumentation()
        sender = _attach(network, "A", [], obs=obs)
        _attach(network, "B", [], obs=obs)
        for i in range(4):
            sender.send("B", {"i": i})
        network.run(max_time=30.0)

        # Duplicated acks for the same msg_id must not double-count: only
        # the ack that clears an outstanding message registers.
        assert sender.acks_received == 4
        assert obs.registry.counter_value("transport.acks_received") == 4
        assert sender.outstanding_count() == 0

    def test_counters_present_without_instrumentation(self):
        network = SimNetwork(
            seed=45, default_profile=LinkProfile(duplicate_probability=1.0)
        )
        inbox = []
        sender = _attach(network, "A", [])
        receiver = _attach(network, "B", inbox)
        sender.send("B", {"x": 1})
        network.run(max_time=10.0)
        assert len(inbox) == 1
        assert receiver.duplicates_suppressed >= 1
        assert sender.acks_received == 1
