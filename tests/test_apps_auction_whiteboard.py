"""Auction and whiteboard applications (section 2 scenario 3; section 5.1)."""

from __future__ import annotations

import pytest

from repro.apps.auction import AuctionHouse, AuctionObject, new_auction, validate_transition
from repro.apps.whiteboard import (
    WhiteboardClient,
    WhiteboardObject,
    new_board,
    next_turn,
)
from repro.core import Community, SimRuntime
from repro.errors import RuleViolation, ValidationFailed


class TestAuctionRules:
    def test_new_auction(self):
        auction = new_auction("vase", reserve=50)
        assert auction["open"] and auction["highest"] is None

    def _bid(self, current, bidder, amount, house):
        proposed = dict(current)
        proposed["highest"] = {"bidder": bidder, "amount": amount,
                               "house": house}
        proposed["bids"] = current["bids"] + 1
        return proposed

    def test_first_bid_must_meet_reserve(self):
        auction = new_auction("vase", reserve=50)
        ok, _ = validate_transition(auction, self._bid(auction, "a", 50, "H"))
        assert ok
        ok, diag = validate_transition(auction, self._bid(auction, "a", 49, "H"))
        assert not ok and "reserve" in diag

    def test_bids_strictly_increase(self):
        auction = new_auction("vase")
        after_first = self._bid(auction, "a", 100, "H")
        ok, diag = validate_transition(after_first,
                                       self._bid(after_first, "b", 100, "H"))
        assert not ok and "exceed" in diag

    def test_item_immutable(self):
        auction = new_auction("vase")
        proposed = self._bid(auction, "a", 10, "H")
        proposed["item"] = "painting"
        ok, diag = validate_transition(auction, proposed)
        assert not ok and "immutable" in diag

    def test_close_requires_unchanged_history(self):
        auction = self._bid(new_auction("vase"), "a", 10, "H")
        closed = dict(auction)
        closed["open"] = False
        closed["winner"] = {"bidder": "a", "amount": 10}
        ok, _ = validate_transition(auction, closed)
        assert ok
        cheat = dict(closed)
        cheat["winner"] = {"bidder": "z", "amount": 10}
        ok, diag = validate_transition(auction, cheat)
        assert not ok and "winner" in diag

    def test_no_bids_after_close(self):
        auction = new_auction("vase")
        auction["open"] = False
        ok, diag = validate_transition(auction, self._bid(auction, "a", 10, "H"))
        assert not ok and "closed" in diag


def make_auction_service(n_houses=3, seed=0, reserve=100):
    names = [f"House{i + 1}" for i in range(n_houses)]
    community = Community(names, runtime=SimRuntime(seed=seed))
    objects = {n: AuctionObject(item="painting", reserve=reserve)
               for n in names}
    controllers = community.found_object("auction", objects)
    houses = {n: AuctionHouse(controllers[n]) for n in names}
    return community, houses, objects


class TestDistributedAuction:
    def test_bids_through_different_houses(self):
        community, houses, objects = make_auction_service()
        houses["House1"].place_bid("alice", 100)
        houses["House2"].place_bid("bob", 150)
        houses["House3"].place_bid("carol", 175)
        community.settle(1.0)
        for obj in objects.values():
            assert obj.highest == {"bidder": "carol", "amount": 175,
                                   "house": "House3"}

    def test_low_bid_vetoed_regardless_of_house(self):
        community, houses, objects = make_auction_service(seed=1)
        houses["House1"].place_bid("alice", 150)
        for house in houses.values():
            with pytest.raises(ValidationFailed):
                house.place_bid("mallory", 120)

    def test_house_cannot_submit_bids_for_another_house(self):
        community, houses, objects = make_auction_service(seed=2)
        controller = houses["House1"].controller
        controller.enter()
        controller.overwrite()
        state = objects["House1"].get_state()
        state["highest"] = {"bidder": "shill", "amount": 500,
                            "house": "House2"}  # forged provenance
        state["bids"] = 1
        objects["House1"].apply_state(state)
        with pytest.raises(ValidationFailed) as excinfo:
            controller.leave()
        assert any("through itself" in d for d in excinfo.value.diagnostics)

    def test_close_and_winner(self):
        community, houses, objects = make_auction_service(seed=3)
        houses["House1"].place_bid("alice", 120)
        houses["House2"].place_bid("bob", 140)
        houses["House3"].close_auction()
        community.settle(1.0)
        for obj in objects.values():
            assert not obj.is_open
            assert obj.winner == {"bidder": "bob", "amount": 140}
        with pytest.raises(ValidationFailed):
            houses["House1"].place_bid("late", 200)

    def test_bid_amount_validated_locally(self):
        community, houses, objects = make_auction_service(seed=4)
        with pytest.raises(RuleViolation):
            houses["House1"].place_bid("alice", -5)

    def test_every_house_logged_evidence_of_every_bid(self):
        community, houses, objects = make_auction_service(seed=5)
        houses["House1"].place_bid("alice", 110)
        houses["House2"].place_bid("bob", 130)
        community.settle(1.0)
        for name in houses:
            log = community.node(name).ctx.evidence
            decisions = list(log.entries("authenticated-decision"))
            assert len(decisions) == 2
            assert log.verify_chain() > 0


class TestWhiteboardRules:
    def test_new_board(self):
        board = new_board(["A", "B"])
        assert board["turn"] == "A" and board["strokes"] == []

    def test_new_board_requires_participants(self):
        with pytest.raises(RuleViolation):
            new_board([])

    def test_next_turn_rotates(self):
        assert next_turn(["A", "B", "C"], "A") == "B"
        assert next_turn(["A", "B", "C"], "C") == "A"


class TestCoordinatedWhiteboard:
    def _setup(self, seed=0):
        names = ["A", "B", "C"]
        community = Community(names, runtime=SimRuntime(seed=seed))
        objects = {n: WhiteboardObject(names) for n in names}
        controllers = community.found_object("board", objects)
        clients = {n: WhiteboardClient(controllers[n]) for n in names}
        return community, clients, objects

    def test_turn_rotation(self):
        community, clients, objects = self._setup()
        clients["A"].draw([[0, 0]])
        clients["B"].draw([[1, 1]])
        clients["C"].draw([[2, 2]])
        clients["A"].draw([[3, 3]])
        community.settle(1.0)
        for obj in objects.values():
            assert len(obj.strokes) == 4
            assert obj.turn == "B"

    def test_out_of_turn_vetoed(self):
        community, clients, objects = self._setup(seed=1)
        with pytest.raises(ValidationFailed) as excinfo:
            clients["B"].draw([[0, 0]])
        assert any("turn" in d for d in excinfo.value.diagnostics)

    def test_strokes_are_append_only(self):
        community, clients, objects = self._setup(seed=2)
        clients["A"].draw([[0, 0]])
        community.settle(1.0)
        controller = clients["B"].controller
        controller.enter()
        controller.overwrite()
        state = objects["B"].get_state()
        state["strokes"] = [{"author": "B", "points": [[9, 9]],
                             "colour": "red"}]  # replaces A's stroke
        state["turn"] = "C"
        objects["B"].apply_state(state)
        with pytest.raises(ValidationFailed) as excinfo:
            controller.leave()
        assert any("append-only" in d for d in excinfo.value.diagnostics)

    def test_stroke_author_must_be_proposer(self):
        community, clients, objects = self._setup(seed=3)
        controller = clients["A"].controller
        controller.enter()
        controller.overwrite()
        state = objects["A"].get_state()
        state["strokes"].append({"author": "B", "points": [[1, 1]],
                                 "colour": "black"})
        state["turn"] = "B"
        objects["A"].apply_state(state)
        with pytest.raises(ValidationFailed):
            controller.leave()

    def test_empty_stroke_rejected(self):
        community, clients, objects = self._setup(seed=4)
        with pytest.raises(ValidationFailed):
            clients["A"].draw([])
