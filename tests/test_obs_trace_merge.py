"""Cross-party causal tracing: contexts, Lamport merge, anomaly detection."""

from __future__ import annotations

import json
import random
import threading

from repro.faults.byzantine import SuppressCommits
from repro.obs.merge import (
    ANOMALY_DUPLICATE_FLOOD,
    ANOMALY_RETRANSMISSION_STORM,
    ANOMALY_STALLED_RUN,
    ANOMALY_VETO,
    merge_trace_files,
    merge_traces,
    render_timeline,
)
from repro.obs.recording import RecordingInstrumentation
from repro.obs.trace import (
    JsonLinesExporter,
    LamportClock,
    PartyFilesExporter,
    PartyTraceContext,
    TraceContext,
    Tracer,
    read_jsonl,
    span_id_for,
    trace_id_for_run,
)
from repro.transport.inmemory import LinkProfile


class TestTraceIds:
    def test_trace_id_is_run_id_prefix_padded(self):
        run_id = "ab" * 32  # 64 hex chars
        assert trace_id_for_run(run_id) == "ab" * 16
        assert trace_id_for_run("short") == "short" + "0" * 27
        assert trace_id_for_run("") == ""

    def test_every_party_derives_the_same_trace_id(self):
        run_id = "deadbeef" * 8
        assert trace_id_for_run(run_id) == trace_id_for_run(run_id)

    def test_span_ids_are_deterministic_and_distinct(self):
        trace = trace_id_for_run("f" * 64)
        a = span_id_for(trace, "Cross", 1)
        assert a == span_id_for(trace, "Cross", 1)
        assert len(a) == 16
        assert a != span_id_for(trace, "Nought", 1)
        assert a != span_id_for(trace, "Cross", 2)


class TestLamportClock:
    def test_tick_is_monotonic(self):
        clock = LamportClock()
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]

    def test_observe_jumps_past_remote_value(self):
        clock = LamportClock()
        clock.tick()
        assert clock.observe(10) == 11
        # A stale remote value never rolls the clock back.
        assert clock.observe(2) == 12

    def test_concurrent_ticks_never_collide(self):
        clock = LamportClock()
        seen: "list[int]" = []
        lock = threading.Lock()

        def worker():
            for _ in range(200):
                value = clock.tick()
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 800
        assert clock.value == 800


class TestTraceContext:
    def test_to_dict_omits_empty_parent(self):
        ctx = TraceContext(trace_id="t" * 32, span_id="s" * 16, lamport=3)
        assert "parent_span_id" not in ctx.to_dict()
        child = TraceContext(trace_id="t" * 32, span_id="c" * 16, lamport=4,
                             parent_span_id="s" * 16)
        assert child.to_dict()["parent_span_id"] == "s" * 16

    def test_from_dict_round_trip(self):
        ctx = TraceContext(trace_id="t" * 32, span_id="s" * 16, lamport=3,
                           parent_span_id="p" * 16)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_from_dict_tolerates_garbage(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict("nope") is None
        assert TraceContext.from_dict({"lamport": "NaN-ish"}) is None

    def test_receive_builds_causal_edge(self):
        run_id = "c" * 64
        sender = PartyTraceContext("Cross")
        receiver = PartyTraceContext("Nought")
        sent = sender.begin_send(run_id)
        received = receiver.receive(run_id, sent.to_dict())
        assert received.trace_id == sent.trace_id
        assert received.parent_span_id == sent.span_id
        assert received.lamport > sent.lamport

    def test_receive_without_context_rejoins_trace_by_run_id(self):
        receiver = PartyTraceContext("Nought")
        received = receiver.receive("d" * 64, None)
        assert received.trace_id == trace_id_for_run("d" * 64)
        assert received.parent_span_id == ""


class TestTracerThreadSafety:
    def test_parallel_emission_through_one_jsonl_file(self, tmp_path):
        """TCP deployments run parties in threads sharing one exporter;
        every emitted line must still parse as exactly one record."""
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer()
        with JsonLinesExporter(path) as exporter:
            tracer.add_exporter(exporter)

            def worker(party):
                for i in range(150):
                    tracer.event("stress", party=party, index=i)

            threads = [threading.Thread(target=worker, args=(f"P{n}",))
                       for n in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        records = read_jsonl(path)
        assert len(records) == 6 * 150
        per_party = {f"P{n}": 0 for n in range(6)}
        for record in records:
            assert record["name"] == "stress"
            per_party[record["party"]] += 1
        assert all(count == 150 for count in per_party.values())

    def test_party_files_exporter_demuxes(self, tmp_path):
        tracer = Tracer()
        with PartyFilesExporter(str(tmp_path)) as exporter:
            tracer.add_exporter(exporter)
            tracer.event("a", party="Cross")
            tracer.event("b", party="Nought")
            tracer.event("c")  # community-wide record
            paths = exporter.paths()
        assert sorted(paths) == ["Cross", "Nought", "_shared"]
        assert read_jsonl(paths["Cross"])[0]["name"] == "a"
        assert read_jsonl(paths["_shared"])[0]["name"] == "c"


def _instrumented_run(make_community, seed=7, profile=None, updates=1):
    """One counter workload over an instrumented community; returns the
    per-party causal/transport record dict lists plus the obs handle."""
    from repro.bench.workload import counter_states
    from repro.core.object import DictB2BObject

    obs = RecordingInstrumentation(collect=True)
    community = make_community(3, seed=seed, profile=profile, obs=obs)
    objects = {name: DictB2BObject() for name in community.names()}
    controllers = community.found_object("shared", objects)
    proposer = controllers["Org1"]
    for state in counter_states(updates):
        proposer.enter()
        proposer.overwrite()
        objects["Org1"].set_attribute("counter", state["counter"])
        proposer.leave()
    community.settle()
    per_party: "dict[str, list[dict]]" = {}
    for record in obs.collector.records:
        per_party.setdefault(record.party, []).append(record.to_dict())
    return per_party, obs, community


class TestMergeDeterminism:
    def test_shuffled_inputs_yield_identical_timeline(self, make_community):
        per_party, _obs, _community = _instrumented_run(make_community,
                                                        updates=2)
        lists = list(per_party.values())
        reference = merge_traces([list(records) for records in lists])
        for shuffle_seed in (1, 2, 3):
            rng = random.Random(shuffle_seed)
            shuffled = [list(records) for records in lists]
            rng.shuffle(shuffled)
            for records in shuffled:
                rng.shuffle(records)
            merged = merge_traces(shuffled)
            assert merged.events == reference.events
            assert sorted(merged.runs) == sorted(reference.runs)
            assert render_timeline(merged) == render_timeline(reference)

    def test_merge_files_equals_merge_records(self, make_community, tmp_path):
        per_party, _obs, _community = _instrumented_run(make_community)
        paths = []
        for party, records in sorted(per_party.items()):
            path = tmp_path / f"trace-{party or '_shared'}.jsonl"
            with open(path, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, default=str) + "\n")
            paths.append(str(path))
        from_files = merge_trace_files(paths)
        from_records = merge_traces(per_party.values())
        assert from_files.events == from_records.events


class TestLossyLinks:
    def test_trace_ids_survive_drops_and_retransmissions(self, make_community):
        """Satellite: one run over a dropping network still merges into a
        single trace with resolvable causal edges, and the transport noise
        is attributed back to that run via the msg_id binding."""
        profile = LinkProfile(latency=0.005, drop_probability=0.3)
        per_party, obs, _community = _instrumented_run(
            make_community, seed=11, profile=profile
        )
        messages = obs.collector.named("causal.message")
        trace_ids = {record.attrs["trace_id"] for record in messages}
        run_ids = {record.attrs["run_id"] for record in messages}
        assert len(run_ids) == 1 and len(trace_ids) == 1
        assert trace_ids == {trace_id_for_run(next(iter(run_ids)))}
        # Losses forced the reliable layer to retransmit, and each
        # retransmission record carries the msg_id the merge attributes.
        assert obs.registry.counter_value("transport.retransmissions") > 0
        retransmissions = obs.collector.named("transport.retransmission")
        assert retransmissions and all(r.attrs["msg_id"]
                                       for r in retransmissions)

        merged = merge_traces(per_party.values(),
                              retransmission_threshold=1)
        run = merged.runs[next(iter(trace_ids))]
        assert run.unresolved_parents == []
        assert run.settled and set(run.outcomes.values()) == {"valid"}
        storms = [a for a in run.anomalies
                  if a.kind == ANOMALY_RETRANSMISSION_STORM]
        assert storms and all(a.run_id == run.run_id for a in storms)

    def test_duplicate_flood_attributed(self, make_community):
        profile = LinkProfile(latency=0.005, duplicate_probability=1.0)
        per_party, _obs, _community = _instrumented_run(
            make_community, seed=13, profile=profile
        )
        merged = merge_traces(per_party.values(), duplicate_threshold=1)
        floods = [a for a in merged.anomalies
                  if a.kind == ANOMALY_DUPLICATE_FLOOD]
        assert floods
        # Every flood points back at the run whose message was duplicated.
        assert all(a.trace_id in merged.runs for a in floods)


class TestAnomalies:
    def test_veto_flagged_with_diagnostics(self, make_community):
        import pytest

        from repro.apps.tictactoe import CROSS, NOUGHT, TicTacToeObject
        from repro.errors import ValidationFailed

        obs = RecordingInstrumentation(collect=True)
        names = ["Cross", "Nought"]
        community = make_community(names, seed=3, obs=obs)
        players = {"Cross": CROSS, "Nought": NOUGHT}
        objects = {name: TicTacToeObject(players=players) for name in names}
        controllers = community.found_object("game", objects)
        controller = controllers["Cross"]
        controller.enter()
        controller.overwrite()
        game = objects["Cross"]
        board = game.board
        board[0] = NOUGHT  # the Figure 5 cheat: Cross places Nought's mark
        game.apply_state({"board": board, "next": NOUGHT, "winner": ""})
        with pytest.raises(ValidationFailed):
            controller.leave()
        community.settle()
        per_party: "dict[str, list[dict]]" = {}
        for record in obs.collector.records:
            per_party.setdefault(record.party, []).append(record.to_dict())
        merged = merge_traces(per_party.values())
        vetoes = [a for a in merged.anomalies if a.kind == ANOMALY_VETO]
        assert len(vetoes) == 1
        assert vetoes[0].party == "Nought"
        assert "only X marks may be placed" in vetoes[0].detail
        run = merged.runs[vetoes[0].trace_id]
        assert run.veto_parties() == ["Nought"]
        assert set(run.outcomes.values()) == {"invalid"}

    def test_suppressed_commit_shows_as_stalled_run(self, make_community):
        """A byzantine sponsor that never sends m3 leaves the responders
        without a settlement record — the merge flags the stall."""
        from repro.core.object import DictB2BObject

        obs = RecordingInstrumentation(collect=True)
        community = make_community(3, seed=50, obs=obs)
        objects = {name: DictB2BObject() for name in community.names()}
        controllers = community.found_object("shared", objects)
        SuppressCommits(community.node("Org1"))
        controller = controllers["Org1"]
        controller.enter()
        controller.overwrite()
        objects["Org1"].set_attribute("x", 1)
        controller.leave()
        community.settle(2.0)
        per_party: "dict[str, list[dict]]" = {}
        for record in obs.collector.records:
            per_party.setdefault(record.party, []).append(record.to_dict())
        merged = merge_traces(per_party.values())
        stalls = [a for a in merged.anomalies
                  if a.kind == ANOMALY_STALLED_RUN]
        assert len(stalls) == 1
        assert "Org2" in stalls[0].party and "Org3" in stalls[0].party

    def test_timeline_renders_runs_and_anomalies(self, make_community):
        per_party, _obs, _community = _instrumented_run(make_community)
        merged = merge_traces(per_party.values())
        text = render_timeline(merged, max_events=4)
        assert "merged causal timeline" in text
        assert "proposer=Org1" in text
        assert "m1/sent" in text
        assert "more event(s)" in text
