"""Safety under misbehaviour (section 4.4) and liveness under bounded
temporary failures (section 4.1)."""

from __future__ import annotations

import pytest

from repro.core import DictB2BObject
from repro.errors import ValidationFailed
from repro.faults import (
    DivergentBody,
    DolevYaoIntruder,
    FaultSchedule,
    ForgedCommitAuth,
    MessageRecorder,
    SelectiveCommit,
    SelectiveProposal,
    SuppressCommits,
    SuppressResponses,
    TamperedCommitResponses,
    bounded_failure_schedule,
    tamper_body,
    tamper_commit_auth,
)
from repro.protocol.validation import CallbackValidator, Decision


def found_dict(community, object_name="shared"):
    objects = {name: DictB2BObject() for name in community.names()}
    controllers = community.found_object(object_name, objects)
    return controllers, objects


def write(controllers, objects, org, **attrs):
    controller = controllers[org]
    controller.enter()
    controller.overwrite()
    for key, value in attrs.items():
        objects[org].set_attribute(key, value)
    return controller.leave()


class TestByzantineSafety:
    """Every attack of section 4.4: honest replicas never install invalid
    state, and detection produces attributable evidence."""

    def test_suppressed_commit_blocks_but_preserves_safety(self, make_community):
        community = make_community(3, seed=50)
        controllers, objects = found_dict(community)
        SuppressCommits(community.node("Org1"))
        write(controllers, objects, "Org1", x=1)
        community.settle(2.0)
        for org in ["Org2", "Org3"]:
            engine = community.node(org).party.session("shared").state
            assert engine.agreed_state == {}
            assert engine.busy  # evidence that the run is still active
        blocked = community.node("Org2").check_progress(timeout=0.5)
        assert blocked

    def test_suppressed_response_blocks_proposer(self, make_community):
        community = make_community(2, seed=51)
        controllers, objects = found_dict(community)
        SuppressResponses(community.node("Org2"))
        from repro.core import DEFERRED_SYNCHRONOUS
        controllers["Org1"].mode = DEFERRED_SYNCHRONOUS
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(2.0)
        assert not ticket.done
        # Org2 got the content but can never demonstrate validity
        assert community.node("Org2").party.session("shared").state.agreed_state == {}

    def test_selective_proposal_cannot_reach_unanimity(self, make_community):
        community = make_community(3, seed=52)
        controllers, objects = found_dict(community)
        SelectiveProposal(community.node("Org1"), excluded=["Org3"])
        from repro.core import DEFERRED_SYNCHRONOUS
        controllers["Org1"].mode = DEFERRED_SYNCHRONOUS
        ticket = write(controllers, objects, "Org1", x=1)
        community.settle(2.0)
        assert not ticket.done  # cannot complete without Org3's response
        assert community.node("Org3").party.session("shared").state.agreed_state == {}

    def test_selective_commit_detected_by_excluded_member(self, make_community):
        community = make_community(3, seed=53)
        controllers, objects = found_dict(community)
        SelectiveCommit(community.node("Org1"), excluded=["Org3"])
        write(controllers, objects, "Org1", x=1)
        community.settle(2.0)
        # Org2 installed (it received a complete valid bundle)...
        assert community.node("Org2").party.session("shared").state.agreed_state == {"x": 1}
        # ...Org3 can show the run is still active.
        engine3 = community.node("Org3").party.session("shared").state
        assert engine3.busy and engine3.agreed_state == {}
        # Any honest party that received m3 can relay it (section 4.4):
        run = community.node("Org2").party.session("shared").state.runs()[0]
        output = community.node("Org3").party.handle("Org2", run.commit)
        community.node("Org3")._process_output(output)
        community.settle(0.5)
        assert engine3.agreed_state == {"x": 1}

    def test_divergent_bodies_invalidate_and_attribute(self, make_community):
        community = make_community(3, seed=54)
        controllers, objects = found_dict(community)
        DivergentBody(community.node("Org1"), victim="Org2")
        with pytest.raises(ValidationFailed):
            write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        for org in community.names():
            assert community.node(org).party.session("shared").state.agreed_state == {}
        # the cross-responder body-hash check attributes the divergence
        assert any(r.kind == "selective-send"
                   for r in community.node("Org3").misbehaviour_reports)

    def test_forged_commit_rejected(self, make_community):
        community = make_community(2, seed=55)
        controllers, objects = found_dict(community)
        ForgedCommitAuth(community.node("Org1"))
        write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        engine2 = community.node("Org2").party.session("shared").state
        assert engine2.agreed_state == {}
        assert any(r.kind == "forged-commit"
                   for r in community.node("Org2").misbehaviour_reports)

    def test_veto_flipped_in_bundle_detected(self, make_community):
        community = make_community(3, seed=56)
        controllers, objects = found_dict(community)
        community.node("Org3").party.session("shared").state.validator = (
            CallbackValidator(state=lambda p, c, pr: Decision.reject("veto"))
        )
        TamperedCommitResponses(community.node("Org1"))
        with pytest.raises(ValidationFailed):
            write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        # no honest party can be made to install the vetoed state
        for org in ["Org2", "Org3"]:
            assert community.node(org).party.session("shared").state.agreed_state == {}
        assert any(r.kind == "invalid-signature"
                   for r in community.node("Org2").misbehaviour_reports)

    def test_replayed_proposal_is_idempotent(self, make_community):
        community = make_community(2, seed=57)
        controllers, objects = found_dict(community)
        recorder = MessageRecorder(community.node("Org1"), msg_type="propose")
        write(controllers, objects, "Org1", x=1)
        community.settle(0.5)
        before = community.node("Org2").party.session("shared").state.agreed_sid
        recorder.replay()
        community.settle(0.5)
        after = community.node("Org2").party.session("shared").state.agreed_sid
        assert before == after  # replay had no effect

    def test_null_transition_vetoed(self, make_community):
        community = make_community(2, seed=58)
        controllers, objects = found_dict(community)
        write(controllers, objects, "Org1", x=1)
        community.settle(0.5)
        controller = controllers["Org1"]
        controller.enter()
        controller.overwrite()  # no actual change
        with pytest.raises(ValidationFailed) as excinfo:
            controller.leave()
        assert any("null" in d for d in excinfo.value.diagnostics)


class TestDolevYaoIntruder:
    def test_eavesdropping_on_insecure_channels(self, make_community):
        community = make_community(2, seed=60)
        controllers, objects = found_dict(community)
        intruder = DolevYaoIntruder(community.runtime.network)
        write(controllers, objects, "Org1", secret="s3cret")
        community.settle(0.5)
        learned = intruder.knowledge()
        proposals = [m for m in learned if m.get("msg_type") == "propose"]
        assert proposals and proposals[0]["body"]["secret"] == "s3cret"

    def test_body_tampering_detected(self, make_community):
        community = make_community(2, seed=61)
        controllers, objects = found_dict(community)
        intruder = DolevYaoIntruder(community.runtime.network)
        intruder.rewrite_payloads(tamper_body)
        with pytest.raises(ValidationFailed):
            write(controllers, objects, "Org1", x=1)
        community.settle(0.5)
        assert community.node("Org2").party.session("shared").state.agreed_state == {}
        assert intruder.modified > 0

    def test_commit_auth_tampering_detected(self, make_community):
        community = make_community(2, seed=62)
        controllers, objects = found_dict(community)
        intruder = DolevYaoIntruder(community.runtime.network)
        intruder.rewrite_payloads(tamper_commit_auth)
        write(controllers, objects, "Org1", x=1)
        community.settle(1.0)
        engine2 = community.node("Org2").party.session("shared").state
        assert engine2.agreed_state == {}
        assert any(r.kind == "forged-commit"
                   for r in community.node("Org2").misbehaviour_reports)

    def test_secure_channels_prevent_rewriting(self, make_community):
        community = make_community(2, seed=63)
        controllers, objects = found_dict(community)
        intruder = DolevYaoIntruder(community.runtime.network,
                                    secure_channels=True)
        intruder.rewrite_payloads(tamper_body)
        write(controllers, objects, "Org1", x=1)
        community.settle(0.5)
        assert intruder.modified == 0
        assert community.node("Org2").party.session("shared").state.agreed_state == {"x": 1}

    def test_message_removal_only_delays(self, make_community):
        community = make_community(2, seed=64)
        controllers, objects = found_dict(community)
        intruder = DolevYaoIntruder(community.runtime.network)
        window = {"active": True}
        intruder.drop_when(lambda env: window["active"])
        community.runtime.network.schedule(
            1.0, lambda: window.update(active=False)
        )
        write(controllers, objects, "Org1", x=1)
        community.settle(5.0)
        assert community.node("Org2").party.session("shared").state.agreed_state == {"x": 1}
        assert intruder.dropped > 0

    def test_delaying_messages_preserves_outcome(self, make_community):
        community = make_community(2, seed=65)
        controllers, objects = found_dict(community)
        intruder = DolevYaoIntruder(community.runtime.network)
        intruder.delay_when(
            lambda env: 0.4 if env.payload.get("type") == "data" else 0.0
        )
        write(controllers, objects, "Org1", x=1)
        community.settle(3.0)
        assert community.node("Org2").party.session("shared").state.agreed_state == {"x": 1}
        assert intruder.delayed > 0

    def test_injected_forgery_is_dropped(self, make_community):
        community = make_community(2, seed=66)
        controllers, objects = found_dict(community)
        intruder = DolevYaoIntruder(community.runtime.network)
        intruder.inject("Org1", "Org2", {
            "msg_type": "propose", "object": "shared", "proposal": "garbage",
        })
        community.settle(0.5)
        assert community.node("Org2").party.session("shared").state.agreed_state == {}


class TestLiveness:
    """If no party misbehaves, agreed interactions take place despite a
    bounded number of temporary failures."""

    def test_crash_and_recovery_of_responder(self, make_community):
        community = make_community(3, seed=70)
        controllers, objects = found_dict(community)
        node2 = community.node("Org2")
        network = community.runtime.network
        network.schedule(0.001, node2.crash)
        network.schedule(1.0, node2.recover)
        write(controllers, objects, "Org1", x=1)
        community.settle(2.0)
        for org in community.names():
            assert community.node(org).party.session("shared").state.agreed_state == {"x": 1}

    def test_crash_and_recovery_of_proposer(self, make_community):
        from repro.core import DEFERRED_SYNCHRONOUS
        community = make_community(3, seed=71)
        controllers, objects = found_dict(community)
        controllers["Org1"].mode = DEFERRED_SYNCHRONOUS
        node1 = community.node("Org1")
        network = community.runtime.network
        # crash the proposer immediately after it proposes, recover later
        ticket = write(controllers, objects, "Org1", x=1)
        node1.crash()
        community.settle(1.0)
        node1.recover()
        community.settle(5.0)
        assert ticket.done and ticket.valid
        for org in community.names():
            assert community.node(org).party.session("shared").state.agreed_state == {"x": 1}

    def test_partition_heals_and_run_completes(self, make_community):
        community = make_community(3, seed=72)
        controllers, objects = found_dict(community)
        network = community.runtime.network
        network.schedule(0.0, lambda: network.partition({"Org1", "Org2"}, {"Org3"}))
        network.schedule(1.5, network.heal_partition)
        write(controllers, objects, "Org1", x=1)
        community.settle(3.0)
        for org in community.names():
            assert community.node(org).party.session("shared").state.agreed_state == {"x": 1}

    def test_fault_schedule_round_robin(self, make_community):
        community = make_community(3, seed=73)
        controllers, objects = found_dict(community)
        schedule = bounded_failure_schedule(
            community, community.names(), failures=3,
            period=1.0, downtime=0.3, kind="crash",
        )
        schedule.arm()
        assert schedule.total_downtime() == pytest.approx(0.9)
        for i in range(3):
            write(controllers, objects, "Org1", **{f"k{i}": i})
        community.settle(6.0)
        for org in community.names():
            state = community.node(org).party.session("shared").state.agreed_state
            assert state == {"k0": 0, "k1": 1, "k2": 2}

    def test_partition_schedule(self, make_community):
        community = make_community(4, seed=74)
        controllers, objects = found_dict(community)
        schedule = FaultSchedule(community)
        schedule.partition([["Org1", "Org2"], ["Org3", "Org4"]], 0.05, 1.2)
        schedule.arm()
        write(controllers, objects, "Org1", x=1)
        community.settle(5.0)
        for org in community.names():
            assert community.node(org).party.session("shared").state.agreed_state == {"x": 1}

    def test_liveness_over_lossy_network(self, make_community, lossy_profile):
        community = make_community(3, seed=75, profile=lossy_profile)
        controllers, objects = found_dict(community)
        for i in range(5):
            write(controllers, objects, "Org1", **{f"k{i}": i})
        community.settle(30.0)
        expected = {f"k{i}": i for i in range(5)}
        for org in community.names():
            assert community.node(org).party.session("shared").state.agreed_state == expected


class TestRecoveryFromDurableState:
    def test_file_backed_party_recovers_evidence_and_checkpoints(self, tmp_path):
        from repro.storage.backends import FileRecordStore
        from repro.storage.checkpoint import CheckpointStore
        from repro.storage.journal import MessageJournal
        from repro.storage.log import NonRepudiationLog
        from repro.protocol.context import PartyContext
        from tests.engine_helpers import _keypair

        def build_ctx():
            return PartyContext(
                party_id="A",
                signer=_keypair("A").signer(),
                resolver=lambda pid: _keypair(pid).verifier(),
                evidence=NonRepudiationLog(
                    "A", FileRecordStore(str(tmp_path / "ev.jsonl"))),
                journal=MessageJournal(
                    "A", FileRecordStore(str(tmp_path / "jr.jsonl"))),
                checkpoints=CheckpointStore(
                    FileRecordStore(str(tmp_path / "ck.jsonl"))),
            )

        ctx = build_ctx()
        ctx.evidence.record("proposal-sent", {"run_id": "r1"})
        ctx.journal.record_message("r1", "sent", "B", {"m": 1})
        ctx.checkpoints.save("obj", {"seq": 1, "rh": b"", "sh": b""}, {"v": 1})
        ctx.evidence._store.close()
        ctx.journal._store.close()
        ctx.checkpoints._store.close()

        recovered = build_ctx()
        assert recovered.evidence.verify_chain() == 1
        assert recovered.journal.open_runs() == {"r1"}
        assert recovered.checkpoints.require_latest("obj").state == {"v": 1}


class TestPermanentFailure:
    """Section 7: 'relaxing failure assumptions (for example: a crashed
    node not recovering)' — the remedy available today is eviction."""

    def test_evict_permanently_crashed_member_and_make_progress(self, make_community):
        community = make_community(3, seed=99)
        controllers, objects = found_dict(community)
        write(controllers, objects, "Org1", before=1)
        community.settle(1.0)
        # Org3 dies and never comes back.
        community.runtime.network.crash("Org3")
        # New state changes block (unanimity needs Org3)...
        from repro.core import DEFERRED_SYNCHRONOUS
        controllers["Org1"].mode = DEFERRED_SYNCHRONOUS
        ticket = write(controllers, objects, "Org1", stuck=1)
        community.settle(2.0)
        assert not ticket.done
        # ...so the survivors abort the blocked run and evict Org3.
        engine1 = community.node("Org1").party.session("shared").state
        out = engine1.abort_active_run("Org3 presumed dead")
        community.node("Org1")._process_output(out)
        # Org2 is also stuck awaiting m3 for the blocked run; it abandons
        # it locally too (operator decision backed by blocked-run
        # evidence).
        engine2 = community.node("Org2").party.session("shared").state
        out = engine2.abort_active_run("Org3 presumed dead")
        community.node("Org2")._process_output(out)
        controllers["Org1"].evict(["Org3"])
        community.settle(2.0)
        assert controllers["Org1"].members() == ["Org1", "Org2"]
        # Progress resumes among the survivors.
        controllers["Org1"].mode = "synchronous"
        write(controllers, objects, "Org1", after=2)
        community.settle(1.0)
        assert objects["Org2"].get_attribute("after") == 2
        # Safety for the departed: Org3 never saw anything invalid; its
        # replica simply stopped at the last state it agreed.
        engine3 = community.node("Org3").party.session("shared").state
        assert engine3.agreed_state == {"before": 1}
