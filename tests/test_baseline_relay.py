"""Plain-2PC baseline engine and the agent relay primitive."""

from __future__ import annotations

import pytest

from repro.agents import StateRelay
from repro.core import Community, DictB2BObject, SimRuntime
from repro.errors import ConcurrencyError
from repro.protocol.baseline import PlainTwoPhaseEngine
from repro.protocol.events import RunCompleted, StateInstalled, StateRolledBack


class PlainHarness:
    def __init__(self, names, validator=None):
        self.engines = {
            name: PlainTwoPhaseEngine(name, "obj", names, {"v": 0},
                                      validator=validator)
            for name in names
        }
        self.events: "dict[str, list]" = {name: [] for name in names}

    def pump(self, source, output):
        queue = [(source, output)]
        while queue:
            sender, out = queue.pop(0)
            self.events[sender].extend(out.events)
            for recipient, message in out.messages:
                queue.append(
                    (recipient, self.engines[recipient].handle(sender, message))
                )


class TestPlainTwoPhase:
    def test_unanimous_accept(self):
        harness = PlainHarness(["A", "B", "C"])
        _, output = harness.engines["A"].propose({"v": 1})
        harness.pump("A", output)
        for engine in harness.engines.values():
            assert engine.state == {"v": 1}
        assert any(isinstance(e, StateInstalled) for e in harness.events["A"])

    def test_veto_rejects_everywhere(self):
        def refuse(proposed, current, proposer):
            return proposer != "A"

        harness = PlainHarness(["A", "B"], validator=refuse)
        _, output = harness.engines["A"].propose({"v": 1})
        harness.pump("A", output)
        for engine in harness.engines.values():
            assert engine.state == {"v": 0}
        assert any(isinstance(e, StateRolledBack) for e in harness.events["A"])

    def test_busy_proposer_rejected(self):
        harness = PlainHarness(["A", "B"])
        # strip B's engine so the vote never returns
        harness.engines["A"].propose({"v": 1})
        with pytest.raises(ConcurrencyError):
            harness.engines["A"].propose({"v": 2})

    def test_busy_responder_votes_no(self):
        harness = PlainHarness(["A", "B", "C"])
        # A proposes but C's vote is held back manually: deliver m1 only
        _, output = harness.engines["A"].propose({"v": 1})
        propose_msg = output.messages[0][1]
        harness.engines["B"].handle("A", propose_msg)  # B accepts, now busy
        out_b = harness.engines["B"].handle("A", propose_msg)  # duplicate: noop
        assert out_b.messages == []
        # B is busy; a competing proposal from C gets a NO vote from B
        _, output_c = harness.engines["C"].propose({"v": 2})
        votes = []
        for recipient, message in output_c.messages:
            reply = harness.engines[recipient].handle("C", message)
            votes.extend(m for _, m in reply.messages)
        b_vote = [v for v in votes if v.get("voter") == "B"][0]
        assert b_vote["accept"] is False

    def test_singleton_group(self):
        harness = PlainHarness(["A"])
        _, output = harness.engines["A"].propose({"v": 9})
        harness.pump("A", output)
        assert harness.engines["A"].state == {"v": 9}

    def test_events_report_run_completion(self):
        harness = PlainHarness(["A", "B"])
        run_id, output = harness.engines["A"].propose({"v": 1})
        harness.pump("A", output)
        completed = [e for e in harness.events["A"]
                     if isinstance(e, RunCompleted)]
        assert completed and completed[0].run_id == run_id


class TestStateRelayUnit:
    def _setup(self, transform=None, seed=0):
        community = Community(["A", "Hub", "B"], runtime=SimRuntime(seed=seed))
        left = {n: DictB2BObject() for n in ["A", "Hub"]}
        right = {n: DictB2BObject() for n in ["Hub", "B"]}
        left_ctrl = community.found_object("left", left)
        community.found_object("right", right)
        relay = StateRelay(community.node("Hub"), "left", "right",
                           transform=transform)
        return community, left_ctrl, left, right, relay

    def test_no_relay_when_already_converged(self):
        community, left_ctrl, left, right, relay = self._setup()
        # both sides start identical (empty) — no relay should fire
        community.settle(1.0)
        assert relay.relayed == 0

    def test_relay_counts(self):
        community, left_ctrl, left, right, relay = self._setup()
        controller = left_ctrl["A"]
        for i in range(3):
            controller.enter()
            controller.overwrite()
            left["A"].set_attribute("k", i)
            controller.leave()
            community.settle(2.0)
        assert relay.relayed == 3
        assert right["B"].get_attribute("k") == 2

    def test_transform_applied(self):
        def redact(state):
            return {key: value for key, value in state.items()
                    if not key.startswith("secret")}

        community, left_ctrl, left, right, relay = self._setup(transform=redact)
        controller = left_ctrl["A"]
        controller.enter()
        controller.overwrite()
        left["A"].set_attribute("public", 1)
        left["A"].set_attribute("secret_code", "xyz")
        controller.leave()
        community.settle(2.0)
        assert right["B"].get_attribute("public") == 1
        assert right["B"].get_attribute("secret_code") is None
