"""Remaining integration paths: filters, skewed clocks, node progress."""

from __future__ import annotations

import pytest

from repro.core import Community, DictB2BObject, SimRuntime
from repro.protocol.events import RunBlocked
from repro.transport.base import Envelope, NetworkFilter, normalise_filter_result
from repro.transport.inmemory import SimNetwork
from repro.util.clocks import OffsetClock


class TestNetworkFilters:
    def test_normalise_filter_result(self):
        envelope = Envelope("A", "B", {})
        assert normalise_filter_result(None) == []
        assert normalise_filter_result(envelope) == [envelope]
        assert normalise_filter_result([envelope, envelope]) == [envelope,
                                                                 envelope]

    def test_filter_can_duplicate_and_suppress(self):
        class Doubler(NetworkFilter):
            def on_send(self, envelope):
                if envelope.payload.get("dup"):
                    return [envelope, envelope]
                if envelope.payload.get("drop"):
                    return None
                return envelope

        network = SimNetwork(seed=1)
        got = []
        network.register("B", got.append)
        doubler = Doubler()
        network.add_filter(doubler)
        network.send(Envelope("A", "B", {"dup": True}))
        network.send(Envelope("A", "B", {"drop": True}))
        network.send(Envelope("A", "B", {}))
        network.run(max_time=1.0)
        assert len(got) == 3  # 2 duplicated + 1 plain, dropped one gone
        network.remove_filter(doubler)
        network.send(Envelope("A", "B", {"dup": True}))
        network.run(max_time=2.0)
        assert len(got) == 4  # filter no longer doubles

    def test_pending_events_counts_uncancelled(self):
        network = SimNetwork(seed=2)
        handle = network.schedule(1.0, lambda: None)
        network.schedule(2.0, lambda: None)
        assert network.pending_events() == 2
        handle.cancel()
        assert network.pending_events() == 1


class TestClockSkew:
    def test_skewed_local_clocks_do_not_break_evidence(self, make_community):
        """Evidence time-stamps come from the shared TSA, so per-node
        clock skew must not affect verification (section 4.2)."""
        community = make_community(2, seed=40)
        # Skew Org2's local clock by -1 hour.
        node2 = community.node("Org2")
        node2.ctx.clock = OffsetClock(community.clock, -3600.0)
        objects = {n: DictB2BObject() for n in community.names()}
        controllers = community.found_object("shared", objects)
        controller = controllers["Org2"]
        controller.enter()
        controller.overwrite()
        objects["Org2"].set_attribute("k", 1)
        controller.leave()
        community.settle(1.0)
        assert objects["Org1"].get_attribute("k") == 1
        for name in community.names():
            community.node(name).ctx.evidence.verify_chain()


class TestNodeProgress:
    def test_blocked_membership_run_surfaces_through_node(self, make_community):
        community = make_community(3, seed=41)
        objects = {n: DictB2BObject() for n in community.names()}
        community.found_object("shared", objects)
        from repro.faults import SuppressResponses
        SuppressResponses(community.node("Org2"))
        community.add_organisation("Org4")
        from repro.core import DictB2BObject as D
        ticket = community.node("Org4").propagate_connect(
            "shared", D(), "Org3"
        )
        community.settle(10.0)
        assert not ticket.done
        events = community.node("Org3").check_progress(timeout=5.0)
        blocked = [e for e in events if isinstance(e, RunBlocked)]
        assert blocked and blocked[0].kind == "connect"
        assert blocked[0].waiting_on == ["Org2"]

    def test_listener_sees_blocked_events(self, make_community):
        community = make_community(2, seed=42)
        objects = {n: DictB2BObject() for n in community.names()}
        community.found_object("shared", objects)
        from repro.faults import SuppressResponses
        SuppressResponses(community.node("Org2"))
        seen = []
        community.node("Org1").add_listener(seen.append)
        ticket = community.node("Org1").propagate_new_state("shared", {"x": 1})
        community.settle(10.0)
        community.node("Org1").check_progress(timeout=5.0)
        assert any(isinstance(e, RunBlocked) for e in seen)


class TestBrokeredNetworkCompatibility:
    def test_fault_schedule_rejects_non_sim_runtime(self, make_community):
        from repro.core import ThreadedRuntime
        from repro.errors import ConfigurationError
        from repro.faults import FaultSchedule
        runtime = ThreadedRuntime()
        try:
            community = Community(["A"], runtime=runtime)
            with pytest.raises(ConfigurationError):
                FaultSchedule(community)
        finally:
            runtime.close()

    def test_mom_network_with_sim_runtime_fault_injection(self):
        from repro.transport.mom import BrokeredSimNetwork
        network = BrokeredSimNetwork(seed=5)
        runtime = SimRuntime(network=network)
        community = Community(["A", "B"], runtime=runtime)
        objects = {n: DictB2BObject() for n in community.names()}
        controllers = community.found_object("shared", objects)
        # partitions apply to the path into the broker
        network.partition({"A"}, {"B"})
        from repro.core import DEFERRED_SYNCHRONOUS
        controllers["A"].mode = DEFERRED_SYNCHRONOUS
        controller = controllers["A"]
        controller.enter()
        controller.overwrite()
        objects["A"].set_attribute("k", 1)
        ticket = controller.leave()
        community.settle(1.0)
        assert not ticket.done
        network.heal_partition()
        community.settle(10.0)
        assert ticket.done and ticket.valid
        assert objects["B"].get_attribute("k") == 1
