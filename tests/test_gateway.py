"""Tests for repro.gateway: rate limiting, load leveling, idempotency,
circuit breaking and the closed-loop load simulator."""

from __future__ import annotations

import pytest

from repro.apps.auction import AuctionObject
from repro.apps.orders import (
    ROLE_CUSTOMER,
    ROLE_SUPPLIER,
    OrderClient,
    OrderObject,
)
from repro.core.community import Community
from repro.crypto.prng import DeterministicRandomSource
from repro.errors import (
    CircuitOpenError,
    GatewayOverloadedError,
    PipelineSaturatedError,
    RateLimitedError,
)
from repro.faults import FaultSchedule
from repro.gateway import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionQueue,
    CircuitBreaker,
    IdempotencyCache,
    LoadSimConfig,
    RateLimiter,
    TokenBucket,
    build_gateway_community,
    run_load_sim,
)
from repro.obs import RecordingInstrumentation


class FakeClock:
    def __init__(self) -> None:
        self.time = 0.0

    def now(self) -> float:
        return self.time

    def advance(self, seconds: float) -> None:
        self.time += seconds


def counter_state(community, object_name, org="Org1"):
    return community.node(org).controllers[object_name].b2b_object.get_state()


# ---------------------------------------------------------------------------
# unit: token bucket / rate limiter
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)
        # Half a second refills one token at 2 tokens/s.
        assert bucket.retry_after(0.0) == pytest.approx(0.5)
        assert bucket.try_acquire(0.5)
        assert not bucket.try_acquire(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.try_acquire(0.0)
        assert bucket.try_acquire(100.0)
        assert bucket.try_acquire(100.0)
        assert not bucket.try_acquire(100.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=2.0, now=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5, now=0.0)


class TestRateLimiter:
    def test_per_client_isolation(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        ok, _ = limiter.admit("hot")
        assert ok
        ok, retry_after = limiter.admit("hot")
        assert not ok and retry_after > 0.0
        ok, _ = limiter.admit("cold")
        assert ok  # an exhausted neighbour does not starve this client

    def test_lru_bound_on_clients(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock, max_clients=2)
        for client in ("a", "b", "c"):
            limiter.admit(client)
        assert len(limiter) == 2
        # "a" was evicted; it starts over with a full bucket.
        ok, _ = limiter.admit("a")
        assert ok


# ---------------------------------------------------------------------------
# unit: admission queue / idempotency cache
# ---------------------------------------------------------------------------

class TestAdmissionQueue:
    def test_fifo_and_shedding(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")  # full: shed
        assert queue.take() == "a"
        assert queue.offer("c")
        assert queue.take() == "b" and queue.take() == "c"
        assert queue.take() is None

    def test_push_back_goes_to_head(self):
        queue = AdmissionQueue(capacity=1)
        queue.offer("a")
        taken = queue.take()
        queue.push_back(taken)
        queue.push_back("earlier")  # re-queues may exceed capacity
        assert queue.take() == "earlier"
        assert queue.take() == "a"


class TestIdempotencyCache:
    def test_pending_then_completed(self):
        cache = IdempotencyCache(capacity=4)
        cache.note_pending("alice", "k1", "ticket")
        assert cache.lookup("alice", "k1") == "ticket"
        assert cache.lookup("bob", "k1") is None
        cache.complete("alice", "k1", "ticket")
        assert cache.pending_count == 0
        assert cache.lookup("alice", "k1") == "ticket"

    def test_completed_window_is_bounded(self):
        cache = IdempotencyCache(capacity=2)
        for index in range(3):
            cache.complete("alice", f"k{index}", index)
        assert cache.lookup("alice", "k0") is None  # evicted
        assert cache.lookup("alice", "k1") == 1
        assert cache.lookup("alice", "k2") == 2


# ---------------------------------------------------------------------------
# unit: circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def make(self, clock, **overrides):
        options = dict(failure_threshold=2, window=4,
                       latency_threshold=1.0, reset_timeout=5.0, probes=2)
        options.update(overrides)
        return CircuitBreaker(clock, **options)

    def test_opens_on_failure_rate(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record(False, 0.1)
        assert breaker.state == CLOSED
        breaker.record(False, 0.1)
        assert breaker.state == OPEN
        admitted, _ = breaker.allow()
        assert not admitted
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_opens_on_latency(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record(True, 2.0)  # over the 1.0s latency threshold
        breaker.record(True, 3.0)
        assert breaker.state == OPEN

    def test_half_open_probes_close_it(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        first = breaker.allow()
        second = breaker.allow()
        assert first == (True, True) and second == (True, True)
        assert breaker.allow() == (False, False)  # probe slots exhausted
        breaker.record(True, 0.1, probe=True)
        assert breaker.state == HALF_OPEN
        breaker.record(True, 0.1, probe=True)
        assert breaker.state == CLOSED
        states = [(old, new) for _, old, new in breaker.transitions]
        assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                          (HALF_OPEN, CLOSED)]

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        clock.advance(5.0)
        assert breaker.allow() == (True, True)
        breaker.record(False, 0.1, probe=True)
        assert breaker.state == OPEN

    def test_release_probe_frees_the_slot(self):
        clock = FakeClock()
        breaker = self.make(clock, probes=1)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        clock.advance(5.0)
        assert breaker.allow() == (True, True)
        assert breaker.allow() == (False, False)
        breaker.release_probe()  # admission failed downstream
        assert breaker.allow() == (True, True)

    def test_stragglers_do_not_vote_while_open(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record(False, 0.0)
        breaker.record(False, 0.0)
        # Backlog from before the trip settles fine — must not close.
        breaker.record(True, 0.1)
        breaker.record(True, 0.1)
        assert breaker.state == OPEN


# ---------------------------------------------------------------------------
# integration: gateway over a simulated community
# ---------------------------------------------------------------------------

class TestGatewayIntegration:
    def test_submission_settles_exactly_once(self):
        community, gateway, name = build_gateway_community(seed=10)
        session = gateway.session("alice")
        ticket = session.submit(name, {"client": "alice", "n": 5})
        assert gateway.wait(ticket, 30.0)
        assert ticket.valid and ticket.run_id and ticket.latency > 0.0
        community.settle()  # let the commit reach the responder too
        for org in ("Org1", "Org2"):
            assert counter_state(community, name, org) == {
                "applied": 1, "total": 5,
            }
        community.close()

    def test_idempotent_retry_pending_and_settled(self):
        community, gateway, name = build_gateway_community(seed=11)
        session = gateway.session("alice")
        first = session.submit(name, {"client": "alice", "n": 1}, key="op-1")
        # Retry while pending: the very same ticket comes back.
        assert session.retry(first) is first
        assert gateway.wait(first, 30.0)
        # Retry after settlement: a replayed view of the original outcome.
        replay = session.retry(first)
        assert replay.replayed and replay.done
        assert replay.valid == first.valid
        assert replay.run_id == first.run_id
        community.settle()
        assert counter_state(community, name)["applied"] == 1
        community.close()

    def test_retry_spans_reconnect(self):
        community, gateway, name = build_gateway_community(seed=12)
        session = gateway.session("alice")
        ticket = session.submit(name, {"client": "alice", "n": 1}, key="op-9")
        assert gateway.wait(ticket, 30.0)
        # A fresh session (reconnect) retrying the same ticket replays.
        reconnected = gateway.session("alice")
        replay = reconnected.retry(ticket)
        assert replay.replayed and replay.run_id == ticket.run_id
        community.settle()
        assert counter_state(community, name)["applied"] == 1
        community.close()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_idempotency_property_random_retries(self, seed):
        """Random submit/retry interleavings across reconnects: every
        ticket for a key observes the original outcome and each key is
        applied exactly once."""
        community, gateway, name = build_gateway_community(seed=seed)
        rng = DeterministicRandomSource(f"gateway-prop:{seed}")
        sessions = [gateway.session("alice") for _ in range(2)]
        keys = [f"op{index}" for index in range(6)]
        submissions = []
        for _ in range(20):
            key = keys[rng.random_below(len(keys))]
            session = sessions[rng.random_below(len(sessions))]
            ticket = session.submit(name, {"client": "alice", "n": 1},
                                    key=key)
            submissions.append((key, ticket))
            if rng.random_below(3) == 0:
                community.settle()  # let some settle between retries
        community.settle()
        original = {}
        for key, ticket in submissions:
            assert ticket.done
            original.setdefault(key, ticket)
            assert ticket.valid == original[key].valid
            assert ticket.run_id == original[key].run_id
        used_keys = {key for key, _ in submissions}
        assert counter_state(community, name)["applied"] == len(used_keys)
        community.close()

    def test_rate_limit_caps_hot_client_without_starving_others(self):
        community, gateway, name = build_gateway_community(
            seed=13, rate=1.0, burst=2.0)
        hot = gateway.session("hot")
        cold = gateway.session("cold")
        hot.submit(name, {"client": "hot", "n": 1})
        hot.submit(name, {"client": "hot", "n": 1})
        with pytest.raises(RateLimitedError) as excinfo:
            hot.submit(name, {"client": "hot", "n": 1})
        assert excinfo.value.retry_after > 0.0
        ticket = cold.submit(name, {"client": "cold", "n": 1})
        assert gateway.wait(ticket, 30.0)
        assert gateway.stats()["rejected"]["rate_limited"] == 1
        community.close()

    def test_full_queue_sheds_with_overload_error(self):
        community, gateway, name = build_gateway_community(
            seed=14, queue_capacity=1, max_inflight=1)
        session = gateway.session("alice")
        first = session.submit(name, {"client": "alice", "n": 1})
        session.submit(name, {"client": "alice", "n": 1})  # queued
        with pytest.raises(GatewayOverloadedError):
            session.submit(name, {"client": "alice", "n": 1})
        assert gateway.stats()["rejected"]["overloaded"] == 1
        community.settle()
        assert first.done
        community.close()

    def test_pipeline_max_depth_backpressure(self):
        obs = RecordingInstrumentation()
        community, gateway, name = build_gateway_community(seed=15, obs=obs)
        node = community.node("Org1")
        pipe = node.pipeline(name, max_depth=2)
        # First submission goes straight in flight; the next two queue.
        node.submit_update(name, {"n": 1})
        node.submit_update(name, {"n": 1})
        node.submit_update(name, {"n": 1})
        assert pipe.depth == 2
        with pytest.raises(PipelineSaturatedError):
            node.submit_update(name, {"n": 1})
        assert obs.registry.counter_value("pipeline.saturated") == 1
        community.settle()
        community.close()

    def test_gateway_requeues_on_pipeline_saturation(self):
        community, gateway, name = build_gateway_community(
            seed=16, queue_capacity=16, max_inflight=16,
            pipeline_options={"max_depth": 1, "max_batch": 1})
        session = gateway.session("alice")
        tickets = [session.submit(name, {"client": "alice", "n": 1})
                   for _ in range(6)]
        community.settle()
        assert all(ticket.valid for ticket in tickets)
        assert counter_state(community, name)["applied"] == 6
        community.close()

    def test_breaker_opens_and_recovers_under_crash(self):
        """closed -> open (induced degradation) -> half_open -> closed."""
        obs = RecordingInstrumentation()
        community, gateway, name = build_gateway_community(
            seed=17, obs=obs,
            breaker={"failure_threshold": 2, "window": 4,
                     "latency_threshold": 0.5, "reset_timeout": 2.0,
                     "probes": 1})
        FaultSchedule(community).crash("Org2", 0.05, 1.5).arm()
        community.settle(0.1)  # enter the crash window
        session = gateway.session("alice")
        stalled = [session.submit(name, {"client": "alice", "n": 1})
                   for _ in range(3)]
        # The community is unanimous: nothing settles until Org2 is back,
        # so these settle late (over the latency threshold) and trip the
        # breaker.
        community.settle()
        assert all(ticket.done and ticket.valid for ticket in stalled)
        breaker = gateway.breaker(name)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            session.submit(name, {"client": "alice", "n": 1})
        assert excinfo.value.retry_after > 0.0
        # Cool down into half_open; one probe is admitted, a second
        # request is still rejected while the probe is in flight.
        community.settle(3.0)
        assert breaker.state == HALF_OPEN
        probe = session.submit(name, {"client": "alice", "n": 1})
        with pytest.raises(CircuitOpenError):
            session.submit(name, {"client": "alice", "n": 1})
        assert gateway.wait(probe, 30.0)
        assert probe.valid
        assert breaker.state == CLOSED
        states = [(old, new) for _, old, new in breaker.transitions]
        assert states == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                          (HALF_OPEN, CLOSED)]
        assert obs.registry.counter_value("gateway.breaker.transitions") == 3
        assert obs.registry.counter_value(
            "gateway.rejected.circuit_open") == 2
        community.close()

    def test_obs_report_has_gateway_section(self):
        obs = RecordingInstrumentation()
        community, gateway, name = build_gateway_community(seed=18, obs=obs)
        session = gateway.session("alice")
        ticket = session.submit(name, {"client": "alice", "n": 1})
        assert gateway.wait(ticket, 30.0)
        session.retry(ticket)
        report = obs.report()
        assert "== gateway ==" in report
        assert "idempotent replays" in report
        assert "settle latency p99 ms" in report
        community.close()


# ---------------------------------------------------------------------------
# integration: app adoption
# ---------------------------------------------------------------------------

class TestAppGatewayClients:
    def test_order_gateway_client_is_idempotent(self):
        roles = {"Customer": ROLE_CUSTOMER, "Supplier": ROLE_SUPPLIER}
        community = Community(list(roles), seed=20)
        controllers = community.found_object(
            "order", {org: OrderObject(roles) for org in roles})
        customer = OrderClient(controllers["Customer"])
        client = customer.gateway_client("web-1")
        ticket = client.add_item("widget", 3, key="add-widget")
        assert client.wait(ticket, 30.0)
        replay = client.retry(ticket)
        assert replay.replayed and replay.valid
        community.settle()
        for org in roles:
            items = controllers[org].b2b_object.items()
            assert items == {"widget": {"quantity": 3, "price": None,
                                        "approved": False}}
        community.close()

    def test_auction_gateway_bidder_never_bids_twice(self):
        from repro.apps.auction import AuctionHouse

        houses = ["HouseA", "HouseB"]
        community = Community(houses, seed=21)
        controllers = community.found_object(
            "auction",
            {org: AuctionObject(item="vase", reserve=10) for org in houses})
        house = AuctionHouse(controllers["HouseA"])
        bidder = house.gateway_client("alice")
        ticket = bidder.bid(25, key="bid-25")
        assert bidder.wait(ticket, 30.0)
        replay = bidder.retry(ticket)
        assert replay.replayed
        community.settle()
        state = controllers["HouseB"].b2b_object.get_state()
        assert state["bids"] == 1  # the retried bid was not placed twice
        assert state["highest"]["amount"] == 25
        community.close()


# ---------------------------------------------------------------------------
# load simulator
# ---------------------------------------------------------------------------

class TestLoadSim:
    def test_closed_loop_population_settles_every_update(self):
        community, gateway, name = build_gateway_community(
            seed=30, max_inflight=256, pipeline_options={"max_batch": 128})
        config = LoadSimConfig(clients=400, requests_per_client=1,
                               arrival_window=1.0, seed=30)
        stats = run_load_sim(community, gateway, name, config)
        assert stats.settled_valid == 400
        assert stats.gave_up == 0
        assert stats.throughput > 0.0
        percentiles = stats.latency_percentiles()
        assert percentiles["p50"] <= percentiles["p99"]
        assert counter_state(community, name)["applied"] == 400
        community.close()

    def test_hot_clients_are_capped_but_everyone_finishes(self):
        community, gateway, name = build_gateway_community(
            seed=31, rate=20.0, burst=2.0,
            max_inflight=256, pipeline_options={"max_batch": 128})
        config = LoadSimConfig(clients=60, requests_per_client=2,
                               arrival_window=0.2, hot_clients=2,
                               hot_factor=20, seed=31)
        stats = run_load_sim(community, gateway, name, config)
        expected = 58 * 2 + 2 * 40
        assert stats.settled_valid == expected
        assert stats.retries.get("RateLimitedError", 0) > 0
        assert counter_state(community, name)["applied"] == expected
        community.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestGatewayCli:
    def test_gateway_sim_command(self, capsys):
        from repro.cli import main

        assert main(["gateway-sim", "--clients", "50", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "settled valid: 50" in out
        assert "throughput" in out

    def test_simulate_seed_threads_into_random_workload(self, capsys):
        from repro.cli import main

        argv = ["simulate", "--workload", "random", "--updates", "4",
                "--parties", "2", "--seed", "6"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second  # same seed, same workload, same run
        assert "workload=random" in first
