"""Full process restart: rebuilding engines from durable state.

Beyond transient crash/recovery (tested in test_faults_and_recovery),
these tests model losing *all in-memory state*: a node is rebuilt from
its checkpoint store, journal and evidence log via
``Community.restart_node`` + ``OrganisationNode.restore_object``.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DEFERRED_SYNCHRONOUS,
    Community,
    DictB2BObject,
    SimRuntime,
)
from repro.errors import CheckpointError, MembershipError
from repro.protocol.validation import CallbackValidator, Decision


def build(names=("A", "B", "C"), seed=0, mode=DEFERRED_SYNCHRONOUS):
    community = Community(list(names), runtime=SimRuntime(seed=seed))
    objects = {name: DictB2BObject() for name in names}
    controllers = community.found_object("ledger", objects, mode=mode)
    return community, controllers, objects


def write(community, controllers, objects, org, wait=True, **attrs):
    controller = controllers[org]
    controller.enter()
    controller.overwrite()
    for key, value in attrs.items():
        objects[org].set_attribute(key, value)
    ticket = controller.leave()
    if wait:
        controller.coord_commit(ticket)
        community.settle(1.0)
    return ticket


class TestQuiescentRestart:
    def test_agreed_state_and_group_restored(self):
        community, controllers, objects = build(seed=1)
        write(community, controllers, objects, "A", k=1)
        write(community, controllers, objects, "B", m=2)

        node = community.restart_node("B")
        replica = DictB2BObject()
        controller = node.restore_object("ledger", replica)
        assert replica.attributes() == {"k": 1, "m": 2}
        session = node.party.session("ledger")
        assert session.group.members == ["A", "B", "C"]
        assert session.state.agreed_sid.seq == 2

    def test_restarted_node_can_propose(self):
        community, controllers, objects = build(seed=2)
        write(community, controllers, objects, "A", k=1)
        node = community.restart_node("B")
        replica = DictB2BObject()
        controller = node.restore_object("ledger", replica)
        controller.enter()
        controller.overwrite()
        replica.set_attribute("after", "restart")
        controller.coord_commit(controller.leave())
        community.settle(1.0)
        assert objects["A"].get_attribute("after") == "restart"

    def test_restarted_node_can_respond(self):
        community, controllers, objects = build(seed=3)
        write(community, controllers, objects, "A", k=1)
        node = community.restart_node("C")
        node.restore_object("ledger", DictB2BObject())
        write(community, controllers, objects, "A", k2=2)
        assert node.party.session("ledger").state.agreed_state == {
            "k": 1, "k2": 2}

    def test_restore_without_checkpoints_fails(self):
        community, controllers, objects = build(seed=4)
        node = community.restart_node("A")
        with pytest.raises(CheckpointError):
            node.restore_object("ghost-object", DictB2BObject())

    def test_double_restore_rejected(self):
        community, controllers, objects = build(seed=5)
        write(community, controllers, objects, "A", k=1)
        node = community.restart_node("A")
        node.restore_object("ledger", DictB2BObject())
        with pytest.raises(MembershipError):
            node.restore_object("ledger", DictB2BObject())

    def test_unknown_node_restart_rejected(self):
        community, controllers, objects = build(seed=6)
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            community.restart_node("Nobody")


class TestInFlightProposerRestart:
    def test_open_run_resumes_and_completes(self):
        community, controllers, objects = build(seed=10)
        write(community, controllers, objects, "A", k=1)
        # C is down; A's next proposal blocks mid-run.
        community.runtime.network.crash("C")
        ticket = write(community, controllers, objects, "A", wait=False, k=2)
        community.settle(1.0)
        assert not ticket.done
        # Full restart of A: in-memory run state is gone.
        node = community.restart_node("A")
        replica = DictB2BObject()
        node.restore_object("ledger", replica)
        engine = node.party.session("ledger").state
        assert engine.busy  # the run was resumed from the journal
        assert engine.current_state == {"k": 2}  # invariant 2 preserved
        assert engine.agreed_state == {"k": 1}
        # C returns; the resumed run completes everywhere.
        community.runtime.network.recover("C")
        community.node("C").recover()
        community.settle(5.0)
        for name in community.names():
            state = community.node(name).party.session("ledger").state
            assert state.agreed_state == {"k": 2}, name
        assert replica.get_attribute("k") == 2

    def test_recovered_run_reuses_original_identifiers(self):
        community, controllers, objects = build(seed=11)
        community.runtime.network.crash("C")
        ticket = write(community, controllers, objects, "A", wait=False, k=1)
        community.settle(1.0)
        original = community.node("A").party.session("ledger").state
        original_sid = original.active_run().new_sid
        node = community.restart_node("A")
        node.restore_object("ledger", DictB2BObject())
        resumed = node.party.session("ledger").state.active_run()
        assert resumed.new_sid == original_sid
        assert resumed.auth is not None  # authenticator survived via journal

    def test_responses_received_before_restart_are_kept(self):
        community, controllers, objects = build(seed=12)
        community.runtime.network.crash("C")
        write(community, controllers, objects, "A", wait=False, k=1)
        community.settle(1.0)  # B's response arrives, C's does not
        node = community.restart_node("A")
        node.restore_object("ledger", DictB2BObject())
        run = node.party.session("ledger").state.active_run()
        assert "B" in run.responses
        assert run.waiting_on() == ["C"]

    def test_stale_open_run_is_discarded(self):
        # A proposes while C is down, then A crashes; the OTHERS later
        # move on is impossible under unanimity, but the group moving past
        # the run is modelled by completing it before the restart: here we
        # simply verify a run whose seq is not beyond agreed is closed.
        community, controllers, objects = build(seed=13)
        write(community, controllers, objects, "A", k=1)
        community.runtime.network.crash("C")
        ticket = write(community, controllers, objects, "A", wait=False, k=2)
        community.settle(1.0)
        # Manually mark the agreed state as having advanced to seq 2
        # (as if the run had completed but the close record was lost).
        node_a = community.node("A")
        engine = node_a.party.session("ledger").state
        run = engine.active_run()
        from repro.protocol.events import Output
        output = Output()
        engine._settle(run, True, [], output)
        node_a._process_output(output)
        node = community.restart_node("A")
        node.restore_object("ledger", DictB2BObject())
        restored = node.party.session("ledger").state
        assert not restored.busy
        assert restored.agreed_state == {"k": 2}


class TestInFlightResponderRestart:
    def test_responder_rebuilds_and_answers_retransmission(self):
        from repro.transport.inmemory import LinkProfile
        community, controllers, objects = build(seed=20)
        write(community, controllers, objects, "A", k=1)
        # B receives A's proposal but its outbound responses are lost
        # before B's process dies: an asymmetric B -> A fault.
        network = community.runtime.network
        network.set_link_profile("B", "A", LinkProfile(drop_probability=0.999999))
        ticket = write(community, controllers, objects, "A", wait=False, k2=2)
        community.settle(1.0)
        assert not ticket.done
        engine_old = community.node("B").party.session("ledger").state
        open_runs = [r for r in engine_old.runs() if r.outcome is None]
        assert open_runs  # B accepted and is awaiting m3
        node = community.restart_node("B")
        node.restore_object("ledger", DictB2BObject())
        engine = node.party.session("ledger").state
        # B re-drove the proposal from its journal: decision recomputed
        # and the run is live again.
        assert any(r.outcome is None for r in engine.runs())
        network.set_link_profile("B", "A", LinkProfile())
        community.settle(10.0)
        for name in community.names():
            state = community.node(name).party.session("ledger").state
            assert state.agreed_state == {"k": 1, "k2": 2}, (
                name, state.agreed_state)
        assert ticket.done and ticket.valid

    def test_replay_protection_survives_restart(self):
        community, controllers, objects = build(seed=21)
        from repro.faults import MessageRecorder
        recorder = MessageRecorder(community.node("A"), msg_type="propose")
        write(community, controllers, objects, "A", k=1)
        node = community.restart_node("B")
        node.restore_object("ledger", DictB2BObject())
        engine = node.party.session("ledger").state
        before = engine.agreed_sid
        recorder.replay()  # replay the old m1 at the restarted B
        community.settle(1.0)
        assert engine.agreed_sid == before
        # the replayed tuple was already in the recovered seen-set
        assert engine._proposal_key(before) in engine._seen_proposal_keys


class TestFileBackedRestart:
    def test_restart_from_disk_stores(self, tmp_path):
        """End-to-end durability: all three stores on disk, node rebuilt
        from files only."""
        from repro.storage.backends import FileRecordStore
        from repro.storage.checkpoint import CheckpointStore
        from repro.storage.journal import MessageJournal
        from repro.storage.log import NonRepudiationLog

        community = Community(["A", "B"], runtime=SimRuntime(seed=30))
        # rewire A's context onto file-backed stores before any activity
        ctx = community.node("A").ctx
        ctx.evidence = NonRepudiationLog(
            "A", FileRecordStore(str(tmp_path / "ev.jsonl")))
        ctx.journal = MessageJournal(
            "A", FileRecordStore(str(tmp_path / "jr.jsonl")))
        ctx.checkpoints = CheckpointStore(
            FileRecordStore(str(tmp_path / "ck.jsonl")))

        objects = {name: DictB2BObject() for name in community.names()}
        controllers = community.found_object("ledger", objects)
        controller = controllers["A"]
        controller.enter()
        controller.overwrite()
        objects["A"].set_attribute("k", 1)
        controller.leave()
        community.settle(1.0)

        # "power cycle": close files, rebuild stores from disk
        ctx.evidence._store.close()
        ctx.journal._store.close()
        ctx.checkpoints._store.close()
        ctx.evidence = NonRepudiationLog(
            "A", FileRecordStore(str(tmp_path / "ev.jsonl")))
        ctx.journal = MessageJournal(
            "A", FileRecordStore(str(tmp_path / "jr.jsonl")))
        ctx.checkpoints = CheckpointStore(
            FileRecordStore(str(tmp_path / "ck.jsonl")))

        node = community.restart_node("A")
        replica = DictB2BObject()
        node.restore_object("ledger", replica)
        assert replica.get_attribute("k") == 1
        assert node.ctx.evidence.verify_chain() > 0


class TestStorageDirCommunity:
    def test_community_with_storage_dir_is_durable(self, tmp_path):
        import os

        from repro.core import Community, SimRuntime

        storage = str(tmp_path / "stores")
        community = Community(["A", "B"], runtime=SimRuntime(seed=50),
                              storage_dir=storage)
        objects = {name: DictB2BObject() for name in community.names()}
        controllers = community.found_object("ledger", objects)
        controller = controllers["A"]
        controller.enter()
        controller.overwrite()
        objects["A"].set_attribute("k", 7)
        controller.leave()
        community.settle(1.0)
        # the durable files exist on disk
        for kind in ("evidence", "journal", "checkpoints"):
            assert os.path.exists(os.path.join(storage, "A", f"{kind}.jsonl"))
        # restart A over the same stores and restore the object
        node = community.restart_node("A")
        replica = DictB2BObject()
        node.restore_object("ledger", replica)
        assert replica.get_attribute("k") == 7
        assert node.ctx.evidence.verify_chain() > 0
