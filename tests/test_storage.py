"""Storage substrate: record stores, evidence log, checkpoints, journal."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError, LogCorruptionError
from repro.storage.backends import FileRecordStore, MemoryRecordStore
from repro.storage.checkpoint import CheckpointStore
from repro.storage.journal import RECEIVED, SENT, MessageJournal
from repro.storage.log import GENESIS_HASH, NonRepudiationLog
from repro.util.encoding import canonical_bytes, from_canonical_bytes


class TestMemoryRecordStore:
    def test_append_and_scan(self):
        store = MemoryRecordStore()
        assert store.append({"a": 1}) == 0
        assert store.append({"b": 2}) == 1
        assert list(store.scan()) == [{"a": 1}, {"b": 2}]
        assert len(store) == 2

    def test_later_mutation_does_not_affect_store(self):
        store = MemoryRecordStore()
        record = {"a": [1]}
        store.append(record)
        record["a"].append(2)
        assert list(store.scan()) == [{"a": [1]}]


class TestFileRecordStore:
    def test_append_scan_reopen(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        store = FileRecordStore(path)
        store.append({"x": 1, "blob": b"\x00"})
        store.append({"x": 2})
        store.close()
        reopened = FileRecordStore(path)
        assert list(reopened.scan()) == [{"x": 1, "blob": b"\x00"}, {"x": 2}]
        assert len(reopened) == 2
        reopened.close()

    def test_partial_trailing_line_is_repaired(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        store = FileRecordStore(path)
        store.append({"x": 1})
        store.close()
        with open(path, "ab") as handle:
            handle.write(b'{"x": 2')  # simulated mid-write crash
        reopened = FileRecordStore(path)
        assert list(reopened.scan()) == [{"x": 1}]
        reopened.append({"x": 3})
        assert list(reopened.scan()) == [{"x": 1}, {"x": 3}]
        reopened.close()

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "r.jsonl")
        store = FileRecordStore(path)
        store.append({"ok": True})
        store.close()
        assert os.path.exists(path)


class TestNonRepudiationLog:
    def test_chain_grows_and_verifies(self):
        log = NonRepudiationLog("OrgA")
        assert log.head == GENESIS_HASH
        log.record("proposal-sent", {"run_id": "r1"})
        log.record("response-received", {"run_id": "r1"})
        assert log.verify_chain() == 2
        assert log.head != GENESIS_HASH

    def test_entries_filtered_by_kind(self):
        log = NonRepudiationLog("OrgA")
        log.record("a", {"i": 1})
        log.record("b", {"i": 2})
        log.record("a", {"i": 3})
        assert [e.payload["i"] for e in log.entries("a")] == [1, 3]

    def test_find_by_payload(self):
        log = NonRepudiationLog("OrgA")
        log.record("decision", {"run_id": "r1", "valid": True})
        log.record("decision", {"run_id": "r2", "valid": False})
        entry = log.find("decision", run_id="r2")
        assert entry is not None and entry.payload["valid"] is False
        assert log.find("decision", run_id="zzz") is None

    def test_tampering_detected(self):
        log = NonRepudiationLog("OrgA")
        for i in range(5):
            log.record("evt", {"i": i})
        store = log._store
        record = from_canonical_bytes(store._records[2])
        record["payload"]["i"] = 99
        store._records[2] = canonical_bytes(record)
        with pytest.raises(LogCorruptionError, match="hash mismatch"):
            log.verify_chain()

    def test_reordering_detected(self):
        log = NonRepudiationLog("OrgA")
        log.record("evt", {"i": 0})
        log.record("evt", {"i": 1})
        store = log._store
        store._records[0], store._records[1] = store._records[1], store._records[0]
        with pytest.raises(LogCorruptionError):
            log.verify_chain()

    def test_truncation_detected(self):
        log = NonRepudiationLog("OrgA")
        log.record("evt", {"i": 0})
        log.record("evt", {"i": 1})
        log._store._records.pop()
        with pytest.raises(LogCorruptionError, match="disagrees"):
            log.verify_chain()

    def test_reload_from_store(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = NonRepudiationLog("OrgA", FileRecordStore(path))
        log.record("evt", {"i": 0})
        head = log.head
        log._store.close()
        reloaded = NonRepudiationLog("OrgA", FileRecordStore(path))
        assert reloaded.head == head
        assert len(reloaded) == 1
        reloaded.record("evt", {"i": 1})
        assert reloaded.verify_chain() == 2

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=9),
           st.integers(min_value=0, max_value=9))
    def test_any_single_field_tamper_detected(self, entries, victim):
        entries = max(entries, victim + 1)
        log = NonRepudiationLog("OrgA")
        for i in range(entries):
            log.record("evt", {"i": i})
        store = log._store
        record = from_canonical_bytes(store._records[victim])
        record["payload"]["i"] = 1000 + victim
        store._records[victim] = canonical_bytes(record)
        with pytest.raises(LogCorruptionError):
            log.verify_chain()


class TestCheckpointStore:
    def test_save_and_latest(self):
        store = CheckpointStore()
        store.save("order", {"seq": 1, "rh": b"r", "sh": b"s"}, {"x": 1})
        store.save("order", {"seq": 2, "rh": b"r2", "sh": b"s2"}, {"x": 2})
        latest = store.require_latest("order")
        assert latest.sequence == 2 and latest.state == {"x": 2}
        assert store.history_length("order") == 2

    def test_sequence_must_advance(self):
        store = CheckpointStore()
        store.save("order", {"seq": 2, "rh": b"", "sh": b""}, {})
        with pytest.raises(CheckpointError, match="advance"):
            store.save("order", {"seq": 2, "rh": b"", "sh": b""}, {})

    def test_objects_are_independent(self):
        store = CheckpointStore()
        store.save("a", {"seq": 5, "rh": b"", "sh": b""}, "A")
        store.save("b", {"seq": 1, "rh": b"", "sh": b""}, "B")
        assert store.require_latest("a").state == "A"
        assert store.require_latest("b").state == "B"

    def test_missing_object(self):
        with pytest.raises(CheckpointError):
            CheckpointStore().require_latest("ghost")
        assert CheckpointStore().latest("ghost") is None

    def test_history_and_digest(self):
        store = CheckpointStore()
        store.save("a", {"seq": 1, "rh": b"", "sh": b""}, {"v": 1})
        store.save("a", {"seq": 2, "rh": b"", "sh": b""}, {"v": 2})
        history = store.history("a")
        assert [c.state for c in history] == [{"v": 1}, {"v": 2}]
        assert store.state_digest("a") is not None
        assert store.state_digest("ghost") is None

    def test_recovery_from_store(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = CheckpointStore(FileRecordStore(path))
        store.save("a", {"seq": 3, "rh": b"", "sh": b""}, {"v": 3})
        store._store.close()
        recovered = CheckpointStore(FileRecordStore(path))
        assert recovered.require_latest("a").state == {"v": 3}


class TestMessageJournal:
    def test_open_and_close_runs(self):
        journal = MessageJournal("OrgA")
        journal.record_message("r1", SENT, "OrgB", {"m": 1})
        journal.record_message("r2", RECEIVED, "OrgC", {"m": 2})
        assert journal.open_runs() == {"r1", "r2"}
        journal.close_run("r1", "valid")
        assert journal.open_runs() == {"r2"}
        assert journal.outcome("r1") == "valid"
        assert journal.outcome("r2") is None

    def test_messages_in_order(self):
        journal = MessageJournal("OrgA")
        journal.record_message("r1", SENT, "OrgB", {"m": 1})
        journal.record_message("r1", RECEIVED, "OrgB", {"m": 2})
        messages = journal.messages("r1")
        assert [m["message"]["m"] for m in messages] == [1, 2]
        assert [m["direction"] for m in messages] == [SENT, RECEIVED]

    def test_direction_validated(self):
        journal = MessageJournal("OrgA")
        with pytest.raises(ValueError):
            journal.record_message("r1", "sideways", "OrgB", {})

    def test_late_message_on_closed_run_stays_closed(self):
        journal = MessageJournal("OrgA")
        journal.record_message("r1", SENT, "OrgB", {"m": 1})
        journal.close_run("r1", "valid")
        journal.record_message("r1", RECEIVED, "OrgB", {"m": 2})
        assert not journal.is_open("r1")

    def test_recovery_from_store(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = MessageJournal("OrgA", FileRecordStore(path))
        journal.record_message("r1", SENT, "OrgB", {"m": 1})
        journal.record_message("r2", SENT, "OrgB", {"m": 2})
        journal.close_run("r2", "invalid")
        journal._store.close()
        recovered = MessageJournal("OrgA", FileRecordStore(path))
        assert recovered.open_runs() == {"r1"}
        assert recovered.outcome("r2") == "invalid"
