"""B2BObjects: distributed object middleware for dependable information
sharing between organisations.

A from-scratch Python reproduction of N. Cook, S. Shrivastava and
S. Wheater, "Distributed Object Middleware to Support Dependable
Information Sharing between Organisations", DSN 2002.

The middleware presents the abstraction of object state shared between
mutually distrusting organisations.  Every state change is a proposal
validated by *all* sharing parties via a non-repudiable coordination
protocol; signed, time-stamped evidence of every action is hash-chain
logged, so safety holds even against misbehaving parties, while liveness
holds under bounded temporary failures.

Package map:

``repro.core``       public API: Community, B2BObject, controllers, nodes
``repro.protocol``   coordination + membership protocols, evidence, dispute
``repro.crypto``     RSA signatures, PKI, TSA, hashing, PRNG (from scratch)
``repro.transport``  simulated + TCP networks, once-only reliable layer
``repro.storage``    non-repudiation logs, checkpoints, message journal
``repro.agents``     trusted agents and TTP relays (indirect interaction)
``repro.apps``       Tic-Tac-Toe, order processing, auction, whiteboard
``repro.gateway``    client front door: rate limit, idempotency, breaker
``repro.faults``     crash/partition injection, byzantine parties, intruder
``repro.extensions`` majority-vote and deadline/TTP termination (sec. 7)
``repro.bench``      benchmark harness helpers
"""

from repro import errors
from repro.core import (
    ASYNCHRONOUS,
    B2BObject,
    B2BObjectController,
    Community,
    CompositeB2BObject,
    DEFERRED_SYNCHRONOUS,
    DictB2BObject,
    OrganisationNode,
    SYNCHRONOUS,
    SimRuntime,
    ThreadedRuntime,
    two_party_community,
    wrap_object,
)
from repro.errors import ValidationFailed
from repro.protocol import Decision, PipelineTicket, ProposalPipeline

__version__ = "1.0.0"

__all__ = [
    "errors",
    "ASYNCHRONOUS",
    "B2BObject",
    "B2BObjectController",
    "Community",
    "CompositeB2BObject",
    "DEFERRED_SYNCHRONOUS",
    "DictB2BObject",
    "OrganisationNode",
    "SYNCHRONOUS",
    "SimRuntime",
    "ThreadedRuntime",
    "two_party_community",
    "wrap_object",
    "Decision",
    "PipelineTicket",
    "ProposalPipeline",
    "ValidationFailed",
    "__version__",
]
