"""Deadline-based termination with a TTP (section 7 future work).

"The imposition of deadlines requires the involvement of a TTP to
guarantee that all honest parties terminate with the same view of agreed
state.  In effect, a TTP would provide certified abort of a protocol run
unless a complete set of responses were available (in which case the TTP
would provide a certified decision derived from those responses)."

:class:`TerminationTTP` implements exactly that contract: presented with
a run's evidence it independently verifies the signed proposal and
responses and issues a signed *certified resolution* — a decision when
the response set is complete, an abort otherwise.  Honest parties apply
the token via :func:`apply_certified_resolution`; because the token is
deterministic in the evidence, every honest party ends with the same
view.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashing import hash_members
from repro.crypto.signature import KeyPair, Verifier, generate_party_keypair
from repro.errors import DisputeError, SignatureError
from repro.protocol.coordination import (
    ROLE_PROPOSER,
    StateCoordinationEngine,
)
from repro.protocol.events import Output
from repro.protocol.messages import (
    SignedPart,
    VerifierResolver,
    responses_unanimous,
)

RESOLUTION_COMMIT = "commit"
RESOLUTION_ABORT = "abort"


class TerminationTTP:
    """Issues certified resolutions for blocked protocol runs."""

    def __init__(self, name: str = "TerminationTTP",
                 resolver: "VerifierResolver | None" = None,
                 keypair: "KeyPair | None" = None,
                 key_bits: int = 512) -> None:
        self.name = name
        self._resolver = resolver
        self._keypair = keypair or generate_party_keypair(name, bits=key_bits)
        self._signer = self._keypair.signer()
        self.resolutions_issued = 0

    @property
    def verifier(self) -> Verifier:
        return self._keypair.verifier()

    def resolve(self, run_evidence: dict,
                claimed_members: "list[str]") -> SignedPart:
        """Issue a certified resolution for one run.

        *run_evidence* is the proposer's view: the signed proposal, the
        responses received so far, object name and run id.
        *claimed_members* is cross-checked against the membership hash in
        the signed proposal's group identifier, so a requester cannot
        shrink the electorate.
        """
        if self._resolver is None:
            raise DisputeError("TTP has no verifier resolver configured")
        try:
            proposal = SignedPart.from_dict(run_evidence["proposal"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DisputeError(f"malformed run evidence: {exc}") from exc
        proposer = str(proposal.payload.get("proposer", ""))
        self._resolver(proposer).require(
            proposal.payload, proposal.signature, "TTP: proposal"
        )
        gid = proposal.payload.get("gid", {})
        if bytes(gid.get("mh", b"")) != hash_members(list(claimed_members)):
            raise DisputeError("claimed membership does not match the group identifier")

        expected = {m for m in claimed_members if m != proposer}
        responses: "list[SignedPart]" = []
        for raw in run_evidence.get("responses", []):
            try:
                part = SignedPart.from_dict(raw)
            except (KeyError, TypeError, ValueError):
                continue
            responder = str(part.payload.get("responder", ""))
            try:
                self._resolver(responder).require(
                    part.payload, part.signature, "TTP: response"
                )
            except SignatureError:
                continue  # unverifiable responses carry no weight
            if responder in expected:
                responses.append(part)

        have = {str(p.payload.get("responder", "")) for p in responses}
        if have == expected:
            unanimous, _diags = responses_unanimous(responses)
            resolution = RESOLUTION_COMMIT if unanimous else RESOLUTION_ABORT
            valid = unanimous
        else:
            resolution = RESOLUTION_ABORT
            valid = False

        token_payload = {
            "type": "certified-resolution",
            "ttp": self.name,
            "object": str(run_evidence.get("object", "")),
            "run_id": str(run_evidence.get("run_id", "")),
            "resolution": resolution,
            "valid": valid,
        }
        self.resolutions_issued += 1
        signature = self._signer.sign(token_payload)
        return SignedPart(payload=token_payload, signature=signature,
                          timestamp=None)


def gather_run_evidence(engine: StateCoordinationEngine,
                        run_id: str) -> "Optional[dict]":
    """Extract a proposer's evidence for a blocked run."""
    run = engine.run(run_id)
    if run is None or run.role != ROLE_PROPOSER:
        return None
    return {
        "object": engine.object_name,
        "run_id": run.run_id,
        "proposal": run.proposal.to_dict(),
        "responses": [part.to_dict() for part in run.responses.values()],
    }


def apply_certified_resolution(engine: StateCoordinationEngine,
                               token: SignedPart,
                               ttp_verifier: Verifier) -> Output:
    """Apply a TTP resolution token to a local (possibly blocked) run.

    Verifies the token signature, then settles the run: ``commit`` with
    ``valid`` installs the proposed state; ``abort`` invalidates it and
    the proposer rolls back.  Idempotent for settled runs.
    """
    output = Output()
    ttp_verifier.require(token.payload, token.signature, "certified resolution")
    if token.payload.get("type") != "certified-resolution":
        raise DisputeError("not a certified resolution token")
    if token.payload.get("object") != engine.object_name:
        return output
    run = engine.run(str(token.payload.get("run_id", "")))
    if run is None or run.outcome is not None:
        return output
    valid = bool(token.payload.get("valid", False))
    if valid and run.new_state is None:
        valid = False
    diagnostics = [
        f"certified {token.payload.get('resolution')} by {token.payload.get('ttp')}"
    ]
    engine._settle(run, valid, diagnostics, output)
    return output


class DeadlineMonitor:
    """Sweeps nodes for blocked runs and resolves them through a TTP.

    This in-process service plays the role the paper assigns to an
    on-line TTP; in a networked deployment the evidence and token would
    travel as messages, with identical verification at each end.
    """

    def __init__(self, nodes: "list", ttp: TerminationTTP,
                 deadline: float) -> None:
        self.nodes = list(nodes)
        self.ttp = ttp
        self.deadline = deadline
        self.resolved_runs: "list[str]" = []

    def sweep(self) -> int:
        """Resolve every over-deadline state run; returns how many."""
        resolved = 0
        for node in self.nodes:
            for session in node.party.sessions.values():
                engine = session.state
                now = engine.ctx.clock.now()
                for run in engine.runs():
                    if run.outcome is not None or run.role != ROLE_PROPOSER:
                        continue
                    if now - run.last_activity <= self.deadline:
                        continue
                    evidence = gather_run_evidence(engine, run.run_id)
                    if evidence is None:
                        continue
                    token = self.ttp.resolve(
                        evidence, list(engine.group.members)
                    )
                    self._apply_everywhere(engine.object_name, token)
                    self.resolved_runs.append(run.run_id)
                    resolved += 1
        return resolved

    def _apply_everywhere(self, object_name: str, token: SignedPart) -> None:
        for node in self.nodes:
            session = node.party.sessions.get(object_name)
            if session is None or session.detached:
                continue
            output = apply_certified_resolution(
                session.state, token, self.ttp.verifier
            )
            node._process_output(output)
