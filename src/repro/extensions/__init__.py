"""Section-7 future-work extensions: stronger termination guarantees."""

from repro.extensions.deadlines import (
    RESOLUTION_ABORT,
    RESOLUTION_COMMIT,
    DeadlineMonitor,
    TerminationTTP,
    apply_certified_resolution,
    gather_run_evidence,
)
from repro.extensions.majority import (
    MajorityCoordinationEngine,
    make_majority_engine,
)

__all__ = [
    "RESOLUTION_ABORT",
    "RESOLUTION_COMMIT",
    "DeadlineMonitor",
    "TerminationTTP",
    "apply_certified_resolution",
    "gather_run_evidence",
    "MajorityCoordinationEngine",
    "make_majority_engine",
]
