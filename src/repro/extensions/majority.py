"""Majority-vote termination (section 7 future work).

"Approaches to guaranteeing termination include: automatic resolution or
abort by resorting to majority decision on state changes" — with a nod to
MAFTIA's work on tolerating the corruption of a proportion of
participants in agreement protocols.

:class:`MajorityCoordinationEngine` replaces the unanimity rule with a
configurable quorum over the full participant set (the proposer counts as
an implicit accept).  All systematic checks — signatures, invariants,
body integrity, bundle completeness — are unchanged; only the decision
aggregation differs.  A correctly behaving party in the accepting
majority installs the state even if it personally vetoed, which is the
price of guaranteed resolution (and why the paper's base protocol keeps
unanimity).
"""

from __future__ import annotations

from repro.protocol.coordination import StateCoordinationEngine
from repro.protocol.messages import SignedPart
from repro.protocol.validation import Decision


class MajorityCoordinationEngine(StateCoordinationEngine):
    """State coordination deciding by quorum instead of unanimity."""

    #: Fraction of the *whole group* (including the proposer) that must
    #: accept.  Strictly-greater-than comparison, so 0.5 means a strict
    #: majority.
    quorum_fraction: float = 0.5

    def _aggregate_decisions(self, responses: "list[SignedPart]",
                             own_decision: "Decision | None" = None
                             ) -> "tuple[bool, list[str]]":
        diagnostics: "list[str]" = []
        accepts = 1  # the proposer's implicit accept
        for part in responses:
            try:
                decision = Decision.from_dict(part.payload["decision"])
            except (KeyError, ValueError, TypeError):
                diagnostics.append(f"{part.signer}: malformed decision")
                continue
            if decision.accepted:
                accepts += 1
            else:
                for diag in decision.diagnostics or ("rejected",):
                    diagnostics.append(f"{part.signer}: {diag}")
        # Quorum is computed over the whole group, so a partial response
        # set (non-responders after force_completion) weighs against the
        # proposal rather than shrinking the electorate.
        group_size = len(self.group)
        valid = accepts > self.quorum_fraction * group_size
        diagnostics.append(
            f"majority rule: {accepts}/{group_size} accepted "
            f"(quorum > {self.quorum_fraction:g})"
        )
        return valid, diagnostics

    def _may_install_despite_own_veto(self) -> bool:
        return True

    def _require_complete_bundle(self) -> bool:
        return False


def make_majority_engine(quorum_fraction: float) -> "type[MajorityCoordinationEngine]":
    """Build an engine class with a custom quorum (e.g. 2/3)."""
    if not 0.0 <= quorum_fraction < 1.0:
        raise ValueError("quorum fraction must be in [0, 1)")

    class _Engine(MajorityCoordinationEngine):
        pass

    _Engine.quorum_fraction = quorum_fraction
    _Engine.__name__ = f"MajorityEngine_{int(quorum_fraction * 100)}"
    return _Engine
