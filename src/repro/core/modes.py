"""Communication modes (section 5).

"In synchronous mode, [connect, disconnect and leave] block until the
relevant coordination process completes (an exception is raised if
validation fails).  In asynchronous mode, they return immediately and
completion is signalled by the coordinator through invocation of
coordCallback.  In deferred synchronous mode they return immediately and
a blocking call to coordCommit can be used to wait for completion."
"""

from __future__ import annotations

SYNCHRONOUS = "synchronous"
DEFERRED_SYNCHRONOUS = "deferred-synchronous"
ASYNCHRONOUS = "asynchronous"

ALL_MODES = (SYNCHRONOUS, DEFERRED_SYNCHRONOUS, ASYNCHRONOUS)


def validate_mode(mode: str) -> str:
    if mode not in ALL_MODES:
        raise ValueError(f"unknown communication mode {mode!r}; expected one of {ALL_MODES}")
    return mode
