"""The organisation node: the B2BCoordinator of Figure 4.

One :class:`OrganisationNode` hosts everything Figure 3 places inside an
organisation's middleware boundary: the reliable communication endpoint,
the protocol engines (via :class:`~repro.protocol.party.ProtocolParty`),
certificate management, the non-repudiation log, check-pointing, and the
local propagation interface (``propagate_new_state`` / ``propagate_update``
/ ``propagate_connect`` / ``propagate_disconnect``) that insulates
controllers from protocol-specific detail.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.core.controller import (
    B2BObjectController,
    CoordinationTicket,
    ObjectMergerAdapter,
    ObjectValidatorAdapter,
)
from repro.core.modes import SYNCHRONOUS
from repro.core.object import B2BObject
from repro.core.readcache import ReadCache, ReadMode, ReadResult
from repro.core.runtime import Runtime, SimRuntime, ThreadedRuntime
from repro.core.shards import ShardMap, ShardScheduler
from repro.errors import NotConnectedError, ProtocolBlocked
from repro.protocol.context import PartyContext
from repro.protocol.events import (
    ConnectionDecided,
    DisconnectionDecided,
    Event,
    MembershipChanged,
    MisbehaviourEvent,
    Output,
    RunCompleted,
    StateInstalled,
    StateRolledBack,
)
from repro.protocol.group import ROTATING
from repro.protocol.membership import CertificateResolver
from repro.protocol.party import ProtocolParty, extract_object_name
from repro.protocol.pipeline import PipelineTicket, ProposalPipeline
from repro.transport.base import TimerHandle
from repro.transport.reliable import ReliableEndpoint

EventListener = Callable[[Event], None]


class OrganisationNode:
    """One organisation's complete middleware instance."""

    def __init__(self, ctx: PartyContext, runtime: Runtime,
                 certificate_resolver: "CertificateResolver | None" = None,
                 certificate: "dict | None" = None,
                 retransmit_interval: float = 0.05,
                 default_timeout: "float | None" = None,
                 num_shards: int = 1,
                 shard_map: "ShardMap | None" = None,
                 shard_workers: "bool | None" = None,
                 shard_run_slots: "int | None" = None,
                 shard_max_depth: "int | None" = None) -> None:
        self.ctx = ctx
        self.runtime = runtime
        self.certificate = certificate
        self.party = ProtocolParty(ctx, certificate_resolver=certificate_resolver)
        self.endpoint = ReliableEndpoint(
            ctx.party_id, runtime.network,
            retransmit_interval=retransmit_interval, obs=ctx.obs,
        )
        self.endpoint.on_message(self._on_message)
        self.controllers: "dict[str, B2BObjectController]" = {}
        self.listeners: "list[EventListener]" = []
        self.misbehaviour_reports: "list[MisbehaviourEvent]" = []
        if default_timeout is None:
            default_timeout = (SimRuntime.DEFAULT_TIMEOUT
                               if isinstance(runtime, SimRuntime)
                               else ThreadedRuntime.DEFAULT_TIMEOUT)
        self.default_timeout = default_timeout
        # The simulation runtime is single-threaded virtual time: shard
        # worker threads would race its event queue, so routing stays
        # inline there and workers default on only for real (threaded)
        # runtimes that actually shard.
        total_shards = (shard_map.num_shards if shard_map is not None
                        else num_shards)
        if shard_workers is None:
            shard_workers = (total_shards > 1
                             and not isinstance(runtime, SimRuntime))
        if isinstance(runtime, SimRuntime):
            shard_workers = False
        self.shards = ShardScheduler(
            num_shards=num_shards, shard_map=shard_map,
            workers=shard_workers, run_slots=shard_run_slots,
            shared_max_depth=shard_max_depth, name=ctx.party_id,
        )
        self.readcache = ReadCache(self)
        self._tickets: "dict[str, CoordinationTicket]" = {}
        self._pipeline_timers: "dict[str, TimerHandle]" = {}
        self._gateway: "Optional[Any]" = None
        self._live: "Optional[Any]" = None
        # Control-plane lock (object registration, joins, lazy gateway/
        # live construction).  Engine access is guarded per shard; the
        # registry lock below is the leaf for tickets/timers/reports.
        # Lock order: node lock -> shard lock(s) -> registry lock.
        self._lock = threading.RLock()
        self._registry_lock = threading.Lock()
        self._join_objects: "dict[str, B2BObject]" = {}
        self._join_modes: "dict[str, str]" = {}
        self._crashed = False
        # Fault-injection hook: maps one outbound (recipient, message) to a
        # replacement list (empty = suppress).  Used by repro.faults to
        # model misbehaving parties that alter or omit their own traffic.
        self.outbound_interceptor: "Optional[Callable[[str, dict], list[tuple[str, dict]]]]" = None

    @property
    def party_id(self) -> str:
        return self.ctx.party_id

    def add_listener(self, listener: EventListener) -> None:
        """Observe every protocol event this node surfaces."""
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------

    def register_object(self, object_name: str, b2b_object: B2BObject,
                        members: "list[str]",
                        mode: str = SYNCHRONOUS,
                        sponsor_mode: str = ROTATING,
                        reject_null_transitions: bool = True,
                        timeout: "float | None" = None,
                        engine_cls: "Optional[type]" = None) -> B2BObjectController:
        """Found a shared object (every founding member calls this)."""
        with self._lock:
            controller = B2BObjectController(
                self, object_name, b2b_object, mode=mode,
                timeout=timeout if timeout is not None else self.default_timeout,
            )
            extra: dict = {}
            if engine_cls is not None:
                extra["engine_cls"] = engine_cls
            shard = self.shards.shard_for(object_name)
            with shard.lock:
                self.party.create_object(
                    object_name,
                    members,
                    b2b_object.get_state(),
                    validator=ObjectValidatorAdapter(b2b_object),
                    merger=ObjectMergerAdapter(b2b_object),
                    sponsor_mode=sponsor_mode,
                    reject_null_transitions=reject_null_transitions,
                    **extra,
                )
                engine = self.party.session(object_name).state
                self.readcache.publish(object_name, engine.agreed_state,
                                       engine.agreed_sid.to_dict())
            self.controllers[object_name] = controller
            return controller

    def restore_object(self, object_name: str, b2b_object: B2BObject,
                       mode: str = SYNCHRONOUS,
                       timeout: "float | None" = None,
                       engine_cls: "Optional[type]" = None) -> B2BObjectController:
        """Rebuild a shared object from durable state after a restart.

        Counterpart of :meth:`register_object` for a node whose process
        restarted: the agreed state and group view come from the
        checkpoint store and any in-flight protocol runs are resumed from
        the journal.  The application object receives the recovered
        agreed state via ``apply_state``.
        """
        with self._lock:
            controller = B2BObjectController(
                self, object_name, b2b_object, mode=mode,
                timeout=timeout if timeout is not None else self.default_timeout,
            )
            extra: dict = {}
            if engine_cls is not None:
                extra["engine_cls"] = engine_cls
            shard = self.shards.shard_for(object_name)
            with shard.lock:
                session, output = self.party.restore_object(
                    object_name,
                    validator=ObjectValidatorAdapter(b2b_object),
                    merger=ObjectMergerAdapter(b2b_object),
                    **extra,
                )
                b2b_object.apply_state(session.state.agreed_state)
                self.readcache.publish(object_name,
                                       session.state.agreed_state,
                                       session.state.agreed_sid.to_dict())
            self.controllers[object_name] = controller
        self._process_output(output)
        return controller

    def connect(self, object_name: str, b2b_object: B2BObject,
                sponsor: "str | None" = None,
                mode: str = SYNCHRONOUS,
                sponsor_mode: str = ROTATING,
                timeout: "float | None" = None,
                via: "str | None" = None) -> B2BObjectController:
        """Join an existing shared object.

        Name the *sponsor* directly, or pass any known member as *via* to
        have the sponsor discovered (section 4.5.3).  Synchronous-mode
        semantics: blocks until admitted (returning the new controller)
        or raises on rejection/timeout.  For deferred or asynchronous
        use, call :meth:`propagate_connect` directly.
        """
        ticket = self.propagate_connect(object_name, b2b_object, sponsor,
                                        mode=mode, sponsor_mode=sponsor_mode,
                                        via=via)
        self.wait_for_ticket(ticket, timeout)
        if not ticket.done:
            raise ProtocolBlocked(
                f"connection to {object_name!r} did not complete"
            )
        if not ticket.valid:
            raise NotConnectedError(
                f"connection to {object_name!r} was rejected: {ticket.diagnostics}"
            )
        return self.controllers[object_name]

    # ------------------------------------------------------------------
    # B2BCoordinatorLocal propagation interface (section 5)
    # ------------------------------------------------------------------

    def propagate_new_state(self, object_name: str,
                            new_state: Any) -> CoordinationTicket:
        self._await_quiescent(object_name)
        shard = self.shards.shard_for(object_name)
        with shard.lock:
            session = self.party.session(object_name)
            run_id, output = session.state.propose_overwrite(new_state)
            ticket = self._track(run_id, object_name, "state")
        self._process_output(output)
        return ticket

    def propagate_update(self, object_name: str, update: Any) -> CoordinationTicket:
        self._await_quiescent(object_name)
        shard = self.shards.shard_for(object_name)
        with shard.lock:
            session = self.party.session(object_name)
            run_id, output = session.state.propose_update(update)
            ticket = self._track(run_id, object_name, "state")
        self._process_output(output)
        return ticket

    # ------------------------------------------------------------------
    # proposal pipeline (batched coordination rounds)
    # ------------------------------------------------------------------

    def pipeline(self, object_name: str, **options: Any) -> ProposalPipeline:
        """The write pipeline for *object_name*, created on first use.

        *options* (``max_batch``, ``max_busy_retries``, ...) configure the
        pipeline on creation and are ignored once it exists.
        """
        shard = self.shards.shard_for(object_name)
        with shard.lock:
            return shard.pipelines.pipeline(
                object_name,
                lambda: self.party.session(object_name).state,
                **options,
            )

    def submit_update(self, object_name: str, update: Any) -> PipelineTicket:
        """Queue *update* through the proposal pipeline.

        Unlike :meth:`propagate_update` this never blocks and never
        raises for concurrency: while a run is in flight the update
        queues, and once the engine is free every queued update is
        coalesced into one batched proposal.  Benign busy vetoes retry
        automatically; the ticket resolves invalid only for genuine
        policy vetoes (or retry exhaustion).
        """
        shard = self.shards.shard_for(object_name)
        with shard.lock:
            pipe = shard.pipelines.pipeline(
                object_name,
                lambda: self.party.session(object_name).state,
            )
            ticket, output = pipe.submit(update)
        self._process_output(output)
        self._schedule_pipeline_retry(object_name)
        return ticket

    def submit_composite(self, updates: "dict[str, Any]") -> "Any":
        """Submit one all-or-nothing transaction across several objects.

        See :func:`repro.core.composite.submit_transaction`: child
        shards are locked in canonical order, every child update is
        validated against the locked agreed states (any rejection aborts
        the whole transaction before anything is proposed), and the
        accepted children are submitted to their pipelines under the
        held locks so no concurrent submission can interleave.
        """
        from repro.core.composite import submit_transaction

        return submit_transaction(self, updates)

    def gateway(self, **options: Any) -> "Any":
        """This node's client gateway, created on first use.

        *options* (``rate``, ``queue_capacity``, ``breaker``, ...)
        configure the :class:`~repro.gateway.gateway.Gateway` on
        creation and are ignored once it exists.
        """
        with self._lock:
            if self._gateway is None:
                from repro.gateway.gateway import Gateway

                self._gateway = Gateway(self, **options)
            return self._gateway

    def live(self, **options: Any) -> "Any":
        """This node's live telemetry plane, created on first use.

        *options* (``rules``, ``interval``, ``flight_capacity``,
        ``dump_path``) configure the
        :class:`~repro.obs.live.LiveTelemetry` bundle on creation and
        are ignored once it exists.  Requires the node's context to
        carry a recording instrumentation (an obs with a registry).
        """
        with self._lock:
            if self._live is None:
                from repro.obs.live import LiveTelemetry

                self._live = LiveTelemetry(self, **options)
            return self._live

    def health(self) -> str:
        """Aggregate node health (``healthy``/``degraded``/``unhealthy``).

        Driven by the live telemetry watchdog; a node without live
        telemetry reports ``healthy``.
        """
        with self._lock:
            live = self._live
        return live.health if live is not None else "healthy"

    def wait_for_pipeline(self, ticket: PipelineTicket,
                          timeout: "float | None" = None) -> bool:
        """Block until a pipeline ticket resolves (or *timeout* passes)."""
        timeout = timeout if timeout is not None else self.default_timeout
        return self.runtime.wait_until(lambda: ticket.done, timeout)

    def _schedule_pipeline_retry(self, object_name: str) -> None:
        """Arm a timer for the pipeline's next backoff wake-up, if any."""
        shard = self.shards.shard_for(object_name)
        pipe = shard.pipelines.get(object_name)
        if pipe is None:
            return
        with self._registry_lock:
            if object_name in self._pipeline_timers:
                return
        with shard.lock:
            delay = pipe.retry_delay()
        if delay is None:
            return

        def fire() -> None:
            with self._registry_lock:
                self._pipeline_timers.pop(object_name, None)
            if self._crashed:
                return
            with shard.lock:
                output = pipe.poll()
            self._process_output(output)
            self._schedule_pipeline_retry(object_name)

        handle = self.runtime.network.schedule(max(delay, 1e-9), fire)
        with self._registry_lock:
            if object_name in self._pipeline_timers:
                handle.cancel()
            else:
                self._pipeline_timers[object_name] = handle

    def propagate_connect(self, object_name: str, b2b_object: B2BObject,
                          sponsor: "str | None" = None,
                          mode: str = SYNCHRONOUS,
                          sponsor_mode: str = ROTATING,
                          via: "str | None" = None) -> CoordinationTicket:
        shard = self.shards.shard_for(object_name)
        with self._lock:
            with shard.lock:
                output = self.party.join_object(
                    object_name, sponsor,
                    certificate=self.certificate,
                    validator=ObjectValidatorAdapter(b2b_object),
                    merger=ObjectMergerAdapter(b2b_object),
                    sponsor_mode=sponsor_mode,
                    via=via,
                )
            self._join_objects[object_name] = b2b_object
            self._join_modes[object_name] = mode
            ticket = self._track(f"join:{object_name}", object_name, "connect")
        self._process_output(output)
        return ticket

    def propagate_disconnect(self, object_name: str) -> CoordinationTicket:
        self._await_quiescent(object_name)
        shard = self.shards.shard_for(object_name)
        with shard.lock:
            session = self.party.session(object_name)
            _digest, output = session.membership.request_disconnect()
            ticket = self._track(f"leave:{object_name}", object_name, "disconnect")
        self._process_output(output)
        return ticket

    def propagate_eviction(self, object_name: str,
                           subjects: "list[str]") -> CoordinationTicket:
        self._await_quiescent(object_name)
        shard = self.shards.shard_for(object_name)
        with shard.lock:
            session = self.party.session(object_name)
            _digest, output = session.membership.request_eviction(subjects)
            ticket = self._track(f"evict:{object_name}", object_name, "evict")
        self._process_output(output)
        return ticket

    # ------------------------------------------------------------------
    # validated read path (core/readcache.py)
    # ------------------------------------------------------------------

    def examine(self, object_name: str,
                read_mode: "ReadMode | str | None" = None) -> ReadResult:
        """Serve one examine-scoped read in an explicit consistency mode.

        ``settled`` (the default) quiesces like a classic examine scope;
        ``bounded(max_staleness)`` and ``cached`` serve the latest
        published snapshot lock-free without entering the coordination
        critical section.  Returns a
        :class:`~repro.core.readcache.ReadResult` whose ``state`` is an
        immutable validated snapshot — never a pre-applied or vetoed
        proposal's state.
        """
        return self.readcache.read(object_name, read_mode)

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------

    def wait_for_ticket(self, ticket: CoordinationTicket,
                        timeout: "float | None" = None) -> bool:
        timeout = timeout if timeout is not None else self.default_timeout
        return self.runtime.wait_until(lambda: ticket.done, timeout)

    def _await_quiescent(self, object_name: str) -> None:
        """Wait for the local replica to have no run in flight.

        A replica that accepted a proposal must see its ``m3`` before it
        can take part in another run; waiting here (outside the node
        lock, so inbound traffic keeps flowing) turns the engine's hard
        ConcurrencyError into the natural "wait your turn" behaviour an
        application expects.  If the run never settles (a misbehaving
        proposer), the subsequent propose still raises.
        """
        try:
            session = self.party.session(object_name)
        except NotConnectedError:
            return
        engine = session.state
        self.runtime.wait_until(
            lambda: not engine.busy and not engine.membership_change_active
            and not session.membership.busy,
            self.default_timeout,
        )

    # ------------------------------------------------------------------
    # fault-injection hooks (used by tests and benchmarks)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate a node crash: stop timers, drop volatile state.

        Durable state (evidence log, journal, checkpoints) survives in the
        context's stores; :meth:`recover` resumes protocol participation.
        """
        self._crashed = True
        self.readcache.invalidate(reason="crash")
        with self._registry_lock:
            for handle in self._pipeline_timers.values():
                handle.cancel()
            self._pipeline_timers.clear()
        self.endpoint.stop()
        network = self.runtime.network
        crash = getattr(network, "crash", None)
        if crash is not None:
            crash(self.party_id)

    def recover(self) -> None:
        """Recover from a crash and re-drive in-flight protocol runs."""
        network = self.runtime.network
        recover = getattr(network, "recover", None)
        if recover is not None:
            recover(self.party_id)
        self.endpoint.restart()
        self._crashed = False
        with self.shards.lock_all():
            output = self.party.resend_outstanding()
            # Republish from the recovered engines: anything published
            # before the crash is stale by definition.
            self.readcache.invalidate(reason="recovery")
            for object_name in list(self.controllers):
                try:
                    engine = self.party.session(object_name).state
                except NotConnectedError:
                    continue
                self.readcache.publish(object_name, engine.agreed_state,
                                       engine.agreed_sid.to_dict())
        self._process_output(output)

    def check_progress(self, timeout: "float | None" = None) -> "list[Event]":
        """Surface blocked runs (evidence for dispute resolution)."""
        timeout = timeout if timeout is not None else self.default_timeout
        with self.shards.lock_all():
            output = self.party.check_progress(timeout)
        self._process_output(output)
        return output.events

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _track(self, key: str, object_name: str, kind: str) -> CoordinationTicket:
        ticket = CoordinationTicket(key=key, object_name=object_name, kind=kind)
        with self._registry_lock:
            self._tickets[key] = ticket
        return ticket

    def _on_message(self, sender: str, payload: dict) -> None:
        if self._crashed:
            return
        shard = self.shards.shard_for(extract_object_name(payload))
        obs = self.ctx.obs
        if obs.enabled and self.shards.workers:
            obs.shard_dispatch(self.party_id, shard.index, shard.queue_depth)
        shard.submit(lambda: self._handle_on_shard(shard, sender, payload))

    def _handle_on_shard(self, shard: Any, sender: str,
                         payload: dict) -> None:
        """Run the protocol handler under one shard's lock.

        With shard workers on, this executes on the shard's thread —
        independent objects' m1/m2/m3 handling proceeds concurrently.
        The returned output is transmitted and dispatched *after* the
        shard lock is released (see :meth:`_dispatch_event`'s lock-order
        contract).
        """
        if self._crashed:
            return
        with shard.lock:
            output = self.party.handle(sender, payload)
        self._process_output(output)

    def _process_output(self, output: Output) -> None:
        # Never called while holding a shard lock: event dispatch takes
        # shard locks transiently and listener callbacks (the gateway)
        # take the node lock, so arriving here with one held would
        # invert the node -> shard order.
        for recipient, message in output.messages:
            if self.outbound_interceptor is not None:
                for actual_recipient, actual in self.outbound_interceptor(
                        recipient, message):
                    self.endpoint.send(actual_recipient, actual)
            else:
                self.endpoint.send(recipient, message)
        for event in output.events:
            self._dispatch_event(event)

    def _dispatch_event(self, event: Event) -> None:
        if isinstance(event, MisbehaviourEvent):
            with self._registry_lock:
                self.misbehaviour_reports.append(event)
        self._resolve_tickets(event)
        object_name = getattr(event, "object_name", None)
        if isinstance(event, ConnectionDecided) and event.accepted:
            with self._lock:
                self._finish_join(event)
        shard = self.shards.shard_for(object_name)
        if isinstance(event, (StateInstalled, StateRolledBack)):
            # Every settlement (a rollback re-settles on the prior agreed
            # state) publishes the validated snapshot the read path
            # serves; the shard lock serialises it with the engine.
            with shard.lock:
                self.readcache.publish(event.object_name, event.state,
                                       event.state_id)
        controller = self.controllers.get(object_name or "")
        if controller is not None:
            with shard.lock:
                controller.on_event(event)
        if object_name:
            with shard.lock:
                outputs = shard.pipelines.on_event(event, object_name)
            for pipeline_output in outputs:
                self._process_output(pipeline_output)
            if shard.pipelines.get(object_name) is not None:
                self._schedule_pipeline_retry(object_name)
            if (isinstance(event, RunCompleted) and event.kind == "state"
                    and self.ctx.obs.enabled):
                self.ctx.obs.shard_settled(self.party_id, shard.index,
                                           object_name, event.valid)
        for listener in self.listeners:
            listener(event)

    def _finish_join(self, event: ConnectionDecided) -> None:
        b2b_object = self._join_objects.pop(event.object_name, None)
        mode = self._join_modes.pop(event.object_name, SYNCHRONOUS)
        if b2b_object is None:
            return
        controller = B2BObjectController(
            self, event.object_name, b2b_object, mode=mode,
            timeout=self.default_timeout,
        )
        b2b_object.apply_state(event.state)
        self.controllers[event.object_name] = controller
        shard = self.shards.shard_for(event.object_name)
        with shard.lock:
            try:
                engine = self.party.session(event.object_name).state
            except NotConnectedError:
                return
            self.readcache.publish(event.object_name, engine.agreed_state,
                                   engine.agreed_sid.to_dict())

    def _resolve_tickets(self, event: Event) -> None:
        lookup = self._ticket_for
        if isinstance(event, RunCompleted):
            ticket = lookup(event.run_id)
            if ticket is not None and not ticket.done:
                ticket.resolve(event.valid, event.diagnostics, event)
            if event.kind == "evict":
                evict_ticket = lookup(f"evict:{event.object_name}")
                if evict_ticket is not None and not evict_ticket.done:
                    evict_ticket.resolve(event.valid, event.diagnostics, event)
        elif isinstance(event, MembershipChanged) and event.change == "evict":
            ticket = lookup(f"evict:{event.object_name}")
            if ticket is not None and not ticket.done:
                ticket.resolve(True, [], event)
        elif isinstance(event, ConnectionDecided):
            ticket = lookup(f"join:{event.object_name}")
            if ticket is not None and not ticket.done:
                ticket.resolve(event.accepted, event.diagnostics, event)
                if not event.accepted:
                    with self._lock:
                        self._join_objects.pop(event.object_name, None)
                        self._join_modes.pop(event.object_name, None)
        elif isinstance(event, DisconnectionDecided):
            ticket = lookup(f"leave:{event.object_name}")
            if ticket is not None and not ticket.done:
                ticket.resolve(True, [], event)

    def _ticket_for(self, key: str) -> "Optional[CoordinationTicket]":
        with self._registry_lock:
            return self._tickets.get(key)
