"""The organisation node: the B2BCoordinator of Figure 4.

One :class:`OrganisationNode` hosts everything Figure 3 places inside an
organisation's middleware boundary: the reliable communication endpoint,
the protocol engines (via :class:`~repro.protocol.party.ProtocolParty`),
certificate management, the non-repudiation log, check-pointing, and the
local propagation interface (``propagate_new_state`` / ``propagate_update``
/ ``propagate_connect`` / ``propagate_disconnect``) that insulates
controllers from protocol-specific detail.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.core.controller import (
    B2BObjectController,
    CoordinationTicket,
    ObjectMergerAdapter,
    ObjectValidatorAdapter,
)
from repro.core.modes import SYNCHRONOUS
from repro.core.object import B2BObject
from repro.core.runtime import Runtime, SimRuntime, ThreadedRuntime
from repro.errors import NotConnectedError, ProtocolBlocked
from repro.protocol.context import PartyContext
from repro.protocol.events import (
    ConnectionDecided,
    DisconnectionDecided,
    Event,
    MembershipChanged,
    MisbehaviourEvent,
    Output,
    RunCompleted,
)
from repro.protocol.group import ROTATING
from repro.protocol.membership import CertificateResolver
from repro.protocol.party import ProtocolParty
from repro.protocol.pipeline import PipelineTicket, ProposalPipeline
from repro.transport.base import TimerHandle
from repro.transport.reliable import ReliableEndpoint

EventListener = Callable[[Event], None]


class OrganisationNode:
    """One organisation's complete middleware instance."""

    def __init__(self, ctx: PartyContext, runtime: Runtime,
                 certificate_resolver: "CertificateResolver | None" = None,
                 certificate: "dict | None" = None,
                 retransmit_interval: float = 0.05,
                 default_timeout: "float | None" = None) -> None:
        self.ctx = ctx
        self.runtime = runtime
        self.certificate = certificate
        self.party = ProtocolParty(ctx, certificate_resolver=certificate_resolver)
        self.endpoint = ReliableEndpoint(
            ctx.party_id, runtime.network,
            retransmit_interval=retransmit_interval, obs=ctx.obs,
        )
        self.endpoint.on_message(self._on_message)
        self.controllers: "dict[str, B2BObjectController]" = {}
        self.listeners: "list[EventListener]" = []
        self.misbehaviour_reports: "list[MisbehaviourEvent]" = []
        if default_timeout is None:
            default_timeout = (SimRuntime.DEFAULT_TIMEOUT
                               if isinstance(runtime, SimRuntime)
                               else ThreadedRuntime.DEFAULT_TIMEOUT)
        self.default_timeout = default_timeout
        self._tickets: "dict[str, CoordinationTicket]" = {}
        self._pipelines: "dict[str, ProposalPipeline]" = {}
        self._pipeline_timers: "dict[str, TimerHandle]" = {}
        self._gateway: "Optional[Any]" = None
        self._live: "Optional[Any]" = None
        self._lock = threading.RLock()
        self._join_objects: "dict[str, B2BObject]" = {}
        self._join_modes: "dict[str, str]" = {}
        self._crashed = False
        # Fault-injection hook: maps one outbound (recipient, message) to a
        # replacement list (empty = suppress).  Used by repro.faults to
        # model misbehaving parties that alter or omit their own traffic.
        self.outbound_interceptor: "Optional[Callable[[str, dict], list[tuple[str, dict]]]]" = None

    @property
    def party_id(self) -> str:
        return self.ctx.party_id

    def add_listener(self, listener: EventListener) -> None:
        """Observe every protocol event this node surfaces."""
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------

    def register_object(self, object_name: str, b2b_object: B2BObject,
                        members: "list[str]",
                        mode: str = SYNCHRONOUS,
                        sponsor_mode: str = ROTATING,
                        reject_null_transitions: bool = True,
                        timeout: "float | None" = None,
                        engine_cls: "Optional[type]" = None) -> B2BObjectController:
        """Found a shared object (every founding member calls this)."""
        with self._lock:
            controller = B2BObjectController(
                self, object_name, b2b_object, mode=mode,
                timeout=timeout if timeout is not None else self.default_timeout,
            )
            extra: dict = {}
            if engine_cls is not None:
                extra["engine_cls"] = engine_cls
            self.party.create_object(
                object_name,
                members,
                b2b_object.get_state(),
                validator=ObjectValidatorAdapter(b2b_object),
                merger=ObjectMergerAdapter(b2b_object),
                sponsor_mode=sponsor_mode,
                reject_null_transitions=reject_null_transitions,
                **extra,
            )
            self.controllers[object_name] = controller
            return controller

    def restore_object(self, object_name: str, b2b_object: B2BObject,
                       mode: str = SYNCHRONOUS,
                       timeout: "float | None" = None,
                       engine_cls: "Optional[type]" = None) -> B2BObjectController:
        """Rebuild a shared object from durable state after a restart.

        Counterpart of :meth:`register_object` for a node whose process
        restarted: the agreed state and group view come from the
        checkpoint store and any in-flight protocol runs are resumed from
        the journal.  The application object receives the recovered
        agreed state via ``apply_state``.
        """
        with self._lock:
            controller = B2BObjectController(
                self, object_name, b2b_object, mode=mode,
                timeout=timeout if timeout is not None else self.default_timeout,
            )
            extra: dict = {}
            if engine_cls is not None:
                extra["engine_cls"] = engine_cls
            session, output = self.party.restore_object(
                object_name,
                validator=ObjectValidatorAdapter(b2b_object),
                merger=ObjectMergerAdapter(b2b_object),
                **extra,
            )
            b2b_object.apply_state(session.state.agreed_state)
            self.controllers[object_name] = controller
            self._process_output(output)
            return controller

    def connect(self, object_name: str, b2b_object: B2BObject,
                sponsor: "str | None" = None,
                mode: str = SYNCHRONOUS,
                sponsor_mode: str = ROTATING,
                timeout: "float | None" = None,
                via: "str | None" = None) -> B2BObjectController:
        """Join an existing shared object.

        Name the *sponsor* directly, or pass any known member as *via* to
        have the sponsor discovered (section 4.5.3).  Synchronous-mode
        semantics: blocks until admitted (returning the new controller)
        or raises on rejection/timeout.  For deferred or asynchronous
        use, call :meth:`propagate_connect` directly.
        """
        ticket = self.propagate_connect(object_name, b2b_object, sponsor,
                                        mode=mode, sponsor_mode=sponsor_mode,
                                        via=via)
        self.wait_for_ticket(ticket, timeout)
        if not ticket.done:
            raise ProtocolBlocked(
                f"connection to {object_name!r} did not complete"
            )
        if not ticket.valid:
            raise NotConnectedError(
                f"connection to {object_name!r} was rejected: {ticket.diagnostics}"
            )
        return self.controllers[object_name]

    # ------------------------------------------------------------------
    # B2BCoordinatorLocal propagation interface (section 5)
    # ------------------------------------------------------------------

    def propagate_new_state(self, object_name: str,
                            new_state: Any) -> CoordinationTicket:
        self._await_quiescent(object_name)
        with self._lock:
            session = self.party.session(object_name)
            run_id, output = session.state.propose_overwrite(new_state)
            ticket = self._track(run_id, object_name, "state")
            self._process_output(output)
            return ticket

    def propagate_update(self, object_name: str, update: Any) -> CoordinationTicket:
        self._await_quiescent(object_name)
        with self._lock:
            session = self.party.session(object_name)
            run_id, output = session.state.propose_update(update)
            ticket = self._track(run_id, object_name, "state")
            self._process_output(output)
            return ticket

    # ------------------------------------------------------------------
    # proposal pipeline (batched coordination rounds)
    # ------------------------------------------------------------------

    def pipeline(self, object_name: str, **options: Any) -> ProposalPipeline:
        """The write pipeline for *object_name*, created on first use.

        *options* (``max_batch``, ``max_busy_retries``, ...) configure the
        pipeline on creation and are ignored once it exists.
        """
        with self._lock:
            pipe = self._pipelines.get(object_name)
            if pipe is None:
                session = self.party.session(object_name)
                pipe = ProposalPipeline(session.state, **options)
                self._pipelines[object_name] = pipe
            return pipe

    def submit_update(self, object_name: str, update: Any) -> PipelineTicket:
        """Queue *update* through the proposal pipeline.

        Unlike :meth:`propagate_update` this never blocks and never
        raises for concurrency: while a run is in flight the update
        queues, and once the engine is free every queued update is
        coalesced into one batched proposal.  Benign busy vetoes retry
        automatically; the ticket resolves invalid only for genuine
        policy vetoes (or retry exhaustion).
        """
        with self._lock:
            pipe = self.pipeline(object_name)
            ticket, output = pipe.submit(update)
            self._process_output(output)
        self._schedule_pipeline_retry(object_name)
        return ticket

    def gateway(self, **options: Any) -> "Any":
        """This node's client gateway, created on first use.

        *options* (``rate``, ``queue_capacity``, ``breaker``, ...)
        configure the :class:`~repro.gateway.gateway.Gateway` on
        creation and are ignored once it exists.
        """
        with self._lock:
            if self._gateway is None:
                from repro.gateway.gateway import Gateway

                self._gateway = Gateway(self, **options)
            return self._gateway

    def live(self, **options: Any) -> "Any":
        """This node's live telemetry plane, created on first use.

        *options* (``rules``, ``interval``, ``flight_capacity``,
        ``dump_path``) configure the
        :class:`~repro.obs.live.LiveTelemetry` bundle on creation and
        are ignored once it exists.  Requires the node's context to
        carry a recording instrumentation (an obs with a registry).
        """
        with self._lock:
            if self._live is None:
                from repro.obs.live import LiveTelemetry

                self._live = LiveTelemetry(self, **options)
            return self._live

    def health(self) -> str:
        """Aggregate node health (``healthy``/``degraded``/``unhealthy``).

        Driven by the live telemetry watchdog; a node without live
        telemetry reports ``healthy``.
        """
        with self._lock:
            live = self._live
        return live.health if live is not None else "healthy"

    def wait_for_pipeline(self, ticket: PipelineTicket,
                          timeout: "float | None" = None) -> bool:
        """Block until a pipeline ticket resolves (or *timeout* passes)."""
        timeout = timeout if timeout is not None else self.default_timeout
        return self.runtime.wait_until(lambda: ticket.done, timeout)

    def _schedule_pipeline_retry(self, object_name: str) -> None:
        """Arm a timer for the pipeline's next backoff wake-up, if any."""
        with self._lock:
            pipe = self._pipelines.get(object_name)
            if pipe is None or object_name in self._pipeline_timers:
                return
            delay = pipe.retry_delay()
            if delay is None:
                return

            def fire() -> None:
                with self._lock:
                    self._pipeline_timers.pop(object_name, None)
                    if self._crashed:
                        return
                    self._process_output(pipe.poll())
                self._schedule_pipeline_retry(object_name)

            self._pipeline_timers[object_name] = self.runtime.network.schedule(
                max(delay, 1e-9), fire
            )

    def propagate_connect(self, object_name: str, b2b_object: B2BObject,
                          sponsor: "str | None" = None,
                          mode: str = SYNCHRONOUS,
                          sponsor_mode: str = ROTATING,
                          via: "str | None" = None) -> CoordinationTicket:
        with self._lock:
            output = self.party.join_object(
                object_name, sponsor,
                certificate=self.certificate,
                validator=ObjectValidatorAdapter(b2b_object),
                merger=ObjectMergerAdapter(b2b_object),
                sponsor_mode=sponsor_mode,
                via=via,
            )
            self._join_objects[object_name] = b2b_object
            self._join_modes[object_name] = mode
            ticket = self._track(f"join:{object_name}", object_name, "connect")
            self._process_output(output)
            return ticket

    def propagate_disconnect(self, object_name: str) -> CoordinationTicket:
        self._await_quiescent(object_name)
        with self._lock:
            session = self.party.session(object_name)
            _digest, output = session.membership.request_disconnect()
            ticket = self._track(f"leave:{object_name}", object_name, "disconnect")
            self._process_output(output)
            return ticket

    def propagate_eviction(self, object_name: str,
                           subjects: "list[str]") -> CoordinationTicket:
        self._await_quiescent(object_name)
        with self._lock:
            session = self.party.session(object_name)
            _digest, output = session.membership.request_eviction(subjects)
            ticket = self._track(f"evict:{object_name}", object_name, "evict")
            self._process_output(output)
            return ticket

    # ------------------------------------------------------------------
    # waiting
    # ------------------------------------------------------------------

    def wait_for_ticket(self, ticket: CoordinationTicket,
                        timeout: "float | None" = None) -> bool:
        timeout = timeout if timeout is not None else self.default_timeout
        return self.runtime.wait_until(lambda: ticket.done, timeout)

    def _await_quiescent(self, object_name: str) -> None:
        """Wait for the local replica to have no run in flight.

        A replica that accepted a proposal must see its ``m3`` before it
        can take part in another run; waiting here (outside the node
        lock, so inbound traffic keeps flowing) turns the engine's hard
        ConcurrencyError into the natural "wait your turn" behaviour an
        application expects.  If the run never settles (a misbehaving
        proposer), the subsequent propose still raises.
        """
        try:
            session = self.party.session(object_name)
        except NotConnectedError:
            return
        engine = session.state
        self.runtime.wait_until(
            lambda: not engine.busy and not engine.membership_change_active
            and not session.membership.busy,
            self.default_timeout,
        )

    # ------------------------------------------------------------------
    # fault-injection hooks (used by tests and benchmarks)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate a node crash: stop timers, drop volatile state.

        Durable state (evidence log, journal, checkpoints) survives in the
        context's stores; :meth:`recover` resumes protocol participation.
        """
        self._crashed = True
        with self._lock:
            for handle in self._pipeline_timers.values():
                handle.cancel()
            self._pipeline_timers.clear()
        self.endpoint.stop()
        network = self.runtime.network
        crash = getattr(network, "crash", None)
        if crash is not None:
            crash(self.party_id)

    def recover(self) -> None:
        """Recover from a crash and re-drive in-flight protocol runs."""
        network = self.runtime.network
        recover = getattr(network, "recover", None)
        if recover is not None:
            recover(self.party_id)
        self.endpoint.restart()
        self._crashed = False
        with self._lock:
            self._process_output(self.party.resend_outstanding())

    def check_progress(self, timeout: "float | None" = None) -> "list[Event]":
        """Surface blocked runs (evidence for dispute resolution)."""
        timeout = timeout if timeout is not None else self.default_timeout
        with self._lock:
            output = self.party.check_progress(timeout)
            self._process_output(output)
            return output.events

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _track(self, key: str, object_name: str, kind: str) -> CoordinationTicket:
        ticket = CoordinationTicket(key=key, object_name=object_name, kind=kind)
        self._tickets[key] = ticket
        return ticket

    def _on_message(self, sender: str, payload: dict) -> None:
        if self._crashed:
            return
        with self._lock:
            output = self.party.handle(sender, payload)
            self._process_output(output)

    def _process_output(self, output: Output) -> None:
        for recipient, message in output.messages:
            if self.outbound_interceptor is not None:
                for actual_recipient, actual in self.outbound_interceptor(
                        recipient, message):
                    self.endpoint.send(actual_recipient, actual)
            else:
                self.endpoint.send(recipient, message)
        for event in output.events:
            self._dispatch_event(event)

    def _dispatch_event(self, event: Event) -> None:
        if isinstance(event, MisbehaviourEvent):
            self.misbehaviour_reports.append(event)
        self._resolve_tickets(event)
        object_name = getattr(event, "object_name", None)
        if isinstance(event, ConnectionDecided) and event.accepted:
            self._finish_join(event)
        controller = self.controllers.get(object_name or "")
        if controller is not None:
            controller.on_event(event)
        pipe = self._pipelines.get(object_name or "")
        if pipe is not None:
            self._process_output(pipe.on_event(event))
            self._schedule_pipeline_retry(object_name or "")
        for listener in self.listeners:
            listener(event)

    def _finish_join(self, event: ConnectionDecided) -> None:
        b2b_object = self._join_objects.pop(event.object_name, None)
        mode = self._join_modes.pop(event.object_name, SYNCHRONOUS)
        if b2b_object is None:
            return
        controller = B2BObjectController(
            self, event.object_name, b2b_object, mode=mode,
            timeout=self.default_timeout,
        )
        b2b_object.apply_state(event.state)
        self.controllers[event.object_name] = controller

    def _resolve_tickets(self, event: Event) -> None:
        if isinstance(event, RunCompleted):
            ticket = self._tickets.get(event.run_id)
            if ticket is not None and not ticket.done:
                ticket.resolve(event.valid, event.diagnostics, event)
            if event.kind == "evict":
                evict_ticket = self._tickets.get(f"evict:{event.object_name}")
                if evict_ticket is not None and not evict_ticket.done:
                    evict_ticket.resolve(event.valid, event.diagnostics, event)
        elif isinstance(event, MembershipChanged) and event.change == "evict":
            ticket = self._tickets.get(f"evict:{event.object_name}")
            if ticket is not None and not ticket.done:
                ticket.resolve(True, [], event)
        elif isinstance(event, ConnectionDecided):
            ticket = self._tickets.get(f"join:{event.object_name}")
            if ticket is not None and not ticket.done:
                ticket.resolve(event.accepted, event.diagnostics, event)
                if not event.accepted:
                    self._join_objects.pop(event.object_name, None)
                    self._join_modes.pop(event.object_name, None)
        elif isinstance(event, DisconnectionDecided):
            ticket = self._tickets.get(f"leave:{event.object_name}")
            if ticket is not None and not ticket.done:
                ticket.resolve(True, [], event)
