"""The B2BObjects public API (Figure 4).

Typical usage::

    from repro.core import Community, DictB2BObject

    community = Community(["OrgA", "OrgB"])
    controllers = community.found_object(
        "order", {"OrgA": DictB2BObject(), "OrgB": DictB2BObject()}
    )
    controller = controllers["OrgA"]
    obj = controller.b2b_object
    controller.enter()
    controller.overwrite()
    obj.set_attribute("widget1", {"quantity": 2})
    controller.leave()          # coordinates; raises ValidationFailed on veto
"""

from repro.core.community import Community, two_party_community
from repro.core.composite import (
    CompositeB2BObject,
    CompositeTicket,
    submit_transaction,
)
from repro.core.controller import (
    B2BObjectController,
    CoordinationTicket,
    ObjectMergerAdapter,
    ObjectValidatorAdapter,
)
from repro.core.modes import (
    ALL_MODES,
    ASYNCHRONOUS,
    DEFERRED_SYNCHRONOUS,
    SYNCHRONOUS,
    validate_mode,
)
from repro.core.locks import (
    LockingController,
    LockManager,
    ReadersWriterLock,
    install_locking,
)
from repro.core.node import OrganisationNode
from repro.core.object import B2BObject, DictB2BObject
from repro.core.readcache import (
    ReadCache,
    ReadMode,
    ReadResult,
    Snapshot,
    bounded,
    cached,
    parse_read_mode,
    settled,
)
from repro.core.runtime import Runtime, SimRuntime, ThreadedRuntime
from repro.core.shards import (
    DepthBudget,
    Shard,
    ShardMap,
    ShardPipelineGroup,
    ShardScheduler,
)
from repro.core.wrapper import CoordinatedProxy, WrappedB2BObject, wrap_object

__all__ = [
    "Community",
    "two_party_community",
    "CompositeB2BObject",
    "CompositeTicket",
    "submit_transaction",
    "B2BObjectController",
    "CoordinationTicket",
    "ObjectMergerAdapter",
    "ObjectValidatorAdapter",
    "ALL_MODES",
    "ASYNCHRONOUS",
    "DEFERRED_SYNCHRONOUS",
    "SYNCHRONOUS",
    "validate_mode",
    "LockingController",
    "LockManager",
    "ReadersWriterLock",
    "install_locking",
    "OrganisationNode",
    "B2BObject",
    "DictB2BObject",
    "ReadCache",
    "ReadMode",
    "ReadResult",
    "Snapshot",
    "bounded",
    "cached",
    "parse_read_mode",
    "settled",
    "Runtime",
    "SimRuntime",
    "ThreadedRuntime",
    "DepthBudget",
    "Shard",
    "ShardMap",
    "ShardPipelineGroup",
    "ShardScheduler",
    "CoordinatedProxy",
    "WrappedB2BObject",
    "wrap_object",
]
