"""Deployment helper: build a complete multi-organisation community.

Wires everything the paper assumes exists around the protocol — a
certificate authority all parties trust, a time-stamping service, per-
organisation keys/certificates/stores, a network and one
:class:`~repro.core.node.OrganisationNode` per organisation — so that
examples, tests and benchmarks can start from "three organisations share
an order object" in a few lines.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controller import B2BObjectController
from repro.core.modes import SYNCHRONOUS
from repro.core.node import OrganisationNode
from repro.core.object import B2BObject
from repro.core.runtime import Runtime, SimRuntime
from repro.crypto.certificates import Certificate, CertificateAuthority, CertificateStore
from repro.crypto.prng import DeterministicRandomSource
from repro.crypto.signature import (
    InstrumentedSigner,
    InstrumentedVerifier,
    Verifier,
    generate_party_keypair,
)
from repro.crypto.timestamp import TimestampService
from repro.errors import ConfigurationError
from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.protocol.context import PartyContext
from repro.protocol.group import ROTATING
from repro.storage.checkpoint import CheckpointStore
from repro.storage.journal import MessageJournal
from repro.storage.log import NonRepudiationLog
from repro.util.clocks import Clock, SystemClock

DEFAULT_KEY_BITS = 512


class Community:
    """A set of organisations sharing a PKI, TSA and network."""

    def __init__(self, names: "list[str]",
                 runtime: "Runtime | None" = None,
                 seed: "int | str" = 0,
                 key_bits: int = DEFAULT_KEY_BITS,
                 retransmit_interval: float = 0.05,
                 clock: "Clock | None" = None,
                 storage_dir: "str | None" = None,
                 obs: "Instrumentation | None" = None,
                 num_shards: int = 1,
                 shard_workers: "bool | None" = None,
                 shard_run_slots: "int | None" = None,
                 shard_max_depth: "int | None" = None) -> None:
        if len(set(names)) != len(names):
            raise ConfigurationError("organisation names must be unique")
        self.obs = obs if obs is not None else NULL_INSTRUMENTATION
        self.runtime = runtime if runtime is not None else SimRuntime(seed=seed)
        if clock is not None:
            self.clock = clock
        elif isinstance(self.runtime, SimRuntime):
            # Share the simulation's virtual clock so evidence timestamps
            # line up with simulated time.
            self.clock = _SimNetworkClock(self.runtime)
        else:
            self.clock = SystemClock()
        # A flight recorder attached before the community existed (the
        # CLI builds RecordingInstrumentation(flight=...) up front) has
        # no clock yet; bind it to the community clock so simulated runs
        # dump virtual timestamps, never a wall-clock/virtual mix.
        flight = getattr(self.obs, "flight", None)
        if flight is not None and hasattr(flight, "bind_clock"):
            flight.bind_clock(self.clock)
        # Every node runs the same shard topology so composite
        # transactions and tests can reason about placement globally.
        self._shard_options = {
            "num_shards": num_shards,
            "shard_workers": shard_workers,
            "shard_run_slots": shard_run_slots,
            "shard_max_depth": shard_max_depth,
        }
        self._rng = DeterministicRandomSource(f"community:{seed}")
        self._key_bits = key_bits
        self.ca = CertificateAuthority(
            "CA", clock=self.clock,
            keypair=self._keypair("CA", self._rng.fork("CA")),
        )
        self.tsa = TimestampService(
            "TSA", clock=self.clock,
            keypair=self._keypair("TSA", self._rng.fork("TSA")),
        )
        self.nodes: "dict[str, OrganisationNode]" = {}
        self.certificates: "dict[str, Certificate]" = {}
        self._stores: "dict[str, CertificateStore]" = {}
        self._retransmit_interval = retransmit_interval
        # When set, every organisation's evidence log, journal and
        # checkpoints live in crash-safe files under
        # ``storage_dir/<org>/`` — the durable-deployment configuration
        # the restart machinery (restart_node / restore_object) expects.
        self.storage_dir = storage_dir
        for name in names:
            self.add_organisation(name)

    # ------------------------------------------------------------------
    # membership of the community (PKI level, not object level)
    # ------------------------------------------------------------------

    def add_organisation(self, name: str) -> OrganisationNode:
        """Enrol an organisation: keys, certificate, store, node."""
        if name in self.nodes:
            raise ConfigurationError(f"organisation {name!r} already exists")
        keypair = self._keypair(name, self._rng.fork(f"key:{name}"))
        certificate = self.ca.issue(name, keypair.public_key)
        self.certificates[name] = certificate

        store = CertificateStore(clock=self.clock)
        store.trust_authority(self.ca.name, self.ca.verifier)
        # Founding certificates are pre-distributed; late joiners carry
        # theirs in the connection request.
        for cert in self.certificates.values():
            store.add_certificate(cert)
        for other_store in self._stores.values():
            other_store.add_certificate(certificate)
        self._stores[name] = store

        signer = keypair.signer()
        resolver = store.verifier_for
        if self.obs.enabled:
            signer = InstrumentedSigner(signer, self.obs)

            def resolver(party_id: str,
                         _store: CertificateStore = store) -> Verifier:
                return InstrumentedVerifier(_store.verifier_for(party_id),
                                            self.obs)

        ctx = PartyContext(
            party_id=name,
            signer=signer,
            resolver=resolver,
            tsa=self.tsa,
            rng=self._rng.fork(f"rng:{name}"),
            clock=self.clock,
            evidence=NonRepudiationLog(name, self._record_store(name, "evidence"),
                                       obs=self.obs),
            journal=MessageJournal(name, self._record_store(name, "journal"),
                                   obs=self.obs),
            checkpoints=CheckpointStore(self._record_store(name, "checkpoints")),
            obs=self.obs,
        )

        def certificate_resolver(party_id: str,
                                 cert_dict: "dict | None",
                                 _store: CertificateStore = store) -> Verifier:
            if cert_dict is not None:
                certificate = Certificate.from_dict(cert_dict)
                if certificate.subject != party_id:
                    raise ConfigurationError(
                        f"certificate subject {certificate.subject!r} != {party_id!r}"
                    )
                _store.add_certificate(certificate)
            verifier = _store.verifier_for(party_id)
            if self.obs.enabled:
                verifier = InstrumentedVerifier(verifier, self.obs)
            return verifier

        node = OrganisationNode(
            ctx, self.runtime,
            certificate_resolver=certificate_resolver,
            certificate=certificate.to_dict(),
            retransmit_interval=self._retransmit_interval,
            **self._shard_options,
        )
        self.nodes[name] = node
        return node

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    def node(self, name: str) -> OrganisationNode:
        return self.nodes[name]

    def names(self) -> "list[str]":
        return list(self.nodes)

    def resolver(self, party_id: str) -> Verifier:
        """Community-wide verifier lookup (used by arbiters in tests)."""
        certificate = self.certificates.get(party_id)
        if certificate is None:
            raise ConfigurationError(f"unknown party {party_id!r}")
        return certificate.verifier()

    def public_keys(self) -> dict:
        """All public keys in the ``verify-bundle``/``audit`` keys format.

        Written to a ``keys.json`` next to exported evidence, this is
        everything an offline auditor needs to re-verify signatures.
        """
        return {
            "parties": {name: dict(cert.public_key)
                        for name, cert in self.certificates.items()},
            "tsa": self.tsa.public_key,
        }

    # ------------------------------------------------------------------
    # object founding
    # ------------------------------------------------------------------

    def found_object(self, object_name: str,
                     objects: "dict[str, B2BObject]",
                     mode: str = SYNCHRONOUS,
                     sponsor_mode: str = ROTATING,
                     reject_null_transitions: bool = True,
                     engine_cls: "Optional[type]" = None
                     ) -> "dict[str, B2BObjectController]":
        """Found a shared object among the given organisations.

        *objects* maps each founding organisation to its local B2BObject
        replica; all replicas must report identical initial state.
        """
        members = list(objects)
        states = {name: obj.get_state() for name, obj in objects.items()}
        reference = states[members[0]]
        for name, state in states.items():
            if state != reference:
                raise ConfigurationError(
                    f"founding replicas disagree on initial state ({name!r})"
                )
        controllers = {}
        for name, obj in objects.items():
            controllers[name] = self.nodes[name].register_object(
                object_name, obj, members, mode=mode,
                sponsor_mode=sponsor_mode,
                reject_null_transitions=reject_null_transitions,
                engine_cls=engine_cls,
            )
        return controllers

    def examine(self, name: str, object_name: str,
                read_mode=None):
        """One organisation's validated read of a shared object.

        Convenience for ``community.node(name).examine(...)`` — returns
        a :class:`~repro.core.readcache.ReadResult`.
        """
        return self.nodes[name].examine(object_name, read_mode)

    def _keypair(self, name: str, rng):
        """Generate a key pair, timing it only when observability is on.

        Timing wraps the call rather than forwarding an ``obs`` keyword so
        test/benchmark fixtures may monkeypatch
        :func:`generate_party_keypair` with simpler signatures.
        """
        if not self.obs.enabled:
            return generate_party_keypair(name, bits=self._key_bits, rng=rng)
        import time

        started = time.perf_counter()
        keypair = generate_party_keypair(name, bits=self._key_bits, rng=rng)
        self.obs.keygen_timing(self._key_bits, 1, time.perf_counter() - started)
        return keypair

    def _record_store(self, name: str, kind: str):
        """Store backend for one organisation's durable records."""
        if self.storage_dir is None:
            return None  # context defaults to in-memory stores
        import os

        from repro.storage.backends import FileRecordStore

        return FileRecordStore(
            os.path.join(self.storage_dir, name, f"{kind}.jsonl")
        )

    def restart_node(self, name: str) -> OrganisationNode:
        """Simulate a full process restart of one organisation.

        The old node's endpoint is stopped and a fresh node is built over
        the *same* durable context (evidence log, journal, checkpoints,
        keys).  The caller then re-registers each shared object with
        :meth:`OrganisationNode.restore_object`, which resumes in-flight
        runs from the journal.
        """
        old = self.nodes.get(name)
        if old is None:
            raise ConfigurationError(f"unknown organisation {name!r}")
        old.endpoint.stop()
        old.shards.stop()
        node = OrganisationNode(
            old.ctx, self.runtime,
            certificate_resolver=old.party.certificate_resolver,
            certificate=old.certificate,
            retransmit_interval=self._retransmit_interval,
            **self._shard_options,
        )
        self.nodes[name] = node
        return node

    def settle(self, duration: "float | None" = None) -> None:
        self.runtime.settle(duration)

    def close(self) -> None:
        for node in self.nodes.values():
            node.shards.stop()
        self.runtime.close()


class _SimNetworkClock(Clock):
    """Clock view over a simulation runtime's virtual time."""

    def __init__(self, runtime: SimRuntime) -> None:
        self._runtime = runtime

    def now(self) -> float:
        return self._runtime.network.now()


def two_party_community(org_a: str = "OrgA", org_b: str = "OrgB",
                        seed: "int | str" = 0) -> Community:
    """The paper's most common configuration: two organisations."""
    return Community([org_a, org_b], seed=seed)
