"""Validated read-path cache: serve ``examine()`` without coordinating.

The paper's access-scoping model (section 5) makes every read scope wait
for in-flight coordination to settle (``Controller.enter`` →
``OrganisationNode._await_quiescent``), so read-heavy workloads pay
coordination-round prices even though *agreed* state only changes at
settlement boundaries.  This module is the read-side complement of the
shard scheduler: every settlement publishes an immutable
:class:`Snapshot` — ``(state, version, settle_seq, stamp)`` — under the
owning shard's engine lock, and read scopes pick a snapshot **lock-free**
according to an explicit consistency mode:

* :func:`settled` — today's default semantics: quiesce, refresh the
  snapshot from the engine's agreed state, serve that.  The read
  reflects every settlement this replica has installed and never races
  an in-flight run.
* :func:`bounded` — serve the cached snapshot if it was published within
  ``max_staleness`` seconds; otherwise refresh first.  ``bounded(0)``
  degenerates to :func:`settled` (a cached snapshot is always at least a
  clock tick old).
* :func:`cached` — always serve the latest published snapshot, with no
  waiting and no locks; staleness is whatever the write rate makes it.

Whatever the mode, a served snapshot is **validated**: it is a frozen
copy of a state that passed the full non-repudiable coordination round
(invariants 1–3, unanimous signed acceptance) — a vetoed or still
in-flight proposal's pre-applied state is never published, so no cached
read can observe it.  The cache trades *freshness*, never *validity*.

Concurrency contract: publications for one object are serialised by its
shard lock and carry a monotonically non-decreasing ``version`` (the
agreed ``T.seq``), so concurrent readers — which read one attribute of
one cell, an atomic operation — observe non-decreasing versions.
Invalidations (crash, recovery, restart) empty the cell; the next read
of any mode counts a miss and refreshes from the recovered engine.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.util.encoding import canonical_bytes, from_canonical_bytes

#: Consistency-mode kinds (see the module docstring for the contract).
SETTLED = "settled"
BOUNDED = "bounded"
CACHED = "cached"


@dataclass(frozen=True)
class ReadMode:
    """An explicit consistency mode for one ``examine`` read.

    Construct via :func:`settled`, :func:`bounded` or :func:`cached`
    (or pass the strings ``"settled"`` / ``"cached"`` anywhere a mode is
    accepted).  ``max_staleness`` is only meaningful for ``bounded``.
    """

    kind: str
    max_staleness: "Optional[float]" = None

    def describe(self) -> str:
        if self.kind == BOUNDED:
            return f"bounded({self.max_staleness:g}s)"
        return self.kind


def settled() -> ReadMode:
    """Quiesce-then-read: the seed semantics, now with a snapshot."""
    return ReadMode(SETTLED)


def cached() -> ReadMode:
    """Always serve the latest published snapshot, lock-free."""
    return ReadMode(CACHED)


def bounded(max_staleness: float) -> ReadMode:
    """Serve the cached snapshot if published within *max_staleness* s."""
    max_staleness = float(max_staleness)
    if max_staleness < 0:
        raise ConfigurationError("max_staleness must be >= 0 seconds")
    return ReadMode(BOUNDED, max_staleness)


def parse_read_mode(value: "ReadMode | str | None") -> ReadMode:
    """Normalise a user-supplied mode; ``None`` means :func:`settled`."""
    if value is None:
        return ReadMode(SETTLED)
    if isinstance(value, ReadMode):
        if value.kind == BOUNDED and value.max_staleness is None:
            raise ConfigurationError("bounded mode requires max_staleness")
        if value.kind not in (SETTLED, BOUNDED, CACHED):
            raise ConfigurationError(f"unknown read mode {value.kind!r}")
        return value
    if isinstance(value, str):
        if value in (SETTLED, CACHED):
            return ReadMode(value)
        raise ConfigurationError(
            f"unknown read mode {value!r} (use 'settled', 'cached', or "
            f"bounded(max_staleness))"
        )
    raise ConfigurationError(f"not a read mode: {value!r}")


@dataclass(frozen=True)
class Snapshot:
    """One immutable published view of an object's agreed state.

    ``version`` is the agreed state identifier's sequence number — it
    increases with every settled change and never decreases across
    publications.  ``settle_seq`` is this node's monotonic publication
    counter for the object (settlements *and* explicit refreshes bump
    it; it restarts with the process).  ``stamp`` is the publication
    time on the community clock: the moment the state was last known
    agreed at this replica, which is what staleness bounds measure.
    """

    object_name: str
    state: Any
    version: int
    state_id: dict
    settle_seq: int
    stamp: float


@dataclass(frozen=True)
class ReadResult:
    """One served read: the snapshot plus how it was served.

    ``hit`` is True when the read was answered from the published
    snapshot without a refresh; ``staleness`` is how many seconds behind
    its publication the snapshot was at serve time (0.0 for a refresh).
    """

    snapshot: Snapshot
    mode: ReadMode
    hit: bool
    staleness: float

    @property
    def state(self) -> Any:
        # Each access hands out a private copy: the cached snapshot is
        # shared by every concurrent reader, so a caller mutating its
        # result must not corrupt what other readers are served.
        return _freeze(self.snapshot.state)

    @property
    def version(self) -> int:
        return self.snapshot.version


class _Cell:
    """Mutable holder for one object's latest snapshot.

    Readers do ``cell.snapshot`` — a single attribute load of an
    immutable object, atomic under CPython — so the read path takes no
    lock.  Writers replace the whole snapshot under the shard lock.
    """

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: "Optional[Snapshot]" = None


def _freeze(value: Any) -> Any:
    """Private deep copy via the canonical encoding (like engine states)."""
    return from_canonical_bytes(canonical_bytes(value))


class ReadCache:
    """Per-node registry of validated snapshots, one cell per object."""

    def __init__(self, node: Any) -> None:
        self._node = node
        self._cells: "dict[str, _Cell]" = {}
        # Guards cell *creation* only; snapshot swaps are serialised by
        # the owning shard's lock and snapshot reads are lock-free.
        self._cells_lock = threading.Lock()

    # ------------------------------------------------------------------
    # publication (called under the owning shard's lock)
    # ------------------------------------------------------------------

    def publish(self, object_name: str, state: Any,
                state_id: dict) -> Snapshot:
        """Publish a settled state as the object's latest snapshot.

        Callers hold the object's shard lock (settlement dispatch,
        registration, recovery all do), so publications for one object
        are serialised.  A publication whose version is *lower* than the
        current snapshot's is ignored — a late event replayed after a
        recovery republish must not roll the visible version back.
        """
        cell = self._cell(object_name)
        version = int(state_id["seq"])
        current = cell.snapshot
        if current is not None and version < current.version:
            return current
        snapshot = Snapshot(
            object_name=object_name,
            state=_freeze(state),
            version=version,
            state_id=dict(state_id),
            settle_seq=(current.settle_seq + 1) if current is not None else 1,
            stamp=self._node.ctx.clock.now(),
        )
        cell.snapshot = snapshot
        obs = self._node.ctx.obs
        if obs.enabled:
            obs.snapshot_published(self._node.party_id, object_name,
                                  snapshot.version, snapshot.settle_seq)
        return snapshot

    def invalidate(self, object_name: "Optional[str]" = None,
                   reason: str = "recovery") -> None:
        """Drop published snapshots (all objects when *object_name* is None).

        The next read of any mode misses and refreshes from the engine's
        (recovered) agreed state — a crash or restart must never let a
        pre-crash snapshot masquerade as current.
        """
        with self._cells_lock:
            cells = ([self._cells[object_name]]
                     if object_name is not None and object_name in self._cells
                     else list(self._cells.values())
                     if object_name is None else [])
        obs = self._node.ctx.obs
        for cell in cells:
            snapshot = cell.snapshot
            cell.snapshot = None
            if snapshot is not None and obs.enabled:
                obs.snapshot_invalidated(self._node.party_id,
                                        snapshot.object_name, reason)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def latest(self, object_name: str) -> "Optional[Snapshot]":
        """The latest published snapshot, lock-free (None when empty)."""
        cell = self._cells.get(object_name)
        return cell.snapshot if cell is not None else None

    def read(self, object_name: str,
             mode: "ReadMode | str | None" = None) -> ReadResult:
        """Serve one validated read in the given consistency mode."""
        mode = parse_read_mode(mode)
        obs = self._node.ctx.obs
        if mode.kind != SETTLED:
            snapshot = self.latest(object_name)
            if snapshot is not None:
                staleness = self._node.ctx.clock.now() - snapshot.stamp
                if (mode.kind == CACHED
                        or staleness <= mode.max_staleness):
                    if obs.enabled:
                        obs.read_served(self._node.party_id, object_name,
                                        mode.kind, True, max(0.0, staleness))
                    return ReadResult(snapshot, mode, True,
                                      max(0.0, staleness))
        snapshot = self.refresh(object_name)
        if obs.enabled:
            obs.read_served(self._node.party_id, object_name, mode.kind,
                            False, 0.0)
        return ReadResult(snapshot, mode, False, 0.0)

    def refresh(self, object_name: str) -> Snapshot:
        """Quiesce, then republish the engine's agreed state.

        This is the settled path (and the miss/stale fallback): wait for
        in-flight coordination at this replica to settle, then publish a
        fresh snapshot of the agreed state under the shard lock.  The
        refreshed ``stamp`` records that the state was verified current
        at this moment, which is what a later ``bounded`` read measures
        against.
        """
        node = self._node
        node._await_quiescent(object_name)
        shard = node.shards.shard_for(object_name)
        with shard.lock:
            engine = node.party.session(object_name).state
            return self.publish(object_name, engine.agreed_state,
                                engine.agreed_sid.to_dict())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _cell(self, object_name: str) -> _Cell:
        cell = self._cells.get(object_name)
        if cell is None:
            with self._cells_lock:
                cell = self._cells.setdefault(object_name, _Cell())
        return cell
