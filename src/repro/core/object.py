"""The B2BObject interface (Figure 4).

The application programmer implements :class:`B2BObject` — either by
writing a new object that combines application logic with the interface,
by extending an existing object, or by wrapping one (see
:mod:`repro.core.wrapper`).  The middleware calls back into the object
for state capture (``get_state``/``get_update``), state installation
(``apply_state``/``apply_update``), application-specific validation
(``validate_*``) and asynchronous completion (``coord_callback``).

States and updates must be canonically encodable (dicts/lists/str/int/
bytes/bool/None) so they can be hashed, signed and transferred.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.protocol.validation import Decision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import B2BObjectController


class B2BObject:
    """Application-side interface to a shared object."""

    def __init__(self) -> None:
        self._controller: "Optional[B2BObjectController]" = None

    # -- wiring ---------------------------------------------------------

    def set_controller(self, controller: "B2BObjectController") -> None:
        """Called by the middleware when the object is registered."""
        self._controller = controller

    @property
    def controller(self) -> "B2BObjectController":
        if self._controller is None:
            raise RuntimeError("object is not registered with a controller")
        return self._controller

    # -- state capture and installation ---------------------------------

    def get_state(self) -> Any:
        """Return a canonical-encodable snapshot of the object state."""
        raise NotImplementedError

    def apply_state(self, state: Any) -> None:
        """Install a validated (or rolled-back) state on this replica."""
        raise NotImplementedError

    def get_update(self) -> Any:
        """Return the pending update for update-mode coordination.

        Called at the final ``leave`` of an ``update``-scoped access.  The
        default derives a key-level diff for dict-shaped states; objects
        with richer state models override this.
        """
        raise NotImplementedError(
            "get_update must be implemented for update-mode coordination"
        )

    def apply_update(self, update: Any) -> None:
        """Apply a validated update to this replica (default: merge)."""
        self.apply_state(self.merge_update(self.get_state(), update))

    def merge_update(self, state: Any, update: Any) -> Any:
        """Pure computation of ``state after update`` (section 4.3.1).

        Recipients use this to verify that an agreed update produces the
        proposer's claimed new state, so it must be deterministic and
        side-effect free.  The default merges dict updates into dict
        states.
        """
        if isinstance(state, dict) and isinstance(update, dict):
            merged = dict(state)
            merged.update(update)
            return merged
        raise TypeError("default merge_update requires dict states and updates")

    # -- validation upcalls ----------------------------------------------

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        """Local policy decision on a proposed state overwrite."""
        return Decision.accept()

    def validate_update(self, update: Any, resulting: Any, current: Any,
                        proposer: str) -> Decision:
        """Local policy decision on a proposed update (defaults to
        validating the resulting state)."""
        return self.validate_state(resulting, current, proposer)

    def validate_connect(self, subject: str, members: "list[str]") -> Decision:
        """Local policy decision on admitting *subject*."""
        return Decision.accept()

    def validate_disconnect(self, subject: str, voluntary: bool,
                            proposer: str) -> Decision:
        """Local policy decision on a departure/eviction."""
        return Decision.accept()

    # -- notifications ----------------------------------------------------

    def coord_callback(self, event: Any) -> None:
        """Progress/completion notification (asynchronous mode)."""


class DictB2BObject(B2BObject):
    """A ready-made B2BObject whose state is a flat dictionary.

    Mirrors the get/setAttribute example of section 5: convenient for
    tests, examples and simple applications.
    """

    def __init__(self, initial: "dict | None" = None) -> None:
        super().__init__()
        self._attributes: dict = dict(initial or {})
        self._dirty: dict = {}

    def get_state(self) -> dict:
        return dict(self._attributes)

    def apply_state(self, state: Any) -> None:
        if not isinstance(state, dict):
            raise TypeError("DictB2BObject state must be a dict")
        self._attributes = dict(state)
        self._dirty = {}

    def get_update(self) -> dict:
        return dict(self._dirty)

    def set_attribute(self, name: str, value: Any) -> None:
        self._attributes[name] = value
        self._dirty[name] = value

    def get_attribute(self, name: str, default: Any = None) -> Any:
        return self._attributes.get(name, default)

    def attributes(self) -> dict:
        return dict(self._attributes)
