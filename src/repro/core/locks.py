"""Local concurrency control over shared objects (section 5).

"Together with enter and leave, the three access type indication
operations (examine, overwrite and update) can be used as hooks for
concurrency control mechanisms and transactional access to objects."

:class:`LockManager` is such a mechanism: a per-object readers/writer
lock driven exactly by those hooks.  Attach one to a controller with
:func:`install_locking` and concurrent application threads (the TCP
runtime) serialise correctly — examine scopes share the object, writing
scopes are exclusive.  Locks are *local* to one organisation: cross-
organisation serialisation is already provided by the coordination
protocol's run-at-a-time rule.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.controller import B2BObjectController
from repro.errors import ConcurrencyError


class ReadersWriterLock:
    """A fair-ish readers/writer lock (writers block new readers)."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer: "Optional[int]" = None
        self._writers_waiting = 0

    def acquire_read(self, timeout: "float | None" = None) -> None:
        with self._condition:
            ok = self._condition.wait_for(
                lambda: self._writer is None and self._writers_waiting == 0,
                timeout=timeout,
            )
            if not ok:
                raise ConcurrencyError("timed out waiting for a read lock")
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise ConcurrencyError("release_read without a read lock")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self, timeout: "float | None" = None) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                raise ConcurrencyError("write lock is not re-entrant")
            self._writers_waiting += 1
            try:
                ok = self._condition.wait_for(
                    lambda: self._writer is None and self._readers == 0,
                    timeout=timeout,
                )
                if not ok:
                    raise ConcurrencyError("timed out waiting for a write lock")
                self._writer = me
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._condition:
            if self._writer != threading.get_ident():
                raise ConcurrencyError("release_write by a non-holder")
            self._writer = None
            self._condition.notify_all()

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_held(self) -> bool:
        return self._writer is not None


class LockManager:
    """Per-object lock registry shared by an organisation's threads."""

    def __init__(self, timeout: "float | None" = 30.0) -> None:
        self.timeout = timeout
        self._locks: "dict[str, ReadersWriterLock]" = {}
        self._registry_lock = threading.Lock()

    def lock_for(self, object_name: str) -> ReadersWriterLock:
        with self._registry_lock:
            lock = self._locks.get(object_name)
            if lock is None:
                lock = ReadersWriterLock()
                self._locks[object_name] = lock
            return lock


class LockingController(B2BObjectController):
    """A controller whose scopes take local read/write locks.

    The outermost ``enter`` takes a read lock (scopes default to
    examine); the first ``overwrite``/``update`` indication upgrades it
    to a write lock; the outermost ``leave`` releases whatever is held
    *after* coordination completes, so a writing scope holds the object
    exclusively through agreement.
    """

    def __init__(self, *args, lock_manager: "LockManager | None" = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.lock_manager = lock_manager or LockManager()
        self._held: "Optional[str]" = None  # None | "read" | "write"

    def enter(self) -> None:
        if self._depth == 0:
            lock = self.lock_manager.lock_for(self.object_name)
            lock.acquire_read(self.lock_manager.timeout)
            self._held = "read"
        super().enter()

    def _upgrade_to_write(self) -> None:
        if self._held == "write":
            return
        lock = self.lock_manager.lock_for(self.object_name)
        if self._held == "read":
            lock.release_read()
            self._held = None
        lock.acquire_write(self.lock_manager.timeout)
        self._held = "write"

    def overwrite(self) -> None:
        self._require_scope()
        self._upgrade_to_write()
        super().overwrite()

    def update(self) -> None:
        self._require_scope()
        self._upgrade_to_write()
        super().update()

    def leave(self):
        outermost = self._depth == 1
        try:
            return super().leave()
        finally:
            if outermost and self._held is not None:
                lock = self.lock_manager.lock_for(self.object_name)
                if self._held == "read":
                    lock.release_read()
                else:
                    lock.release_write()
                self._held = None


def install_locking(node, object_name: str, b2b_object, *,
                    lock_manager: "LockManager | None" = None,
                    **controller_kwargs) -> LockingController:
    """Replace an object's controller with a locking one.

    Convenience for deployments that registered the object first and want
    to add local concurrency control afterwards.
    """
    controller = LockingController(
        node, object_name, b2b_object,
        lock_manager=lock_manager, **controller_kwargs,
    )
    node.controllers[object_name] = controller
    return controller
