"""Automatic B2BObject wrappers (Figure 3 / section 5).

The paper notes: "Given knowledge of an application object's state access
operations, the wrapper methods of a B2BObjectImpl class could be
generated automatically."  :func:`wrap_object` does exactly that — it
returns a proxy whose read methods run inside ``enter/examine/leave``
scopes and whose write methods run inside ``enter/overwrite/leave`` (or
``enter/update/leave``) scopes, so an existing enterprise object becomes
an inter-organisation object with no change to its call sites.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.controller import B2BObjectController
from repro.core.object import B2BObject
from repro.core.readcache import SETTLED, ReadMode, parse_read_mode
from repro.errors import ConfigurationError
from repro.protocol.validation import Decision


class WrappedB2BObject(B2BObject):
    """Adapts a plain application object to the B2BObject interface.

    The application object must expose ``get_state()``/``apply_state()``
    (or be given explicit accessor callables); validation rules can be
    attached as callables without modifying the object.
    """

    def __init__(self, app_object: Any,
                 get_state: "Callable[[], Any] | None" = None,
                 apply_state: "Callable[[Any], None] | None" = None,
                 validate_state: "Callable[[Any, Any, str], Decision] | None" = None) -> None:
        super().__init__()
        self.app_object = app_object
        self._get_state = get_state or getattr(app_object, "get_state", None)
        self._apply_state = apply_state or getattr(app_object, "apply_state", None)
        if self._get_state is None or self._apply_state is None:
            raise ConfigurationError(
                "wrapped object needs get_state/apply_state accessors"
            )
        self._validate_state = validate_state

    def get_state(self) -> Any:
        return self._get_state()

    def apply_state(self, state: Any) -> None:
        self._apply_state(state)

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        if self._validate_state is None:
            return Decision.accept()
        return self._validate_state(proposed, current, proposer)


class CoordinatedProxy:
    """Method-level proxy that scopes calls through a controller.

    Mirrors the paper's generated ``setAttribute``/``getAttribute``
    wrappers: write methods trigger state coordination at ``leave``; read
    methods are examine-scoped and never coordinate.

    With a non-``settled`` *read_mode* (``cached`` or
    ``bounded(max_staleness)``) read methods bypass the scope machinery
    entirely: each call fetches a validated snapshot from the read cache
    (:mod:`repro.core.readcache`), applies it to *read_replica* — a
    private instance of the application class, required in that
    configuration — and runs the method there, so reads never block on
    in-flight coordination and never observe the live object's
    uncommitted writes.
    """

    def __init__(self, app_object: Any, controller: B2BObjectController,
                 write_methods: "Iterable[str]" = (),
                 read_methods: "Iterable[str]" = (),
                 update_methods: "Iterable[str]" = (),
                 read_mode: "ReadMode | str | None" = None,
                 read_replica: Any = None) -> None:
        self._app_object = app_object
        self._controller = controller
        self._read_mode = parse_read_mode(read_mode)
        self._read_replica = read_replica
        if self._read_mode.kind != SETTLED:
            if read_replica is None:
                raise ConfigurationError(
                    "cached/bounded read_mode needs a read_replica to "
                    "apply snapshots to"
                )
            if not callable(getattr(read_replica, "apply_state", None)):
                raise ConfigurationError(
                    "read_replica must expose apply_state(state)"
                )
        self._write_methods = set(write_methods)
        self._read_methods = set(read_methods)
        self._update_methods = set(update_methods)
        overlap = self._write_methods & self._update_methods
        if overlap:
            raise ConfigurationError(
                f"methods cannot be both write and update: {sorted(overlap)}"
            )
        for name in (self._write_methods | self._read_methods
                     | self._update_methods):
            if not callable(getattr(app_object, name, None)):
                raise ConfigurationError(
                    f"{type(app_object).__name__} has no callable {name!r}"
                )

    def __getattr__(self, name: str) -> Any:
        target = getattr(self._app_object, name)
        if name in self._write_methods:
            return self._scoped(target, self._controller.overwrite)
        if name in self._update_methods:
            return self._scoped(target, self._controller.update)
        if name in self._read_methods:
            if self._read_mode.kind != SETTLED:
                return self._snapshot_read(name)
            return self._scoped(target, self._controller.examine)
        return target

    def _snapshot_read(self, name: str) -> Callable[..., Any]:
        """A read method served from the validated snapshot cache."""
        controller = self._controller
        mode = self._read_mode
        replica = self._read_replica

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = controller.node.examine(controller.object_name, mode)
            replica.apply_state(result.state)
            return getattr(replica, name)(*args, **kwargs)

        wrapper.__name__ = name
        return wrapper

    def _scoped(self, method: Callable[..., Any],
                indicate: Callable[[], None]) -> Callable[..., Any]:
        controller = self._controller

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            controller.enter()
            try:
                indicate()
                result = method(*args, **kwargs)
            except Exception:
                # The access failed before coordination: close the scope
                # as a read so no state change is proposed.
                controller._access = None
                controller.leave()
                raise
            controller.leave()
            return result

        wrapper.__name__ = getattr(method, "__name__", "wrapped")
        return wrapper


def wrap_object(app_object: Any, controller: B2BObjectController,
                write_methods: "Iterable[str]" = (),
                read_methods: "Iterable[str]" = (),
                update_methods: "Iterable[str]" = (),
                read_mode: "ReadMode | str | None" = None,
                read_replica: Any = None) -> CoordinatedProxy:
    """Generate the coordinated wrapper for an application object."""
    return CoordinatedProxy(app_object, controller,
                            write_methods=write_methods,
                            read_methods=read_methods,
                            update_methods=update_methods,
                            read_mode=read_mode,
                            read_replica=read_replica)
