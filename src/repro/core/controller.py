"""The B2BObjectController (Figure 4, section 5).

The controller is the application's local interface to configuration,
initiation and control of information sharing:

* ``enter`` / ``leave`` demarcate the scope of access to object state
  (calls may be nested; a series of changes rolls up into one
  coordination event at the final ``leave``);
* ``examine`` / ``overwrite`` / ``update`` indicate the access type for
  the current scope;
* the final ``leave`` of a writing scope implicitly invokes the state
  coordination protocol via the local coordinator;
* ``connect`` / ``disconnect`` initiate the membership protocols;
* ``coord_commit`` waits for a deferred-synchronous coordination to
  finish, and ``coordCallback`` on the B2BObject signals asynchronous
  completion.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core.modes import ASYNCHRONOUS, SYNCHRONOUS, validate_mode
from repro.core.object import B2BObject
from repro.core.readcache import (
    SETTLED,
    ReadMode,
    ReadResult,
    Snapshot,
    parse_read_mode,
)
from repro.errors import ProtocolBlocked, ProtocolError, ValidationFailed
from repro.protocol.events import (
    ConnectionDecided,
    DisconnectionDecided,
    Event,
    MembershipChanged,
    MisbehaviourEvent,
    RunCompleted,
    StateInstalled,
    StateRolledBack,
)
from repro.protocol.validation import Decision, StateMerger, Validator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import OrganisationNode

EXAMINE = "examine"
OVERWRITE = "overwrite"
UPDATE = "update"


@dataclass
class CoordinationTicket:
    """Handle on one in-flight coordination (state change or membership)."""

    key: str
    object_name: str
    kind: str  # "state" | "connect" | "disconnect" | "evict"
    done: bool = False
    valid: "Optional[bool]" = None
    diagnostics: "list[str]" = field(default_factory=list)
    event: "Optional[Event]" = None
    _signal: threading.Event = field(default_factory=threading.Event, repr=False)

    def resolve(self, valid: bool, diagnostics: "list[str]",
                event: "Optional[Event]" = None) -> None:
        self.valid = valid
        self.diagnostics = list(diagnostics)
        self.event = event
        self.done = True
        self._signal.set()

    def wait_signal(self, timeout: "float | None") -> bool:
        """Real-time wait used by the threaded runtime."""
        return self._signal.wait(timeout)


class ObjectValidatorAdapter(Validator):
    """Routes engine validation upcalls to the application B2BObject.

    The decision flows back through the controller's
    :meth:`B2BObjectController.validation_response`, which applications
    may override or observe (e.g. to audit every local decision).
    """

    def __init__(self, b2b_object: B2BObject) -> None:
        self._object = b2b_object

    def _report(self, kind: str, decision: Decision) -> Decision:
        controller = self._object._controller
        if controller is not None:
            return controller.validation_response(kind, decision)
        return decision

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        return self._report(
            "state", self._object.validate_state(proposed, current, proposer)
        )

    def validate_update(self, update: Any, resulting: Any, current: Any,
                        proposer: str) -> Decision:
        return self._report(
            "update",
            self._object.validate_update(update, resulting, current, proposer),
        )

    def validate_connect(self, subject: str, members: "list[str]") -> Decision:
        return self._report(
            "connect", self._object.validate_connect(subject, members)
        )

    def validate_disconnect(self, subject: str, voluntary: bool,
                            proposer: str) -> Decision:
        return self._report(
            "disconnect",
            self._object.validate_disconnect(subject, voluntary, proposer),
        )


class ObjectMergerAdapter(StateMerger):
    """Routes engine update application to the B2BObject's pure merge."""

    def __init__(self, b2b_object: B2BObject) -> None:
        self._object = b2b_object

    def apply(self, state: Any, update: Any) -> Any:
        return self._object.merge_update(state, update)


class B2BObjectController:
    """Local interface to coordination of one shared object."""

    def __init__(self, node: "OrganisationNode", object_name: str,
                 b2b_object: B2BObject, mode: str = SYNCHRONOUS,
                 timeout: "float | None" = None) -> None:
        self.node = node
        self.object_name = object_name
        self.b2b_object = b2b_object
        self.mode = validate_mode(mode)
        self.timeout = timeout
        self._depth = 0
        self._access: "Optional[str]" = None
        self._scope_mode: "Optional[ReadMode]" = None
        self._scope_read: "Optional[ReadResult]" = None
        self.last_validation: "Optional[tuple[str, Decision]]" = None
        b2b_object.set_controller(self)

    # ------------------------------------------------------------------
    # state access scoping (section 5)
    # ------------------------------------------------------------------

    def enter(self, read_mode: "ReadMode | str | None" = None) -> None:
        """Begin (or nest into) a state access scope.

        On the outermost entry the controller first lets any in-flight
        coordination at this replica settle, so the application reads and
        modifies the current agreed state rather than a stale snapshot.

        Passing *read_mode* (``cached`` or ``bounded(max_staleness)``)
        opens a **read-only** scope that skips the quiescence wait and
        pins a validated snapshot from the read cache instead
        (:mod:`repro.core.readcache`): reads see the pinned snapshot's
        consistency, writes raise :class:`ProtocolError`.  ``settled``
        (or None) keeps the classic semantics.  A mode can only be set
        on the outermost entry.
        """
        if self._depth == 0:
            mode = parse_read_mode(read_mode)
            if mode.kind == SETTLED:
                self.node._await_quiescent(self.object_name)
                self._scope_mode = None
                self._scope_read = None
            else:
                self._scope_read = self.node.readcache.read(
                    self.object_name, mode)
                self._scope_mode = mode
                self._access = EXAMINE
        elif read_mode is not None:
            raise ProtocolError(
                "read mode must be set on the outermost enter")
        self._depth += 1

    def examine(self, read_mode: "ReadMode | str | None" = None) -> None:
        """Declare that the current scope only reads object state.

        With *read_mode*, additionally pin (or re-pin) a validated
        snapshot mid-scope — only legal while the scope is read-only.
        """
        self._require_scope()
        if self._access is None:
            self._access = EXAMINE
        if read_mode is not None:
            if self._access != EXAMINE:
                raise ProtocolError(
                    "cannot pin a read snapshot in a writing scope")
            mode = parse_read_mode(read_mode)
            self._scope_read = self.node.readcache.read(
                self.object_name, mode)
            self._scope_mode = mode

    @property
    def snapshot(self) -> "Optional[Snapshot]":
        """The validated snapshot pinned for the current scope, if any."""
        read = self._scope_read
        return read.snapshot if read is not None else None

    def examine_state(self,
                      read_mode: "ReadMode | str | None" = None) -> Any:
        """One-shot read of the agreed state in an explicit mode.

        Convenience for ``node.examine(name, read_mode).state`` — no
        enter/leave scope needed, and for ``cached``/``bounded`` modes
        no locks taken and no quiescence wait.
        """
        return self.node.examine(self.object_name, read_mode).state

    def overwrite(self) -> None:
        """Declare that the current scope overwrites object state."""
        self._require_scope()
        self._require_writable()
        if self._access == UPDATE:
            raise ProtocolError("cannot mix update and overwrite in one scope")
        self._access = OVERWRITE

    def update(self) -> None:
        """Declare that the current scope incrementally updates state."""
        self._require_scope()
        self._require_writable()
        if self._access == OVERWRITE:
            raise ProtocolError("cannot mix update and overwrite in one scope")
        self._access = UPDATE

    def leave(self) -> "Optional[CoordinationTicket]":
        """End the current scope; the outermost writing leave coordinates.

        Returns a ticket for deferred/asynchronous modes, None for pure
        reads.  In synchronous mode the call blocks and raises
        :class:`ValidationFailed` if the change is vetoed.
        """
        self._require_scope()
        self._depth -= 1
        if self._depth > 0:
            return None
        access, self._access = self._access, None
        self._scope_mode = None
        self._scope_read = None
        if access == OVERWRITE:
            return self._coordinate_state(self.b2b_object.get_state())
        if access == UPDATE:
            return self._coordinate_update(self.b2b_object.get_update())
        return None

    def sync_coord(self) -> "Optional[CoordinationTicket]":
        """Explicitly coordinate the object's current state (syncCoord)."""
        return self._coordinate_state(self.b2b_object.get_state())

    def _require_scope(self) -> None:
        if self._depth <= 0:
            raise ProtocolError("state access outside an enter/leave scope")

    def _require_writable(self) -> None:
        if self._scope_mode is not None:
            raise ProtocolError(
                f"scope opened with read mode "
                f"{self._scope_mode.describe()} is read-only"
            )

    # ------------------------------------------------------------------
    # coordination initiation
    # ------------------------------------------------------------------

    #: Synchronous-mode retry policy for *transient* rejections — a
    #: responder that was momentarily busy or had not yet installed the
    #: previous commit.  Genuine policy vetoes are never retried.
    max_transient_retries = 20
    transient_retry_delay = 0.25

    def _coordinate_state(self, new_state: Any) -> "Optional[CoordinationTicket]":
        return self._coordinate(
            lambda: self.node.propagate_new_state(self.object_name, new_state)
        )

    def _coordinate_update(self, update: Any) -> "Optional[CoordinationTicket]":
        return self._coordinate(
            lambda: self.node.propagate_update(self.object_name, update)
        )

    def _coordinate(self, start) -> "Optional[CoordinationTicket]":
        if self.mode != SYNCHRONOUS:
            return start()
        attempts = 0
        while True:
            ticket = start()
            try:
                self.coord_commit(ticket)
                return ticket
            except ValidationFailed as exc:
                transient = exc.diagnostics and all(
                    "busy:" in diag or "invariant-1:" in diag
                    for diag in exc.diagnostics
                )
                if not transient or attempts >= self.max_transient_retries:
                    raise
                attempts += 1
                # Let in-flight commits reach the momentarily busy
                # replicas before retrying the same change.
                self.node.runtime.wait_until(
                    lambda: False, self.transient_retry_delay
                )
                self.node._await_quiescent(self.object_name)

    def _complete(self, ticket: CoordinationTicket) -> "Optional[CoordinationTicket]":
        if self.mode == SYNCHRONOUS:
            self.coord_commit(ticket)
        return ticket

    def coord_commit(self, ticket: CoordinationTicket,
                     timeout: "float | None" = None) -> CoordinationTicket:
        """Block until *ticket* completes (deferred-synchronous mode).

        Raises :class:`ValidationFailed` if the coordination outcome is
        invalid and :class:`ProtocolBlocked` if no outcome is reached
        within the timeout.
        """
        timeout = timeout if timeout is not None else self.timeout
        self.node.wait_for_ticket(ticket, timeout)
        if not ticket.done:
            raise ProtocolBlocked(
                f"coordination of {self.object_name!r} did not complete "
                f"within {timeout}s (ticket {ticket.key[:12]})"
            )
        if not ticket.valid:
            raise ValidationFailed(
                f"{ticket.kind} coordination of {self.object_name!r} was invalidated",
                diagnostics=ticket.diagnostics,
            )
        return ticket

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def disconnect(self) -> "Optional[CoordinationTicket]":
        """Voluntarily leave the sharing group (section 4.5.4)."""
        ticket = self.node.propagate_disconnect(self.object_name)
        return self._complete(ticket)

    def evict(self, subjects: "list[str]") -> "Optional[CoordinationTicket]":
        """Request eviction of one or more members (section 4.5.4)."""
        ticket = self.node.propagate_eviction(self.object_name, subjects)
        return self._complete(ticket)

    # ------------------------------------------------------------------
    # validation response hook
    # ------------------------------------------------------------------

    def validation_response(self, kind: str, decision: Decision) -> Decision:
        """Reports the result of application-specific validation.

        The default implementation records the decision and passes it
        through; applications can override the controller (or observe
        ``last_validation``) to audit or transform local decisions.
        """
        self.last_validation = (kind, decision)
        return decision

    # ------------------------------------------------------------------
    # event sink (called by the node)
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        if isinstance(event, (StateInstalled, StateRolledBack)):
            self.b2b_object.apply_state(event.state)
        if isinstance(event, (RunCompleted, MembershipChanged,
                              MisbehaviourEvent, ConnectionDecided,
                              DisconnectionDecided)):
            if self.mode == ASYNCHRONOUS or not isinstance(event, RunCompleted):
                self.b2b_object.coord_callback(event)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def members(self) -> "list[str]":
        return list(self.node.party.session(self.object_name).group.members)

    def agreed_state(self) -> Any:
        return self.node.party.session(self.object_name).state.agreed_state

    def is_connected(self) -> bool:
        return self.node.party.is_connected(self.object_name)
