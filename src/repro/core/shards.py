"""Multi-object shard scheduler: horizontal scale-out inside one node.

One :class:`~repro.core.node.OrganisationNode` used to serialize *every*
object's protocol work — inbound m1/m2/m3 handling, pipeline drains,
validation — behind a single re-entrant lock.  That is correct but caps
a node at one coordination step at a time however many independent
B2BObjects it hosts.  This module partitions that responsibility:

* :class:`ShardMap` — a deterministic consistent-hash ring (blake2b over
  object names, virtual nodes for smoothness) with explicit per-object
  overrides, so every party of a community routes a given object to the
  same shard index without coordination.
* :class:`Shard` — one partition: a re-entrant lock guarding its
  objects' engines, an optional dedicated worker thread draining an
  inbound-message queue, and the shard's pipeline group.
* :class:`ShardPipelineGroup` — the shard's proposal pipelines behind a
  shared :class:`DepthBudget` (one ``max_depth`` for the whole shard)
  and an optional ``run_slots`` gate bounding concurrent in-flight runs;
  settlements poll sibling pipelines round-robin so one hot object
  cannot monopolise the shard.
* :class:`ShardScheduler` — the per-node bundle: routing, lifecycle,
  canonical all-shard lock acquisition for cross-shard operations.

Lock order (must hold everywhere): ``node._lock`` → ``shard.lock`` (in
ascending shard-index order when several are held) → the node's registry
lock.  Event listeners and the gateway are never invoked while a shard
lock is held.
"""

from __future__ import annotations

import collections
import hashlib
import struct
import threading
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.protocol.events import Event, Output
from repro.protocol.pipeline import ProposalPipeline

#: Ring positions per shard: enough for <2% imbalance at 8 shards
#: without making ring construction or bisection noticeable.
VIRTUAL_NODES = 64


def _hash64(key: str) -> int:
    """Stable 64-bit hash (builtin ``hash`` is salted per process)."""
    return struct.unpack(
        ">Q", hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    )[0]


class ShardMap:
    """Deterministic object-name → shard-index mapping.

    Consistent hashing keeps the mapping stable as names come and go and
    identical at every party; :meth:`assign` pins individual objects to
    an explicit shard (e.g. to co-locate a composite with a hot child).
    """

    def __init__(self, num_shards: int,
                 overrides: "Optional[dict[str, int]]" = None,
                 virtual_nodes: int = VIRTUAL_NODES) -> None:
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        self.num_shards = num_shards
        self._overrides: "dict[str, int]" = {}
        ring: "list[tuple[int, int]]" = []
        for shard in range(num_shards):
            for replica in range(virtual_nodes):
                ring.append((_hash64(f"shard:{shard}:vn:{replica}"), shard))
        ring.sort()
        self._ring_keys = [key for key, _ in ring]
        self._ring_shards = [shard for _, shard in ring]
        for name, shard in (overrides or {}).items():
            self.assign(name, shard)

    def assign(self, object_name: str, shard: int) -> None:
        """Pin *object_name* to an explicit shard index."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard {shard} out of range (num_shards={self.num_shards})"
            )
        self._overrides[object_name] = shard

    def shard_of(self, object_name: str) -> int:
        override = self._overrides.get(object_name)
        if override is not None:
            return override
        if self.num_shards == 1:
            return 0
        import bisect

        point = _hash64(object_name)
        index = bisect.bisect_right(self._ring_keys, point)
        if index == len(self._ring_keys):
            index = 0
        return self._ring_shards[index]

    def spread(self, names: "list[str]") -> "dict[int, list[str]]":
        """Group *names* by shard (diagnostics and tests)."""
        groups: "dict[int, list[str]]" = {}
        for name in names:
            groups.setdefault(self.shard_of(name), []).append(name)
        return groups


class DepthBudget:
    """Shared queue-depth allowance across one shard's pipelines.

    Mutated only under the owning shard's lock, so no lock of its own.
    Units are acquired at submission and released when the carrying
    update's ticket resolves (busy-retry re-queues keep their units).
    """

    __slots__ = ("limit", "used")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError("shared max_depth must be at least 1")
        self.limit = limit
        self.used = 0

    def try_acquire(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True

    def release(self, count: int = 1) -> None:
        self.used = max(0, self.used - count)


class ShardPipelineGroup:
    """One shard's proposal pipelines with shared budget and run slots."""

    def __init__(self, shard_index: int,
                 run_slots: "Optional[int]" = None,
                 shared_max_depth: "Optional[int]" = None) -> None:
        if run_slots is not None and run_slots < 1:
            raise ConfigurationError("run_slots must be at least 1 (or None)")
        self.shard_index = shard_index
        self.run_slots = run_slots
        self.budget = (DepthBudget(shared_max_depth)
                       if shared_max_depth is not None else None)
        self._pipelines: "dict[str, ProposalPipeline]" = {}
        #: Round-robin poll order; rotated on every settlement so the
        #: freed run slot goes to the next waiting object, not back to
        #: the one that just settled.
        self._rotation: "collections.deque[str]" = collections.deque()

    def get(self, object_name: str) -> "Optional[ProposalPipeline]":
        return self._pipelines.get(object_name)

    def names(self) -> "list[str]":
        return list(self._pipelines)

    @property
    def inflight_runs(self) -> int:
        return sum(1 for pipe in self._pipelines.values()
                   if pipe.inflight_run_id is not None)

    @property
    def queued(self) -> int:
        return sum(pipe.depth for pipe in self._pipelines.values())

    def _gate(self) -> bool:
        return (self.run_slots is None
                or self.inflight_runs < self.run_slots)

    def pipeline(self, object_name: str,
                 engine_factory: "Callable[[], Any]",
                 **options: Any) -> ProposalPipeline:
        """The object's pipeline, created on first use.

        The group's shared budget and run-slot gate are injected unless
        the caller overrides them explicitly in *options*.
        """
        pipe = self._pipelines.get(object_name)
        if pipe is None:
            options.setdefault("budget", self.budget)
            options.setdefault("gate", self._gate)
            pipe = ProposalPipeline(engine_factory(), **options)
            self._pipelines[object_name] = pipe
            self._rotation.append(object_name)
        return pipe

    def on_event(self, event: Event, object_name: str) -> "list[Output]":
        """Feed a settlement to the target pipeline, then poll siblings.

        The target absorbs the event *without* immediately re-proposing;
        the round-robin poll that follows decides which queued pipeline
        takes the freed engine/run slot, so a hot object with a deep
        queue interleaves fairly with its shard neighbours.
        """
        target = self._pipelines.get(object_name)
        if target is None:
            return []
        target.absorb(event)
        return self.poll_round()

    def poll_round(self) -> "list[Output]":
        """Poll every pipeline once, in rotated (fair) order."""
        if not self._rotation:
            return []
        self._rotation.rotate(-1)
        outputs: "list[Output]" = []
        for name in self._rotation:
            output = self._pipelines[name].poll()
            if output.messages or output.events:
                outputs.append(output)
        return outputs


class Shard:
    """One partition of a node's coordination responsibility."""

    def __init__(self, index: int,
                 run_slots: "Optional[int]" = None,
                 shared_max_depth: "Optional[int]" = None) -> None:
        self.index = index
        self.lock = threading.RLock()
        self.pipelines = ShardPipelineGroup(
            index, run_slots=run_slots, shared_max_depth=shared_max_depth)
        self._queue: "Optional[collections.deque[Callable[[], None]]]" = None
        self._ready: "Optional[threading.Condition]" = None
        self._worker: "Optional[threading.Thread]" = None
        self._stopped = False

    # ------------------------------------------------------------------
    # worker plumbing
    # ------------------------------------------------------------------

    def start_worker(self, name: str) -> None:
        if self._worker is not None:
            return
        self._queue = collections.deque()
        self._ready = threading.Condition()
        self._worker = threading.Thread(
            target=self._drain, daemon=True, name=f"shard-{name}-{self.index}")
        self._worker.start()

    @property
    def worker_running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    @property
    def queue_depth(self) -> int:
        queue = self._queue
        return len(queue) if queue is not None else 0

    def submit(self, work: "Callable[[], None]") -> None:
        """Run *work* on the shard: queued to the worker, else inline."""
        ready = self._ready
        if ready is None or self._stopped:
            work()
            return
        with ready:
            self._queue.append(work)  # type: ignore[union-attr]
            ready.notify()

    def _drain(self) -> None:
        ready = self._ready
        queue = self._queue
        assert ready is not None and queue is not None
        while True:
            with ready:
                while not queue and not self._stopped:
                    ready.wait()
                if self._stopped and not queue:
                    return
                work = queue.popleft()
            try:
                work()
            except Exception:  # noqa: BLE001 - shard work must not kill the drain
                pass

    def stop(self) -> None:
        ready = self._ready
        self._stopped = True
        if ready is not None:
            with ready:
                ready.notify_all()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=1.0)


class ShardScheduler:
    """A node's set of shards plus the routing map over them."""

    def __init__(self, num_shards: int = 1,
                 shard_map: "Optional[ShardMap]" = None,
                 workers: bool = False,
                 run_slots: "Optional[int]" = None,
                 shared_max_depth: "Optional[int]" = None,
                 name: str = "") -> None:
        if shard_map is not None:
            self.map = shard_map
        else:
            self.map = ShardMap(num_shards)
        self.shards = [
            Shard(index, run_slots=run_slots,
                  shared_max_depth=shared_max_depth)
            for index in range(self.map.num_shards)
        ]
        self.workers = workers
        if workers:
            for shard in self.shards:
                shard.start_worker(name)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, object_name: "Optional[str]") -> Shard:
        if object_name is None or len(self.shards) == 1:
            return self.shards[0]
        return self.shards[self.map.shard_of(object_name)]

    def assign(self, object_name: str, shard: int) -> None:
        """Pin *object_name* to an explicit shard (before first use)."""
        self.map.assign(object_name, shard)

    def shards_for(self, names: "list[str]") -> "list[Shard]":
        """Distinct shards covering *names*, in canonical (index) order."""
        seen: "dict[int, Shard]" = {}
        for name in names:
            shard = self.shard_for(name)
            seen[shard.index] = shard
        return [seen[index] for index in sorted(seen)]

    def lock_all(self) -> "_AllShardLocks":
        """Acquire every shard lock in canonical order (a context
        manager), for party-wide operations like recovery resends."""
        return _AllShardLocks(self.shards)

    def pipeline_for(self, object_name: str) -> "Optional[ProposalPipeline]":
        return self.shard_for(object_name).pipelines.get(object_name)

    def stop(self) -> None:
        for shard in self.shards:
            shard.stop()


class _AllShardLocks:
    def __init__(self, shards: "list[Shard]") -> None:
        self._shards = shards

    def __enter__(self) -> None:
        for shard in self._shards:
            shard.lock.acquire()

    def __exit__(self, *exc: Any) -> None:
        for shard in reversed(self._shards):
            shard.lock.release()
