"""Composite objects.

Section 4 notes the protocol "applies just as well to the use of a
composite object to coordinate the states of multiple objects".  A
:class:`CompositeB2BObject` aggregates named child B2BObjects behind one
coordinated state, so one protocol run atomically validates and installs
changes across all of them.
"""

from __future__ import annotations

from typing import Any

from repro.core.object import B2BObject
from repro.errors import ConfigurationError
from repro.protocol.validation import Decision


class CompositeB2BObject(B2BObject):
    """Coordinates several child objects as a single unit of agreement."""

    def __init__(self, children: "dict[str, B2BObject]") -> None:
        super().__init__()
        if not children:
            raise ConfigurationError("a composite requires at least one child")
        self.children = dict(children)

    def child(self, name: str) -> B2BObject:
        return self.children[name]

    def get_state(self) -> dict:
        return {name: child.get_state() for name, child in self.children.items()}

    def apply_state(self, state: Any) -> None:
        if not isinstance(state, dict) or set(state) != set(self.children):
            raise ConfigurationError("composite state must cover exactly the children")
        for name, child in self.children.items():
            child.apply_state(state[name])

    def get_update(self) -> dict:
        """Collect child updates; children with no pending update are omitted."""
        update: dict = {}
        for name, child in self.children.items():
            try:
                child_update = child.get_update()
            except NotImplementedError:
                continue
            if child_update:
                update[name] = child_update
        return update

    def merge_update(self, state: Any, update: Any) -> Any:
        if not isinstance(state, dict) or not isinstance(update, dict):
            raise TypeError("composite merge requires dict state and update")
        merged = dict(state)
        for name, child_update in update.items():
            if name not in self.children:
                raise ConfigurationError(f"update names unknown child {name!r}")
            merged[name] = self.children[name].merge_update(
                merged[name], child_update
            )
        return merged

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        """A composite change is valid iff every child accepts its slice."""
        if not isinstance(proposed, dict) or set(proposed) != set(self.children):
            return Decision.reject("composite state must cover exactly the children")
        diagnostics: "list[str]" = []
        for name, child in self.children.items():
            decision = child.validate_state(
                proposed[name], (current or {}).get(name), proposer
            )
            if not decision.accepted:
                for diag in decision.diagnostics or ("rejected",):
                    diagnostics.append(f"{name}: {diag}")
        if diagnostics:
            return Decision.reject(*diagnostics)
        return Decision.accept()

    def validate_update(self, update: Any, resulting: Any, current: Any,
                        proposer: str) -> Decision:
        if not isinstance(update, dict):
            return Decision.reject("composite update must be a dict")
        diagnostics: "list[str]" = []
        for name, child_update in update.items():
            child = self.children.get(name)
            if child is None:
                diagnostics.append(f"unknown child {name!r}")
                continue
            decision = child.validate_update(
                child_update,
                (resulting or {}).get(name),
                (current or {}).get(name),
                proposer,
            )
            if not decision.accepted:
                for diag in decision.diagnostics or ("rejected",):
                    diagnostics.append(f"{name}: {diag}")
        if diagnostics:
            return Decision.reject(*diagnostics)
        return Decision.accept()

    def coord_callback(self, event: Any) -> None:
        for child in self.children.values():
            child.coord_callback(event)
