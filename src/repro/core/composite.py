"""Composite objects and cross-shard composite transactions.

Section 4 notes the protocol "applies just as well to the use of a
composite object to coordinate the states of multiple objects".  A
:class:`CompositeB2BObject` aggregates named child B2BObjects behind one
coordinated state, so one protocol run atomically validates and installs
changes across all of them.

With the shard scheduler (:mod:`repro.core.shards`) the children of a
logical transaction may instead be *independent* shared objects living
on different shards.  :func:`submit_transaction` keeps such a
transaction all-or-nothing at admission: every involved shard's lock is
acquired in canonical order, every child update is validated against the
locked agreed state (one rejection aborts the whole transaction before
anything is proposed), and only then is each accepted child handed to
its shard's pipeline — still under the held locks, so no concurrent
submission can slip between the checks and the proposals.  Benign busy
vetoes from concurrent per-child traffic are retried by the pipelines;
a genuine remote policy veto after admission surfaces through
:attr:`CompositeTicket.partial` rather than being silently absorbed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.core.object import B2BObject
from repro.errors import ConfigurationError
from repro.protocol.validation import Decision


class CompositeB2BObject(B2BObject):
    """Coordinates several child objects as a single unit of agreement."""

    def __init__(self, children: "dict[str, B2BObject]") -> None:
        super().__init__()
        if not children:
            raise ConfigurationError("a composite requires at least one child")
        self.children = dict(children)

    def child(self, name: str) -> B2BObject:
        return self.children[name]

    def get_state(self) -> dict:
        return {name: child.get_state() for name, child in self.children.items()}

    def apply_state(self, state: Any) -> None:
        if not isinstance(state, dict) or set(state) != set(self.children):
            raise ConfigurationError("composite state must cover exactly the children")
        for name, child in self.children.items():
            child.apply_state(state[name])

    def get_update(self) -> dict:
        """Collect child updates; children with no pending update are omitted."""
        update: dict = {}
        for name, child in self.children.items():
            try:
                child_update = child.get_update()
            except NotImplementedError:
                continue
            if child_update:
                update[name] = child_update
        return update

    def merge_update(self, state: Any, update: Any) -> Any:
        if not isinstance(state, dict) or not isinstance(update, dict):
            raise TypeError("composite merge requires dict state and update")
        merged = dict(state)
        for name, child_update in update.items():
            if name not in self.children:
                raise ConfigurationError(f"update names unknown child {name!r}")
            merged[name] = self.children[name].merge_update(
                merged[name], child_update
            )
        return merged

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        """A composite change is valid iff every child accepts its slice."""
        if not isinstance(proposed, dict) or set(proposed) != set(self.children):
            return Decision.reject("composite state must cover exactly the children")
        diagnostics: "list[str]" = []
        for name, child in self.children.items():
            decision = child.validate_state(
                proposed[name], (current or {}).get(name), proposer
            )
            if not decision.accepted:
                for diag in decision.diagnostics or ("rejected",):
                    diagnostics.append(f"{name}: {diag}")
        if diagnostics:
            return Decision.reject(*diagnostics)
        return Decision.accept()

    def validate_update(self, update: Any, resulting: Any, current: Any,
                        proposer: str) -> Decision:
        if not isinstance(update, dict):
            return Decision.reject("composite update must be a dict")
        diagnostics: "list[str]" = []
        for name, child_update in update.items():
            child = self.children.get(name)
            if child is None:
                diagnostics.append(f"unknown child {name!r}")
                continue
            decision = child.validate_update(
                child_update,
                (resulting or {}).get(name),
                (current or {}).get(name),
                proposer,
            )
            if not decision.accepted:
                for diag in decision.diagnostics or ("rejected",):
                    diagnostics.append(f"{name}: {diag}")
        if diagnostics:
            return Decision.reject(*diagnostics)
        return Decision.accept()

    def coord_callback(self, event: Any) -> None:
        for child in self.children.values():
            child.coord_callback(event)


@dataclass
class CompositeTicket:
    """Handle on one cross-shard transaction.

    ``done`` once every child ticket settled (or the transaction was
    aborted at admission); ``valid`` only when *all* children settled
    valid.  ``partial`` flags the pathological post-admission case —
    some children applied while another was vetoed remotely — which the
    evidence logs then attribute.
    """

    object_names: "list[str]"
    children: "dict[str, Any]" = field(default_factory=dict)
    aborted: bool = False
    diagnostics: "list[str]" = field(default_factory=list)

    @property
    def done(self) -> bool:
        if self.aborted:
            return True
        return all(ticket.done for ticket in self.children.values())

    @property
    def valid(self) -> "bool | None":
        if self.aborted:
            return False
        if not self.done:
            return None
        return all(ticket.valid for ticket in self.children.values())

    @property
    def partial(self) -> bool:
        """Some children applied and at least one was vetoed."""
        if self.aborted or not self.done:
            return False
        outcomes = {bool(ticket.valid) for ticket in self.children.values()}
        return outcomes == {True, False}

    def child_diagnostics(self) -> "list[str]":
        diags = list(self.diagnostics)
        for name, ticket in self.children.items():
            for diag in ticket.diagnostics:
                diags.append(f"{name}: {diag}")
        return diags


def submit_transaction(node: Any, updates: "dict[str, Any]",
                       pre_validate: bool = True) -> CompositeTicket:
    """Propose *updates* (object name → update) as one transaction.

    Children are admitted all-or-nothing: shard locks are taken in
    canonical (shard index, then name) order, each update is validated
    against the locked agreed state, and any rejection aborts the whole
    transaction with nothing proposed.  Accepted children enter their
    shards' pipelines while the locks are still held, then settle as
    ordinary (busy-retried) runs.
    """
    if not updates:
        raise ConfigurationError("a transaction requires at least one update")
    names = sorted(
        updates, key=lambda name: (node.shards.shard_for(name).index, name))
    shards = node.shards.shards_for(names)
    ticket = CompositeTicket(object_names=names)
    outputs: "list[Any]" = []
    acquired: "list[threading.RLock]" = []
    try:
        for shard in shards:
            shard.lock.acquire()
            acquired.append(shard.lock)
        if pre_validate:
            diagnostics: "list[str]" = []
            for name in names:
                diagnostics.extend(_validate_child(node, name, updates[name]))
            if diagnostics:
                ticket.aborted = True
                ticket.diagnostics = diagnostics
                return ticket
        for name in names:
            pipe = node.shards.shard_for(name).pipelines.pipeline(
                name, lambda name=name: node.party.session(name).state)
            child_ticket, output = pipe.submit(updates[name])
            ticket.children[name] = child_ticket
            outputs.append(output)
    finally:
        for lock in reversed(acquired):
            lock.release()
    # Transmit and dispatch only after every shard lock is released —
    # the node's lock-order contract for _process_output.
    for output in outputs:
        node._process_output(output)
    for name in names:
        node._schedule_pipeline_retry(name)
    return ticket


def _validate_child(node: Any, name: str, update: Any) -> "list[str]":
    """Validate one child update against its locked agreed state."""
    try:
        session = node.party.session(name)
    except Exception:
        return [f"{name}: not connected"]
    controller = node.controllers.get(name)
    if controller is None:
        return [f"{name}: no controller"]
    b2b_object = controller.b2b_object
    agreed = session.state.agreed_state
    try:
        resulting = b2b_object.merge_update(agreed, update)
    except Exception as exc:  # merge failure == rejection, not a crash
        return [f"{name}: merge failed: {exc}"]
    decision = b2b_object.validate_update(
        update, resulting, agreed, node.party_id)
    if decision.accepted:
        return []
    return [f"{name}: {diag}"
            for diag in (decision.diagnostics or ["rejected"])]
