"""Runtimes: how sans-IO engines are driven against a network.

* :class:`SimRuntime` — single-threaded, virtual time, deterministic.
  ``wait_until`` *is* the event loop: it executes network events until the
  predicate holds.
* :class:`ThreadedRuntime` — real time over any network (typically
  :class:`~repro.transport.tcp.TcpNetwork`); listener threads push
  messages as they arrive and ``wait_until`` polls with short sleeps.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.transport.base import Network
from repro.transport.inmemory import LinkProfile, SimNetwork
from repro.transport.tcp import TcpNetwork

Predicate = Callable[[], bool]


class Runtime:
    """Binds nodes to a network and provides blocking waits."""

    network: Network

    def wait_until(self, predicate: Predicate,
                   timeout: "float | None" = None) -> bool:
        """Drive/observe the network until *predicate* holds.

        Returns the final predicate value (False on timeout).
        """
        raise NotImplementedError

    def settle(self, duration: "float | None" = None) -> None:
        """Let in-flight traffic drain (best effort)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release runtime resources (idempotent)."""


class SimRuntime(Runtime):
    """Deterministic virtual-time runtime over :class:`SimNetwork`."""

    DEFAULT_TIMEOUT = 300.0  # virtual seconds

    def __init__(self, seed: "int | str" = 0,
                 profile: "LinkProfile | None" = None,
                 network: "SimNetwork | None" = None) -> None:
        # A pre-built network (e.g. the store-and-forward
        # BrokeredSimNetwork) may be supplied instead of the default.
        self.network = network if network is not None \
            else SimNetwork(seed=seed, default_profile=profile)

    def wait_until(self, predicate: Predicate,
                   timeout: "float | None" = None) -> bool:
        timeout = timeout if timeout is not None else self.DEFAULT_TIMEOUT
        deadline = self.network.now() + timeout
        self.network.run(max_time=deadline, until=predicate)
        return bool(predicate())

    def settle(self, duration: "float | None" = None) -> None:
        if duration is None:
            self.network.run()
        else:
            self.network.run(max_time=self.network.now() + duration)

    def now(self) -> float:
        return self.network.now()


class ThreadedRuntime(Runtime):
    """Real-time runtime, typically over TCP."""

    DEFAULT_TIMEOUT = 15.0  # real seconds
    POLL_INTERVAL = 0.002

    def __init__(self, network: "Network | None" = None) -> None:
        self.network = network if network is not None else TcpNetwork()

    def wait_until(self, predicate: Predicate,
                   timeout: "float | None" = None) -> bool:
        timeout = timeout if timeout is not None else self.DEFAULT_TIMEOUT
        deadline = time.monotonic() + timeout
        while True:
            if predicate():
                return True
            if time.monotonic() >= deadline:
                return bool(predicate())
            time.sleep(self.POLL_INTERVAL)

    def settle(self, duration: "float | None" = None) -> None:
        time.sleep(duration if duration is not None else 0.05)

    def close(self) -> None:
        close = getattr(self.network, "close", None)
        if close is not None:
            close()
