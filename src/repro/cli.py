"""Command-line tools for the B2BObjects middleware.

Usage::

    python -m repro verify-log PATH        # check an evidence log's chain
    python -m repro show-log PATH          # list evidence entries
    python -m repro keygen --id OrgA       # generate a signing key pair
    python -m repro simulate [options]     # run a coordination workload
    python -m repro obs-report [options]   # instrumented run + breakdown
    python -m repro serve-metrics [opts]   # HTTP telemetry endpoint
    python -m repro top --url URL          # live polling terminal view
    python -m repro flight-dump --url URL  # fetch the flight recorder ring
    python -m repro audit [options]        # evidence forensics + timeline
    python -m repro demo NAME              # run a built-in demo scenario

The log commands operate on the crash-safe JSON-lines files produced by
:class:`repro.storage.backends.FileRecordStore`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.errors import B2BError
from repro.storage.backends import FileRecordStore
from repro.storage.log import NonRepudiationLog
from repro.util.encoding import b64


def _cmd_verify_log(args: argparse.Namespace) -> int:
    store = FileRecordStore(args.path, fsync=False)
    try:
        log = NonRepudiationLog(args.owner, store)
        count = log.verify_chain()
    except B2BError as exc:
        print(f"FAILED: {exc}")
        return 1
    finally:
        store.close()
    print(f"OK: {count} entries, chain intact, head={b64(log.head)[:24]}...")
    return 0


def _cmd_show_log(args: argparse.Namespace) -> int:
    store = FileRecordStore(args.path, fsync=False)
    try:
        log = NonRepudiationLog(args.owner, store)
        for entry in log.entries(kind=args.kind):
            summary = {
                key: value for key, value in entry.payload.items()
                if isinstance(value, (str, int, bool, float)) or value is None
            }
            print(f"[{entry.index:4d}] {entry.kind:28s} "
                  f"{json.dumps(summary, default=str)[:120]}")
    except B2BError as exc:
        print(f"error: {exc}")
        return 1
    finally:
        store.close()
    return 0


def _cmd_export_decisions(args: argparse.Namespace) -> int:
    """Dump authenticated-decision bundles from a log for arbitration."""
    import os

    from repro.util.encoding import canonical_bytes

    store = FileRecordStore(args.path, fsync=False)
    try:
        log = NonRepudiationLog(args.owner, store)
        os.makedirs(args.out, exist_ok=True)
        count = 0
        for entry in log.entries("authenticated-decision"):
            run_id = str(entry.payload.get("run_id", f"entry{entry.index}"))
            out_path = os.path.join(args.out, f"{run_id[:16]}.bundle")
            with open(out_path, "wb") as handle:
                handle.write(canonical_bytes(entry.payload))
            count += 1
        print(f"exported {count} decision bundle(s) to {args.out}")
    except B2BError as exc:
        print(f"error: {exc}")
        return 1
    finally:
        store.close()
    return 0


def _cmd_verify_bundle(args: argparse.Namespace) -> int:
    """Independently verify an exported authenticated-decision bundle."""
    from repro.crypto.rsa import RsaPublicKey
    from repro.crypto.signature import RsaVerifier
    from repro.errors import SignatureError
    from repro.protocol.evidence import verify_authenticated_decision
    from repro.util.encoding import from_canonical_bytes

    with open(args.keys, encoding="utf-8") as handle:
        key_data = json.load(handle)
    verifiers = {
        party: RsaVerifier(RsaPublicKey.from_dict(key))
        for party, key in key_data.get("parties", {}).items()
    }
    tsa_verifier = None
    if key_data.get("tsa"):
        tsa_verifier = RsaVerifier(RsaPublicKey.from_dict(key_data["tsa"]))

    def resolver(party_id: str):
        verifier = verifiers.get(party_id)
        if verifier is None:
            raise SignatureError(f"no public key on file for {party_id!r}")
        return verifier

    with open(args.bundle, "rb") as handle:
        bundle = from_canonical_bytes(handle.read())
    verdict = verify_authenticated_decision(
        bundle, resolver, tsa_verifier=tsa_verifier,
    )
    print(f"kind:       {verdict.kind}")
    print(f"object:     {verdict.object_name}")
    print(f"proposer:   {verdict.proposer}")
    print(f"responders: {', '.join(sorted(verdict.responders)) or '-'}")
    print(f"authentic:  {verdict.authentic}")
    print(f"valid:      {verdict.valid}")
    for problem in verdict.problems:
        print(f"  problem: {problem}")
    for diagnostic in verdict.diagnostics:
        print(f"  diagnostic: {diagnostic}")
    return 0 if verdict.authentic else 1


def _cmd_keygen(args: argparse.Namespace) -> int:
    from repro.crypto.signature import generate_party_keypair

    keypair = generate_party_keypair(args.id, bits=args.bits)
    record = {
        "party_id": args.id,
        "bits": args.bits,
        "public_key": keypair.public_key.to_dict(),
        "private_key": {
            "n": keypair.private_key.modulus,
            "e": keypair.private_key.public_exponent,
            "d": keypair.private_key.private_exponent,
            "p": keypair.private_key.prime_p,
            "q": keypair.private_key.prime_q,
        },
    }
    text = json.dumps(record, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.bits}-bit key pair for {args.id!r} to {args.out}")
    else:
        print(text)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.bench.harness import (
        assert_replicas_converged,
        found_dict_object,
        run_state_workload,
    )
    from repro.bench.workload import counter_states, random_states
    from repro.core.community import Community
    from repro.core.runtime import SimRuntime
    from repro.transport.inmemory import LinkProfile

    obs = None
    if args.obs:
        from repro.obs import RecordingInstrumentation

        obs = RecordingInstrumentation()
    profile = LinkProfile(
        latency=args.latency, jitter=args.jitter,
        drop_probability=args.drop, duplicate_probability=args.duplicate,
    )
    names = [f"Org{i + 1}" for i in range(args.parties)]
    community = Community(
        names, runtime=SimRuntime(seed=args.seed, profile=profile), obs=obs,
    )
    controllers, _objects = found_dict_object(community)
    if args.fault != "none" and args.failures > 0:
        from repro.faults import bounded_failure_schedule

        schedule = bounded_failure_schedule(
            community, names, failures=args.failures,
            period=0.4, downtime=0.3, start=0.02, kind=args.fault,
        )
        schedule.arm()
        print(f"armed {args.failures} temporary {args.fault} fault(s), "
              f"{schedule.total_downtime():.2f}s total downtime")
    # Thread the run seed through workload generation too, not just the
    # transport's drop/jitter injection: the same --seed reproduces the
    # same proposed states.
    if args.workload == "random":
        states = random_states(args.updates, seed=args.seed)
    else:
        states = counter_states(args.updates)
    summary = run_state_workload(community, controllers, states)
    assert_replicas_converged(controllers)
    print(f"parties={args.parties} updates={args.updates} "
          f"workload={args.workload} drop={args.drop} seed={args.seed}")
    print(f"  completed: {summary['completed']}  rejected: {summary['rejected']}")
    latency = summary["latency"]
    print(f"  virtual latency: mean={latency['mean']:.4f}s "
          f"p95={latency['p95']:.4f}s max={latency['max']:.4f}s")
    messages = summary["messages"]
    print(f"  messages: sent={messages['sent']} delivered={messages['delivered']} "
          f"dropped={messages['dropped']} duplicated={messages['duplicated']}")
    print("  replicas converged: yes")
    if obs is not None:
        print()
        print(obs.report())
    return 0


def _run_forensic_game(seed: int, latency: float, drop: float,
                       duplicate: float, transport: str = "sim",
                       tcp_mode: str = "pooled",
                       wire_codec: str = "json",
                       export_dir: "str | None" = None,
                       trace_out: "str | None" = None):
    """Instrumented 3-party Tic-Tac-Toe run with the Figure 5 cheat.

    Returns ``(community, objects, rejected, obs, trace_paths)``.  With
    *export_dir* set, each party's trace records, every party's evidence
    log and a ``keys.json`` land under that directory — the complete
    input set for ``repro audit``.
    """
    import os

    from repro.apps.tictactoe import (
        CROSS,
        NOUGHT,
        TicTacToeObject,
        TicTacToePlayer,
    )
    from repro.core.community import Community
    from repro.core.runtime import SimRuntime, ThreadedRuntime
    from repro.errors import ValidationFailed
    from repro.obs import PartyFilesExporter, RecordingInstrumentation, Tracer
    from repro.transport.inmemory import LinkProfile
    from repro.transport.tcp import TcpNetwork

    from repro.obs import JsonLinesExporter

    tracer = Tracer()
    party_exporter = None
    file_exporter = None
    storage_dir = None
    if export_dir:
        os.makedirs(export_dir, exist_ok=True)
        party_exporter = PartyFilesExporter(os.path.join(export_dir, "traces"))
        tracer.add_exporter(party_exporter)
        storage_dir = os.path.join(export_dir, "evidence")
    if trace_out:
        file_exporter = JsonLinesExporter(trace_out)
        tracer.add_exporter(file_exporter)
    obs = RecordingInstrumentation(tracer=tracer)

    if transport == "tcp":
        runtime = ThreadedRuntime(network=TcpNetwork(
            obs=obs, drop_probability=drop, drop_seed=seed,
            pooled=(tcp_mode == "pooled"),
            reactor=(tcp_mode == "reactor"),
            codec=wire_codec,
        ))
        retransmit_interval = 0.03
    else:
        profile = LinkProfile(
            latency=latency,
            drop_probability=drop,
            duplicate_probability=duplicate,
        )
        runtime = SimRuntime(seed=seed, profile=profile)
        retransmit_interval = 0.05
    # Two players plus a witness organisation sharing the game object —
    # the smallest community where m2/m3 fan-out is visible (n=3).
    names = ["Cross", "Nought", "Witness"]
    community = Community(
        names, runtime=runtime, obs=obs, storage_dir=storage_dir,
        retransmit_interval=retransmit_interval,
    )
    players = {"Cross": CROSS, "Nought": NOUGHT}
    objects = {name: TicTacToeObject(players=players) for name in names}
    controllers = community.found_object("game", objects)
    cross = TicTacToePlayer(controllers["Cross"], CROSS)
    nought = TicTacToePlayer(controllers["Nought"], NOUGHT)

    def _quiescent() -> bool:
        engines = [node.party.session("game").state
                   for node in community.nodes.values()]
        if any(engine.busy for engine in engines):
            return False
        # Idle is not enough: a replica that missed the last m3 (still in
        # retransmission) is idle *and* stale, and the next proposal built
        # on it would be vetoed.  Require identical agreed state too.
        reference = engines[0].agreed_state
        return all(engine.agreed_state == reference for engine in engines)

    rejected = 0
    moves = [(cross, 4, None), (nought, 0, None), (cross, 5, None),
             (cross, 7, NOUGHT),  # the Figure 5 cheat attempt — vetoed
             (nought, 8, None), (cross, 3, None)]
    for player, cell, mark in moves:
        try:
            player.save_move(cell, mark)
        except ValidationFailed:
            rejected += 1
        if transport == "tcp":
            # Real time: the next proposer must not race the previous
            # run's m3 across the sockets, or it proposes from a stale
            # board and honest moves are vetoed.
            community.runtime.wait_until(_quiescent, 10.0)
    community.settle(0.3 if transport == "tcp" else None)
    community.close()

    trace_paths: "dict[str, str]" = {}
    if party_exporter is not None:
        trace_paths = party_exporter.paths()
        party_exporter.close()
    if file_exporter is not None:
        file_exporter.close()
    if export_dir:
        keys_path = os.path.join(export_dir, "keys.json")
        with open(keys_path, "w", encoding="utf-8") as handle:
            json.dump(community.public_keys(), handle, indent=2)
    return community, objects, rejected, obs, trace_paths


def _run_pipeline_burst(seed: int, updates: int, registry,
                        flight=None, read_ops: int = 0) -> None:
    """Contended pipelined writes: feeds the pipeline report section.

    Two proposers submit *updates* each through their write pipelines
    against a shared ledger object, so the report shows batch sizes,
    queue depth and the benign busy retries that contention produces
    (no misbehaviour evidence — benign vetoes are not misbehaviour).

    With *read_ops* > 0 the third organisation also issues that many
    validated reads against the ledger — cycling cached, bounded and
    settled consistency modes — to feed the read-cache report section.
    """
    from repro.core.community import Community
    from repro.core.object import DictB2BObject
    from repro.crypto.prng import DeterministicRandomSource
    from repro.obs import RecordingInstrumentation

    obs = RecordingInstrumentation(registry=registry, flight=flight)
    names = ["Cross", "Nought", "Witness"]
    community = Community(names, seed=seed, obs=obs)
    replicas = {name: DictB2BObject() for name in names}
    community.found_object("ledger", replicas)
    # Payload contents are seeded alongside the transport: the same
    # --seed reproduces the same burst bit-for-bit.
    rngs = {name: DeterministicRandomSource(f"pipeline-burst:{seed}:{name}")
            for name in ("Cross", "Nought")}
    tickets = []
    for index in range(updates):
        for name in ("Cross", "Nought"):
            rng = rngs[name]
            tickets.append(community.node(name).submit_update(
                "ledger", {
                    f"{name.lower()}-k{rng.random_below(8)}":
                        rng.random_below(1 << 16),
                    f"{name.lower()}-stamp": index,
                }
            ))
    if read_ops > 0:
        from repro.core.readcache import bounded, cached, settled

        modes = [cached(), bounded(0.5), settled()]
        for index in range(read_ops):
            community.examine("Witness", "ledger", modes[index % len(modes)])
    for ticket in tickets:
        community.node("Cross").wait_for_pipeline(ticket)
    if read_ops > 0:
        # Post-settlement reads: cached hits against the final state.
        from repro.core.readcache import cached

        for _ in range(read_ops):
            community.examine("Witness", "ledger", cached())
    community.settle()
    community.close()


def _cmd_gateway_sim(args: argparse.Namespace) -> int:
    """Closed-loop client load through the gateway on virtual time."""
    from repro.gateway import (
        CRASH_BREAKER_OPTIONS,
        CrashInjection,
        LoadSimConfig,
        build_gateway_community,
        run_crash_scenario,
        run_load_sim,
    )

    obs = None
    if args.obs or args.crash_org:
        from repro.obs import RecordingInstrumentation

        obs = RecordingInstrumentation()
    breaker_options = None
    if args.crash_org:
        # A crash only trips the breaker through late settlements, so
        # the injected-crash run needs a latency threshold on it.
        breaker_options = dict(CRASH_BREAKER_OPTIONS)
        breaker_options["latency_threshold"] = args.breaker_latency
    community, gateway, object_name = build_gateway_community(
        orgs=args.parties, seed=args.seed, obs=obs,
        rate=args.rate, burst=args.burst,
        queue_capacity=args.queue_capacity,
        max_inflight=args.max_inflight,
        breaker=breaker_options,
        pipeline_options={"max_batch": args.max_batch},
    )
    config = LoadSimConfig(
        clients=args.clients, requests_per_client=args.requests,
        arrival_window=args.arrival_window,
        hot_clients=args.hot_clients, hot_factor=args.hot_factor,
        seed=args.seed,
    )
    live = None
    if args.crash_org:
        crash = CrashInjection(org=args.crash_org, crash_at=args.crash_at,
                               recover_at=args.recover_at)
        stats, live = run_crash_scenario(
            community, gateway, object_name, config, crash,
            watchdog_interval=args.watchdog,
            dump_path=args.flight_dump,
        )
    else:
        stats = run_load_sim(community, gateway, object_name, config)
    state = community.node("Org1").controllers[object_name] \
        .b2b_object.get_state()
    summary = stats.summary()
    latency = summary["latency_s"]
    print(f"clients={args.clients} requests/client={args.requests} "
          f"parties={args.parties} rate={args.rate} seed={args.seed}")
    print(f"  settled valid: {summary['settled_valid']}  "
          f"invalid: {summary['settled_invalid']}  "
          f"replayed: {summary['replayed']}  gave up: {summary['gave_up']}")
    if summary["retries"]:
        rejected = ", ".join(f"{kind}={count}" for kind, count
                             in sorted(summary["retries"].items()))
        print(f"  rejected attempts: {rejected}")
    print(f"  virtual time: {summary['elapsed_virtual_s']:.2f}s  "
          f"throughput: {summary['updates_per_virtual_s']:.0f} updates/s")
    print(f"  settle latency: p50={latency['p50']:.4f}s "
          f"p95={latency['p95']:.4f}s p99={latency['p99']:.4f}s")
    print(f"  agreed state: applied={state['applied']} "
          f"total={state['total']}")
    print(f"  breakers: {gateway.stats()['breakers']}")
    if live is not None:
        breaker = gateway.breaker(object_name)
        print(f"  crash injected: {args.crash_org} down "
              f"{args.crash_at:.2f}s-{args.recover_at:.2f}s (virtual)")
        print(f"  breaker transitions: "
              + (", ".join(f"{old}->{new}@{t:.2f}s"
                           for t, old, new in breaker.transitions) or "-"))
        print(f"  health alerts: "
              + (", ".join(f"{a.rule}[{a.severity}]@{a.time:.2f}s"
                           for a in live.monitor.alerts) or "-"))
        print(f"  health transitions: "
              + (", ".join(f"{old}->{new}@{t:.2f}s"
                           for t, old, new in live.monitor.transitions)
                 or "-"))
        print(f"  node health: {community.node('Org1').health()}")
        if args.flight_dump:
            print(f"  flight recorder dump ({live.flight.recorded} events "
                  f"recorded, last {len(live.flight.events())} retained) "
                  f"written to {args.flight_dump}")
    if obs is not None and args.obs:
        print()
        print(obs.report())
    community.close()
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Instrumented 3-party Tic-Tac-Toe run + per-phase breakdown report."""
    community, objects, rejected, obs, trace_paths = _run_forensic_game(
        seed=args.seed, latency=args.latency, drop=args.drop,
        duplicate=args.duplicate, transport=args.transport,
        tcp_mode=args.tcp_mode, wire_codec=args.wire_codec,
        export_dir=args.export_dir, trace_out=args.trace_out,
    )
    if args.pipeline_updates > 0:
        _run_pipeline_burst(seed=args.seed, updates=args.pipeline_updates,
                            registry=obs.registry,
                            read_ops=args.read_ops)

    if args.json:
        # Machine-readable twin of the text report: the registry
        # snapshot itself, so CI can diff runs structurally.
        payload = {
            "seed": args.seed,
            "transport": args.transport,
            "vetoed_moves": rejected,
            "metrics": obs.registry.snapshot(),
        }
        print(json.dumps(payload, sort_keys=True, default=str))
        return 0

    game = objects["Witness"]
    board = game.board
    transport_label = (f"tcp/{args.tcp_mode}/{args.wire_codec}"
                       if args.transport == "tcp" else args.transport)
    print(f"3-party Tic-Tac-Toe over lossy links "
          f"(transport={transport_label} seed={args.seed} "
          f"drop={args.drop} duplicate={args.duplicate})")
    for row in range(3):
        print("  " + " ".join(cell or "." for cell in board[row * 3:row * 3 + 3]))
    print(f"  winner: {game.winner or '(none)'}  "
          f"vetoed moves: {rejected}")
    if args.pipeline_updates > 0:
        print(f"  pipeline burst: 2 proposers x {args.pipeline_updates} "
              f"updates through the batched write pipeline")
        if args.read_ops > 0:
            print(f"  read burst: {2 * args.read_ops} validated reads "
                  f"(cached/bounded/settled) from the snapshot cache")
    if args.trace_out:
        print(f"  trace records written to {args.trace_out}")
    if args.export_dir:
        print(f"  forensic artefacts (traces, evidence, keys.json) "
              f"under {args.export_dir}")
        for party, path in sorted(trace_paths.items()):
            print(f"    trace[{party}]: {path}")
    print()
    print(obs.report())
    return 0


def _cmd_serve_metrics(args: argparse.Namespace) -> int:
    """Run an instrumented workload and serve its registry over HTTP."""
    import time as _time

    from repro.obs import RecordingInstrumentation
    from repro.obs.live import FlightRecorder, HealthMonitor, TelemetryServer

    obs = RecordingInstrumentation()
    flight = FlightRecorder(args.flight_capacity)
    obs.flight = flight
    for index in range(args.rounds):
        _run_pipeline_burst(seed=args.seed + index, updates=args.updates,
                            registry=obs.registry, flight=flight)
    monitor = HealthMonitor(obs.registry, obs=obs, party="serve-metrics",
                            interval=args.watchdog, flight=flight)
    server = TelemetryServer(obs.registry, monitor=monitor, flight=flight,
                             host=args.host, port=args.port).start()
    monitor.start()
    print(f"serving telemetry at {server.url}")
    print(f"  routes: /metrics /metrics.json /health /flight")
    print(f"  workload: {args.rounds} pipeline burst round(s), "
          f"{flight.recorded} flight events recorded")
    if args.probe:
        import urllib.request

        for route in ("/metrics", "/metrics.json", "/health", "/flight"):
            with urllib.request.urlopen(server.url + route,
                                        timeout=5) as response:
                body = response.read()
            print(f"  probe {route}: {response.status} {len(body)} bytes")
    try:
        if args.probe and args.duration is None:
            pass          # one-shot smoke check: probe, then exit cleanly
        elif args.duration is None:
            print("  serving until interrupted (Ctrl-C)...")
            while True:
                _time.sleep(3600)
        elif args.duration > 0:
            _time.sleep(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        monitor.stop()
        server.stop()
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll a telemetry endpoint and print a compact live view."""
    import time as _time
    import urllib.request

    base = args.url.rstrip("/")
    header = (f"{'health':10s} {'runs':>6s} {'valid':>6s} {'gw adm':>7s} "
              f"{'gw rej':>7s} {'retrans':>7s} {'settle p99 ms':>13s} "
              f"{'alerts':>6s}")
    iterations = args.iterations
    count = 0
    while iterations is None or count < iterations:
        try:
            with urllib.request.urlopen(base + "/metrics.json",
                                        timeout=5) as response:
                payload = json.loads(response.read())
        except OSError as exc:
            print(f"error: cannot reach {base}: {exc}")
            return 1
        metrics = payload.get("metrics", {})
        counters = metrics.get("counters", {})
        histograms = metrics.get("histograms", {})
        health = payload.get("health", {})
        settle = histograms.get("gateway.settle_seconds", {})
        if count % 20 == 0:
            print(header)
        print(f"{health.get('health', 'healthy'):10s} "
              f"{counters.get('protocol.runs.started', 0):>6d} "
              f"{counters.get('protocol.runs.valid', 0):>6d} "
              f"{counters.get('gateway.admitted', 0):>7d} "
              f"{counters.get('gateway.rejected', 0):>7d} "
              f"{counters.get('transport.retransmissions', 0):>7d} "
              f"{settle.get('p99', 0.0) * 1000.0:>13.2f} "
              f"{len(health.get('alerts', [])):>6d}")
        count += 1
        if iterations is None or count < iterations:
            _time.sleep(args.interval)
    return 0


def _cmd_flight_dump(args: argparse.Namespace) -> int:
    """Fetch a node's flight-recorder ring as JSONL."""
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/flight"
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        print(f"error: {url} answered {exc.code} "
              f"(no flight recorder attached?)")
        return 1
    except OSError as exc:
        print(f"error: cannot reach {url}: {exc}")
        return 1
    text = body.decode("utf-8")
    events = [line for line in text.splitlines() if line.strip()]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(events)} flight event(s) to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Forensic audit: evidence re-verification + merged causal timeline."""
    from repro.crypto.rsa import RsaPublicKey
    from repro.crypto.signature import RsaVerifier
    from repro.errors import SignatureError
    from repro.obs.audit import audit_evidence, load_evidence_log
    from repro.obs.merge import merge_trace_files, render_timeline

    with open(args.keys, encoding="utf-8") as handle:
        key_data = json.load(handle)
    verifiers = {
        party: RsaVerifier(RsaPublicKey.from_dict(key))
        for party, key in key_data.get("parties", {}).items()
    }
    tsa_verifier = None
    if key_data.get("tsa"):
        tsa_verifier = RsaVerifier(RsaPublicKey.from_dict(key_data["tsa"]))

    def resolver(party_id: str):
        verifier = verifiers.get(party_id)
        if verifier is None:
            raise SignatureError(f"no public key on file for {party_id!r}")
        return verifier

    logs = {}
    for spec in args.log:
        party, sep, path = spec.partition("=")
        if not sep or not party or not path:
            print(f"error: --log expects PARTY=PATH, got {spec!r}")
            return 2
        logs[party] = load_evidence_log(party, path)

    merged = None
    if args.trace:
        merged = merge_trace_files(args.trace)
        if args.merged_out:
            with open(args.merged_out, "w", encoding="utf-8") as handle:
                for record in merged.events:
                    handle.write(json.dumps(record, sort_keys=True,
                                            default=str) + "\n")
            print(f"merged timeline ({len(merged.events)} events) "
                  f"written to {args.merged_out}")
        if args.timeline:
            print(render_timeline(merged, max_events=args.timeline_events))
            print()

    report = audit_evidence(logs, resolver, tsa_verifier=tsa_verifier,
                            merged=merged)
    print(report.render())

    if args.expect_culprit:
        culprits = report.culprits()
        if args.expect_culprit in culprits:
            print(f"\nexpected culprit {args.expect_culprit!r} convicted")
            return 0
        print(f"\nFAILED: expected culprit {args.expect_culprit!r} "
              f"not among {culprits}")
        return 1
    return 0


_DEMOS = {
    "quickstart": "examples/quickstart.py",
    "tictactoe": "examples/tictactoe_demo.py",
    "ttp": "examples/ttp_tictactoe_demo.py",
    "orders": "examples/order_processing_demo.py",
    "auction": "examples/auction_demo.py",
    "dependability": "examples/dependability_demo.py",
}


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib

    module_name = {
        "quickstart": "quickstart",
        "tictactoe": "tictactoe_demo",
        "ttp": "ttp_tictactoe_demo",
        "orders": "order_processing_demo",
        "auction": "auction_demo",
        "dependability": "dependability_demo",
    }[args.name]
    import os
    examples_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))), "examples",
    )
    if examples_dir not in sys.path:
        sys.path.insert(0, examples_dir)
    module = importlib.import_module(module_name)
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="B2BObjects middleware tools (DSN 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify-log",
                            help="verify a non-repudiation log's hash chain")
    verify.add_argument("path")
    verify.add_argument("--owner", default="unknown")
    verify.set_defaults(func=_cmd_verify_log)

    show = sub.add_parser("show-log", help="list evidence log entries")
    show.add_argument("path")
    show.add_argument("--owner", default="unknown")
    show.add_argument("--kind", default=None,
                      help="filter by entry kind (e.g. authenticated-decision)")
    show.set_defaults(func=_cmd_show_log)

    export = sub.add_parser(
        "export-decisions",
        help="dump authenticated-decision bundles for arbitration",
    )
    export.add_argument("path")
    export.add_argument("--owner", default="unknown")
    export.add_argument("--out", required=True)
    export.set_defaults(func=_cmd_export_decisions)

    verify_bundle = sub.add_parser(
        "verify-bundle",
        help="independently verify an exported decision bundle",
    )
    verify_bundle.add_argument("bundle")
    verify_bundle.add_argument(
        "--keys", required=True,
        help='JSON file: {"parties": {id: public-key}, "tsa": public-key}',
    )
    verify_bundle.set_defaults(func=_cmd_verify_bundle)

    keygen = sub.add_parser("keygen", help="generate an RSA signing key pair")
    keygen.add_argument("--id", required=True, dest="id")
    keygen.add_argument("--bits", type=int, default=512)
    keygen.add_argument("--out", default=None)
    keygen.set_defaults(func=_cmd_keygen)

    simulate = sub.add_parser(
        "simulate", help="run a coordination workload on the simulator"
    )
    simulate.add_argument("--parties", type=int, default=3)
    simulate.add_argument("--updates", type=int, default=10)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--latency", type=float, default=0.01)
    simulate.add_argument("--jitter", type=float, default=0.0)
    simulate.add_argument("--drop", type=float, default=0.0)
    simulate.add_argument("--duplicate", type=float, default=0.0)
    simulate.add_argument("--fault", choices=["none", "crash", "partition"],
                          default="none")
    simulate.add_argument("--failures", type=int, default=0)
    simulate.add_argument("--workload", choices=["counter", "random"],
                          default="counter",
                          help="counter: fixed sequential states; random: "
                               "seeded random states (varies with --seed)")
    simulate.add_argument("--obs", action="store_true",
                          help="record metrics and print the obs report")
    simulate.set_defaults(func=_cmd_simulate)

    gateway_sim = sub.add_parser(
        "gateway-sim",
        help="closed-loop client load through the gateway on the simulator",
    )
    gateway_sim.add_argument("--clients", type=int, default=1000)
    gateway_sim.add_argument("--requests", type=int, default=1,
                             help="requests per client (closed loop)")
    gateway_sim.add_argument("--parties", type=int, default=2)
    gateway_sim.add_argument("--seed", type=int, default=0)
    gateway_sim.add_argument("--rate", type=float, default=None,
                             help="per-client token refill rate "
                                  "(tokens/s; default: no rate limit)")
    gateway_sim.add_argument("--burst", type=float, default=16.0)
    gateway_sim.add_argument("--queue-capacity", type=int, default=4096)
    gateway_sim.add_argument("--max-inflight", type=int, default=512)
    gateway_sim.add_argument("--max-batch", type=int, default=256,
                             help="pipeline batch bound behind the gateway")
    gateway_sim.add_argument("--arrival-window", type=float, default=2.0,
                             help="seconds over which client start times "
                                  "are spread")
    gateway_sim.add_argument("--hot-clients", type=int, default=0,
                             help="clients that submit --hot-factor times "
                                  "the normal load")
    gateway_sim.add_argument("--hot-factor", type=int, default=10)
    gateway_sim.add_argument("--obs", action="store_true",
                             help="record metrics and print the obs report")
    gateway_sim.add_argument("--crash-org", default=None,
                             help="inject a crash of this organisation "
                                  "(e.g. Org2); arms the live telemetry "
                                  "watchdog on the gateway node")
    gateway_sim.add_argument("--crash-at", type=float, default=1.0,
                             help="virtual time of the injected crash")
    gateway_sim.add_argument("--recover-at", type=float, default=4.0,
                             help="virtual time of the recovery")
    gateway_sim.add_argument("--watchdog", type=float, default=0.5,
                             help="health watchdog evaluation interval "
                                  "(virtual seconds)")
    gateway_sim.add_argument("--breaker-latency", type=float, default=1.0,
                             help="settle-latency threshold (s) that trips "
                                  "the breaker during the crash run")
    gateway_sim.add_argument("--flight-dump", default=None,
                             help="dump the flight-recorder ring to this "
                                  "JSONL file when a health alert fires")
    gateway_sim.set_defaults(func=_cmd_gateway_sim)

    obs_report = sub.add_parser(
        "obs-report",
        help="instrumented Tic-Tac-Toe run with a per-phase breakdown",
    )
    obs_report.add_argument("--seed", type=int, default=0)
    obs_report.add_argument("--latency", type=float, default=0.005)
    obs_report.add_argument("--drop", type=float, default=0.1)
    obs_report.add_argument("--duplicate", type=float, default=0.05)
    obs_report.add_argument("--trace-out", default=None,
                            help="also write trace records to this JSONL file")
    obs_report.add_argument("--transport", choices=["sim", "tcp"],
                            default="sim",
                            help="sim: deterministic virtual time; "
                                 "tcp: real sockets with injected loss")
    obs_report.add_argument("--tcp-mode",
                            choices=["pooled", "per-message", "reactor"],
                            default="pooled",
                            help="pooled: persistent per-peer connections "
                                 "with frame coalescing (default); "
                                 "per-message: one short-lived connection "
                                 "per frame (the original prototype); "
                                 "reactor: one selector event-loop thread "
                                 "owning all sockets and timers")
    obs_report.add_argument("--wire-codec", choices=["json", "binary"],
                            default="json",
                            help="frame codec for --transport tcp: json "
                                 "(canonical JSON lines, the original "
                                 "format) or binary (length-prefixed tag "
                                 "codec; signatures stay canonical JSON)")
    obs_report.add_argument("--export-dir", default=None,
                            help="write per-party traces, evidence logs and "
                                 "keys.json under this directory "
                                 "(the input set for `repro audit`)")
    obs_report.add_argument("--pipeline-updates", type=int, default=8,
                            help="updates per proposer in the contended "
                                 "pipeline burst that follows the game "
                                 "(feeds the proposal-pipeline section; "
                                 "0 disables)")
    obs_report.add_argument("--read-ops", type=int, default=0,
                            help="validated reads issued against the burst "
                                 "ledger, cycling cached/bounded/settled "
                                 "consistency modes (feeds the read-cache "
                                 "section; 0 disables)")
    obs_report.add_argument("--json", action="store_true",
                            help="emit the registry snapshot as JSON "
                                 "instead of the text report")
    obs_report.set_defaults(func=_cmd_obs_report)

    serve_metrics = sub.add_parser(
        "serve-metrics",
        help="run an instrumented workload and serve its metrics "
             "(Prometheus + JSON) over HTTP",
    )
    serve_metrics.add_argument("--host", default="127.0.0.1")
    serve_metrics.add_argument("--port", type=int, default=0,
                               help="listen port (0: ephemeral)")
    serve_metrics.add_argument("--rounds", type=int, default=1,
                               help="pipeline burst rounds to run before "
                                    "serving")
    serve_metrics.add_argument("--updates", type=int, default=8,
                               help="updates per proposer per round")
    serve_metrics.add_argument("--seed", type=int, default=0)
    serve_metrics.add_argument("--watchdog", type=float, default=1.0,
                               help="health watchdog interval (seconds)")
    serve_metrics.add_argument("--flight-capacity", type=int, default=2048)
    serve_metrics.add_argument("--duration", type=float, default=None,
                               help="serve for this many seconds then exit "
                                    "(default: until Ctrl-C)")
    serve_metrics.add_argument("--probe", action="store_true",
                               help="self-scrape each route once, print the "
                                    "status and exit unless --duration is "
                                    "given (smoke check)")
    serve_metrics.set_defaults(func=_cmd_serve_metrics)

    top = sub.add_parser(
        "top",
        help="poll a telemetry endpoint and print a compact live view",
    )
    top.add_argument("--url", required=True,
                     help="base endpoint URL (e.g. http://127.0.0.1:9464)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between polls")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after this many polls (default: forever)")
    top.set_defaults(func=_cmd_top)

    flight_dump = sub.add_parser(
        "flight-dump",
        help="fetch a node's flight-recorder ring as JSONL",
    )
    flight_dump.add_argument("--url", required=True,
                             help="base endpoint URL of the node")
    flight_dump.add_argument("--out", default=None,
                             help="write to this file (default: stdout)")
    flight_dump.set_defaults(func=_cmd_flight_dump)

    audit = sub.add_parser(
        "audit",
        help="forensic audit: re-verify evidence, merge traces, "
             "name misbehaving parties",
    )
    audit.add_argument(
        "--keys", required=True,
        help='JSON file: {"parties": {id: public-key}, "tsa": public-key}',
    )
    audit.add_argument(
        "--log", action="append", default=[], metavar="PARTY=PATH",
        help="one party's evidence log (repeatable)",
    )
    audit.add_argument(
        "--trace", action="append", default=[], metavar="PATH",
        help="a party's JSONL trace export (repeatable)",
    )
    audit.add_argument("--merged-out", default=None,
                       help="write the merged causal timeline to this "
                            "JSONL file")
    audit.add_argument("--timeline", action="store_true",
                       help="print the merged causal timeline before "
                            "the audit report")
    audit.add_argument("--timeline-events", type=int, default=None,
                       help="cap events shown per run in the timeline")
    audit.add_argument("--expect-culprit", default=None,
                       help="exit non-zero unless this party is convicted")
    audit.set_defaults(func=_cmd_audit)

    demo = sub.add_parser("demo", help="run a built-in demo scenario")
    demo.add_argument("name", choices=sorted(_DEMOS))
    demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: "Optional[list[str]]" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
