"""Per-party protocol facade.

:class:`ProtocolParty` owns every protocol engine of one organisation —
a state-coordination engine and a membership engine per shared object,
plus join clients for objects the organisation is connecting to — and
routes inbound messages to the right engine.  It is still sans-IO; the
runtimes in :mod:`repro.core` pump its outputs onto a transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import MembershipError, NotConnectedError
from repro.protocol.context import PartyContext
from repro.protocol.coordination import StateCoordinationEngine
from repro.protocol.events import DisconnectionDecided, Output
from repro.protocol.group import ROTATING, GroupView
from repro.protocol.ids import GroupId, StateId
from repro.protocol.membership import (
    CertificateResolver,
    JoinClient,
    MembershipEngine,
)
from repro.protocol.messages import (
    COMMIT,
    CONNECT_COMMIT,
    CONNECT_PROPOSE,
    CONNECT_REJECT,
    CONNECT_REQUEST,
    CONNECT_RESPOND,
    CONNECT_WELCOME,
    DISCONNECT_COMMIT,
    DISCONNECT_NOTICE,
    DISCONNECT_PROPOSE,
    DISCONNECT_REQUEST,
    DISCONNECT_RESPOND,
    EVICT_REQUEST,
    PROPOSE,
    RESPOND,
    SPONSOR_INFO,
    SPONSOR_QUERY,
)
from repro.protocol.validation import StateMerger, Validator

_STATE_TYPES = {PROPOSE, RESPOND, COMMIT}
_MEMBER_TYPES = {
    CONNECT_REQUEST, CONNECT_PROPOSE, CONNECT_RESPOND, CONNECT_COMMIT,
    DISCONNECT_REQUEST, DISCONNECT_PROPOSE, DISCONNECT_RESPOND,
    DISCONNECT_COMMIT, DISCONNECT_NOTICE, EVICT_REQUEST, SPONSOR_QUERY,
}
_JOIN_TYPES = {CONNECT_WELCOME, CONNECT_REJECT, SPONSOR_INFO}


def extract_object_name(message: dict) -> "Optional[str]":
    """Pull the target object name out of any protocol message."""
    if "object" in message:
        return str(message["object"])
    for key in ("proposal", "response", "part"):
        part = message.get(key)
        if isinstance(part, dict):
            payload = part.get("payload", {})
            if isinstance(payload, dict) and "object" in payload:
                return str(payload["object"])
    return None


@dataclass
class ObjectSession:
    """A party's engines for one shared object."""

    state: StateCoordinationEngine
    membership: MembershipEngine
    detached: bool = False

    @property
    def object_name(self) -> str:
        return self.state.object_name

    @property
    def group(self) -> GroupView:
        return self.state.group


@dataclass
class _PendingJoin:
    client: JoinClient
    validator: "Validator | None"
    merger: "StateMerger | None"
    sponsor_mode: str


class ProtocolParty:
    """All protocol engines of one organisation, with message routing."""

    def __init__(self, ctx: PartyContext,
                 certificate_resolver: "CertificateResolver | None" = None) -> None:
        self.ctx = ctx
        self.certificate_resolver = certificate_resolver
        self.sessions: "dict[str, ObjectSession]" = {}
        self._pending_joins: "dict[str, _PendingJoin]" = {}

    @property
    def party_id(self) -> str:
        return self.ctx.party_id

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------

    def create_object(self, object_name: str, members: "list[str]",
                      initial_state: Any,
                      validator: "Validator | None" = None,
                      merger: "StateMerger | None" = None,
                      sponsor_mode: str = ROTATING,
                      reject_null_transitions: bool = True,
                      engine_cls: "type[StateCoordinationEngine]" = StateCoordinationEngine
                      ) -> ObjectSession:
        """Found (or locally instantiate) a shared object.

        Every founding member calls this with identical arguments, giving
        all replicas the same genesis state/group identifiers.
        *engine_cls* selects the coordination variant (the default is the
        paper's unanimity protocol; see :mod:`repro.extensions`).
        """
        if object_name in self.sessions:
            raise MembershipError(f"object {object_name!r} already exists here")
        if self.party_id not in members:
            raise MembershipError("the local party must be a member")
        group = GroupView(object_name, members, sponsor_mode=sponsor_mode)
        state = engine_cls(
            self.ctx, group, initial_state, validator=validator, merger=merger,
            reject_null_transitions=reject_null_transitions,
        )
        membership = MembershipEngine(
            self.ctx, state, validator=validator,
            certificate_resolver=self.certificate_resolver,
        )
        session = ObjectSession(state=state, membership=membership)
        self.sessions[object_name] = session
        self._checkpoint_group(object_name, group)
        return session

    def _checkpoint_group(self, object_name: str, group: GroupView) -> None:
        """Persist the group view so a restart can rebuild membership."""
        key = f"{object_name}::group"
        latest = self.ctx.checkpoints.latest(key)
        if latest is None or group.group_id.seq > latest.sequence:
            self.ctx.checkpoints.save(
                key, group.group_id.to_dict(),
                {"members": list(group.members),
                 "gid": group.group_id.to_dict(),
                 "sponsor_mode": group.sponsor_mode},
            )

    def restore_object(self, object_name: str,
                       validator: "Validator | None" = None,
                       merger: "StateMerger | None" = None,
                       reject_null_transitions: bool = True,
                       engine_cls: "type[StateCoordinationEngine]" = StateCoordinationEngine
                       ) -> "tuple[ObjectSession, Output]":
        """Rebuild a session from durable state after a process restart.

        Restores the agreed state and group view from the checkpoint
        store, then resumes any in-flight protocol runs from the journal.
        Returns the session plus the output (resent messages, events) the
        caller must process.
        """
        if object_name in self.sessions:
            raise MembershipError(f"object {object_name!r} already exists here")
        state_ckpt = self.ctx.checkpoints.require_latest(object_name)
        group_ckpt = self.ctx.checkpoints.require_latest(f"{object_name}::group")
        group = GroupView(
            object_name,
            [str(m) for m in group_ckpt.state["members"]],
            group_id=GroupId.from_dict(group_ckpt.state["gid"]),
            sponsor_mode=str(group_ckpt.state.get("sponsor_mode", ROTATING)),
        )
        state = engine_cls(
            self.ctx, group, state_ckpt.state,
            validator=validator, merger=merger,
            reject_null_transitions=reject_null_transitions,
            initial_sid=StateId.from_dict(state_ckpt.state_id),
        )
        membership = MembershipEngine(
            self.ctx, state, validator=validator,
            certificate_resolver=self.certificate_resolver,
        )
        session = ObjectSession(state=state, membership=membership)
        self.sessions[object_name] = session
        output = state.recover_runs()
        return session, output

    def join_object(self, object_name: str, sponsor: "str | None" = None,
                    certificate: "dict | None" = None,
                    validator: "Validator | None" = None,
                    merger: "StateMerger | None" = None,
                    sponsor_mode: str = ROTATING,
                    via: "str | None" = None) -> Output:
        """Request admission to an existing shared object (section 4.5.3).

        Either name the *sponsor* directly, or pass any known member as
        *via* — the member identifies the legitimate sponsor and the
        request follows automatically.
        """
        if object_name in self.sessions:
            raise MembershipError(f"already connected to {object_name!r}")
        if object_name in self._pending_joins:
            raise MembershipError(f"join already pending for {object_name!r}")
        if (sponsor is None) == (via is None):
            raise MembershipError("name exactly one of sponsor or via")
        client = JoinClient(self.ctx, object_name, certificate=certificate)
        self._pending_joins[object_name] = _PendingJoin(
            client=client, validator=validator, merger=merger,
            sponsor_mode=sponsor_mode,
        )
        if via is not None:
            return client.request_connect_via(via)
        return client.request_connect(sponsor)

    def session(self, object_name: str) -> ObjectSession:
        session = self.sessions.get(object_name)
        if session is None or session.detached:
            raise NotConnectedError(
                f"{self.party_id} is not connected to object {object_name!r}"
            )
        return session

    def is_connected(self, object_name: str) -> bool:
        session = self.sessions.get(object_name)
        return session is not None and not session.detached

    # ------------------------------------------------------------------
    # message routing
    # ------------------------------------------------------------------

    def handle(self, sender: str, message: dict) -> Output:
        msg_type = message.get("msg_type")
        object_name = extract_object_name(message)
        if object_name is None:
            return Output()
        session = self.sessions.get(object_name)
        if msg_type in _STATE_TYPES:
            if session is None or session.detached:
                return Output()
            return session.state.handle(sender, message)
        if msg_type in _JOIN_TYPES and object_name in self._pending_joins:
            return self._handle_join_message(object_name, sender, message)
        if msg_type in _MEMBER_TYPES or msg_type in _JOIN_TYPES:
            if session is None or session.detached:
                return Output()
            output = session.membership.handle(sender, message)
            self._absorb_departure(session, output)
            return output
        return Output()

    def _handle_join_message(self, object_name: str, sender: str,
                             message: dict) -> Output:
        pending = self._pending_joins[object_name]
        output = pending.client.handle(sender, message)
        outcome = pending.client.outcome
        if outcome is None:
            return output
        del self._pending_joins[object_name]
        if outcome.accepted:
            self._install_joined_session(object_name, pending)
        return output

    def _install_joined_session(self, object_name: str,
                                pending: _PendingJoin) -> None:
        client = pending.client
        assert client.welcome_members is not None
        assert client.welcome_gid is not None and client.welcome_sid is not None
        group = GroupView(
            object_name, client.welcome_members,
            group_id=client.welcome_gid, sponsor_mode=pending.sponsor_mode,
        )
        state = StateCoordinationEngine(
            self.ctx, group, client.welcome_state,
            validator=pending.validator, merger=pending.merger,
            initial_sid=client.welcome_sid,
        )
        membership = MembershipEngine(
            self.ctx, state, validator=pending.validator,
            certificate_resolver=self.certificate_resolver,
        )
        self.sessions[object_name] = ObjectSession(state=state,
                                                   membership=membership)
        self._checkpoint_group(object_name, group)

    def _absorb_departure(self, session: ObjectSession, output: Output) -> None:
        """Detach the session once our voluntary disconnection concludes."""
        for event in output.events:
            if isinstance(event, DisconnectionDecided):
                session.detached = True

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def check_progress(self, timeout: float) -> Output:
        output = Output()
        for session in self.sessions.values():
            if session.detached:
                continue
            output.merge(session.state.check_progress(timeout))
            output.merge(session.membership.check_progress(timeout))
        return output

    def resend_outstanding(self) -> Output:
        """Re-emit in-flight messages after a crash or long partition."""
        output = Output()
        for session in self.sessions.values():
            if session.detached:
                continue
            output.merge(session.state.resend_outstanding())
            output.merge(session.membership.resend_outstanding())
        for pending in self._pending_joins.values():
            output.merge(pending.client.resend_request())
        return output

    def pending_join(self, object_name: str) -> "Optional[JoinClient]":
        pending = self._pending_joins.get(object_name)
        return pending.client if pending else None
