"""Baseline comparator: plain (non-signed) two-phase commit replication.

The paper positions its protocol as "non-repudiable two-phase commit"
(section 4.3).  This module implements the *repudiable* version — the
same three message steps and unanimity rule with no signatures, no
time-stamps, no evidence logging — so benchmarks can isolate the cost of
the non-repudiation machinery (experiment C4 in DESIGN.md).

It shares the sans-IO :class:`~repro.protocol.events.Output` shape so the
benchmark harness drives both protocols identically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.crypto.hashing import hash_value
from repro.errors import ConcurrencyError
from repro.protocol.events import Output, RunCompleted, StateInstalled, StateRolledBack

PLAIN_PROPOSE = "plain_propose"
PLAIN_VOTE = "plain_vote"
PLAIN_COMMIT = "plain_commit"

PlainValidator = Callable[[Any, Any, str], bool]


@dataclass
class _PlainRun:
    run_id: str
    role: str
    proposer: str
    new_state: Any
    recipients: "list[str]"
    votes: "dict[str, bool]" = field(default_factory=dict)
    outcome: "Optional[str]" = None


class PlainTwoPhaseEngine:
    """Unsigned 2PC state replication for one party and one object."""

    def __init__(self, party_id: str, object_name: str,
                 members: "list[str]", initial_state: Any,
                 validator: "PlainValidator | None" = None) -> None:
        self.party_id = party_id
        self.object_name = object_name
        self.members = list(members)
        self.state = initial_state
        self.pending_state: Any = None
        self.validator = validator or (lambda proposed, current, proposer: True)
        self._runs: "dict[str, _PlainRun]" = {}
        self._active: "Optional[str]" = None
        self._seq = itertools.count(1)

    @property
    def busy(self) -> bool:
        return self._active is not None

    def propose(self, new_state: Any) -> "tuple[str, Output]":
        if self.busy:
            raise ConcurrencyError(f"{self.party_id}: plain run already active")
        output = Output()
        run_id = hash_value(
            ["plain-run", self.object_name, self.party_id, next(self._seq)]
        ).hex()
        recipients = [m for m in self.members if m != self.party_id]
        run = _PlainRun(
            run_id=run_id, role="proposer", proposer=self.party_id,
            new_state=new_state, recipients=recipients,
        )
        self._runs[run_id] = run
        self._active = run_id
        self.pending_state = new_state
        message = {
            "msg_type": PLAIN_PROPOSE,
            "object": self.object_name,
            "run_id": run_id,
            "proposer": self.party_id,
            "state": new_state,
        }
        for recipient in recipients:
            output.send(recipient, message)
        if not recipients:
            self._finish(run, True, output)
        return run_id, output

    def handle(self, sender: str, message: dict) -> Output:
        msg_type = message.get("msg_type")
        if msg_type == PLAIN_PROPOSE:
            return self._on_propose(sender, message)
        if msg_type == PLAIN_VOTE:
            return self._on_vote(sender, message)
        if msg_type == PLAIN_COMMIT:
            return self._on_commit(sender, message)
        return Output()

    def _on_propose(self, sender: str, message: dict) -> Output:
        output = Output()
        run_id = str(message.get("run_id", ""))
        if run_id in self._runs:
            return output
        new_state = message.get("state")
        accept = (not self.busy) and bool(
            self.validator(new_state, self.state, sender)
        )
        run = _PlainRun(
            run_id=run_id, role="responder", proposer=sender,
            new_state=new_state, recipients=[],
        )
        self._runs[run_id] = run
        if accept:
            self._active = run_id
        output.send(sender, {
            "msg_type": PLAIN_VOTE,
            "object": self.object_name,
            "run_id": run_id,
            "voter": self.party_id,
            "accept": accept,
        })
        return output

    def _on_vote(self, sender: str, message: dict) -> Output:
        output = Output()
        run = self._runs.get(str(message.get("run_id", "")))
        if run is None or run.role != "proposer" or run.outcome is not None:
            return output
        if sender not in run.recipients or sender in run.votes:
            return output
        run.votes[sender] = bool(message.get("accept", False))
        if set(run.votes) == set(run.recipients):
            valid = all(run.votes.values())
            commit = {
                "msg_type": PLAIN_COMMIT,
                "object": self.object_name,
                "run_id": run.run_id,
                "valid": valid,
            }
            for recipient in run.recipients:
                output.send(recipient, commit)
            self._finish(run, valid, output)
        return output

    def _on_commit(self, sender: str, message: dict) -> Output:
        output = Output()
        run = self._runs.get(str(message.get("run_id", "")))
        if run is None or run.outcome is not None:
            return output
        self._finish(run, bool(message.get("valid", False)), output)
        return output

    def _finish(self, run: _PlainRun, valid: bool, output: Output) -> None:
        run.outcome = "valid" if valid else "invalid"
        if self._active == run.run_id:
            self._active = None
        if valid:
            self.state = run.new_state
            if run.role == "proposer":
                self.pending_state = None
            output.emit(StateInstalled(
                object_name=self.object_name, state_id={},
                state=self.state, run_id=run.run_id,
            ))
        elif run.role == "proposer":
            self.pending_state = None
            output.emit(StateRolledBack(
                object_name=self.object_name, state_id={},
                state=self.state, run_id=run.run_id,
            ))
        output.emit(RunCompleted(
            run_id=run.run_id, object_name=self.object_name, kind="state",
            valid=valid, role=run.role,
        ))
