"""Protocol message formats (sections 4.3 and 4.5).

All protocol messages are dictionaries with a ``msg_type`` discriminator.
Signed content travels as a :class:`SignedPart`: the canonical payload,
the producer's signature over it, and a trusted time-stamp token over the
signature (section 4.2 requires all signed evidence to be time-stamped).

The three state-coordination steps:

``m1 (propose)``  proposal + proposed state/update + sig_prop(proposal)
``m2 (respond)``  receipt + signed decision from each recipient
``m3 (commit)``   the authenticator preimage + every signed response +
                  the signed proposal — the complete evidence bundle.
                  ``m3`` needs no signature: only the proposer can produce
                  the preimage of the commitment sent (signed) in ``m1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.crypto.hashing import hash_value
from repro.crypto.signature import Signature, Signer, Verifier
from repro.crypto.timestamp import TimestampService, TimestampToken, verify_timestamp
from repro.errors import InconsistentMessageError, TimestampError
from repro.protocol.ids import GroupId, StateId
from repro.protocol.validation import Decision

# msg_type discriminators ------------------------------------------------

PROPOSE = "propose"
RESPOND = "respond"
COMMIT = "commit"

CONNECT_REQUEST = "connect_request"
CONNECT_PROPOSE = "connect_propose"
CONNECT_RESPOND = "connect_respond"
CONNECT_COMMIT = "connect_commit"
CONNECT_WELCOME = "connect_welcome"
CONNECT_REJECT = "connect_reject"

DISCONNECT_REQUEST = "disconnect_request"
DISCONNECT_PROPOSE = "disconnect_propose"
DISCONNECT_RESPOND = "disconnect_respond"
DISCONNECT_COMMIT = "disconnect_commit"
DISCONNECT_NOTICE = "disconnect_notice"

EVICT_REQUEST = "evict_request"

# Sponsor discovery (section 4.5.3: "any member of P can identify the
# legitimate sponsor for a connection request and provide this
# information to the subject of a request").  Advisory, unsigned.
SPONSOR_QUERY = "sponsor_query"
SPONSOR_INFO = "sponsor_info"

MODE_OVERWRITE = "overwrite"
MODE_UPDATE = "update"
# Batched update mode: the m1 body is an ordered *list* of update values
# applied left-to-right as one state transition.  Everything else about
# the run is unchanged — one state identifier, one signed proposal, one
# signature per phase — so a batch amortises the 3(n-1) message cost and
# the RSA signing cost over every update it carries.
MODE_UPDATE_BATCH = "update_batch"

#: Modes whose m1 body is an update (single or batched) rather than the
#: full new state; these proposals carry ``H(body)`` as ``update_hash``.
UPDATE_MODES = (MODE_UPDATE, MODE_UPDATE_BATCH)

# Cross-party causal tracing (repro.obs.trace).  The context rides as a
# top-level field of the wire message, *outside* every SignedPart, so
# attaching it never perturbs signatures, digests or golden evidence —
# it is diagnostic metadata with no protocol authority.
TRACE_CTX = "trace_ctx"

VerifierResolver = Callable[[str], Verifier]


def attach_trace_context(message: dict, ctx_dict: "dict | None") -> dict:
    """Set (or replace) the unsigned causal context on a wire message."""
    if ctx_dict is not None:
        message[TRACE_CTX] = ctx_dict
    return message


def extract_trace_context(message: dict) -> "Optional[dict]":
    """Read the carried causal context, if any (absent for old peers)."""
    raw = message.get(TRACE_CTX)
    return raw if isinstance(raw, dict) else None


@dataclass(frozen=True)
class SignedPart:
    """A signed, time-stamped protocol payload."""

    payload: dict
    signature: Signature
    timestamp: "Optional[TimestampToken]"

    def to_dict(self) -> dict:
        return {
            "payload": self.payload,
            "signature": self.signature.to_dict(),
            "timestamp": self.timestamp.to_dict() if self.timestamp else None,
        }

    @staticmethod
    def from_dict(data: dict) -> "SignedPart":
        timestamp = data.get("timestamp")
        return SignedPart(
            payload=dict(data["payload"]),
            signature=Signature.from_dict(data["signature"]),
            timestamp=TimestampToken.from_dict(timestamp) if timestamp else None,
        )

    @property
    def signer(self) -> str:
        return self.signature.signer

    def digest(self) -> bytes:
        """Hash of the signed payload; links follow-up messages to it.

        Memoised: the m1/m2/m3 hot path digests the same part many
        times (proposal checks, response binding, evidence trails), and
        ``hash_value`` re-canonicalises the whole payload on every
        call.  The payload dict is treated as frozen once the part is
        built — nothing in the protocol mutates a constructed
        ``SignedPart`` — so the first result is cached on the instance.
        The dataclass is frozen, hence the ``object.__setattr__``; a
        race between threads only computes the same bytes twice.
        """
        cached = self.__dict__.get("_digest_cache")
        if cached is None:
            cached = hash_value(self.payload)
            object.__setattr__(self, "_digest_cache", cached)
        return cached


def make_signed(payload: dict, signer: Signer,
                tsa: "TimestampService | None") -> SignedPart:
    """Sign a payload and time-stamp the signature."""
    signature = signer.sign(payload)
    token = tsa.stamp(signature.to_dict()) if tsa is not None else None
    return SignedPart(payload=payload, signature=signature, timestamp=token)


def verify_signed(part: SignedPart, resolver: VerifierResolver,
                  tsa_verifier: "Verifier | None" = None,
                  expected_signer: "str | None" = None,
                  context: str = "") -> None:
    """Verify a :class:`SignedPart` end to end.

    Checks (1) the claimed signer matches expectations, (2) the signature
    verifies under the *resolved* key for that party (never the key the
    message itself might carry), and (3) the time-stamp token covers the
    signature and verifies under the trusted TSA key.
    """
    signer = part.signature.signer
    if expected_signer is not None and signer != expected_signer:
        raise InconsistentMessageError(
            f"{context}: signed by {signer!r}, expected {expected_signer!r}"
        )
    verifier = resolver(signer)
    verifier.require(part.payload, part.signature, context or "signed part")
    if part.timestamp is not None:
        if tsa_verifier is None:
            raise TimestampError(f"{context}: no TSA verifier available")
        verify_timestamp(part.timestamp, part.signature.to_dict(), tsa_verifier)


# -------------------------------------------------------------------------
# State coordination payload builders (section 4.3)
# -------------------------------------------------------------------------


def build_proposal(proposer: str, object_name: str, gid: GroupId,
                   agreed_sid: StateId, new_sid: StateId,
                   auth_commitment: bytes, mode: str,
                   update_hash: "bytes | None" = None) -> dict:
    """``prop`` — the signed core of ``m1``.

    Identifies proposer and group, specifies the transition
    ``T_agreed -> T_new`` and carries ``H(auth)``, the proposer's
    commitment to the random authenticator of the group's decision.
    """
    if mode not in (MODE_OVERWRITE,) + UPDATE_MODES:
        raise ValueError(f"unknown proposal mode {mode!r}")
    payload = {
        "type": "state-proposal",
        "proposer": proposer,
        "object": object_name,
        "gid": gid.to_dict(),
        "agreed_sid": agreed_sid.to_dict(),
        "new_sid": new_sid.to_dict(),
        "auth_commitment": auth_commitment,
        "mode": mode,
    }
    if mode in UPDATE_MODES:
        if update_hash is None:
            raise ValueError("update mode requires an update hash")
        payload["update_hash"] = update_hash
    return payload


def build_response(responder: str, object_name: str, proposal_digest: bytes,
                   new_sid: StateId, body_hash: bytes, decision: Decision,
                   gid: GroupId, agreed_sid: StateId,
                   current_sid: StateId) -> dict:
    """``resp_j`` — the signed core of ``m2``.

    Echoes the proposal linkage (its digest and ``T_new``), asserts the
    hash of the body as actually received (``H(S_new)`` or ``H(U_new)``),
    carries the responder's decision, and exposes the responder's own
    ``G_j / T_agreed_j / T_current_j`` views for the systematic
    consistency checks of section 4.2.
    """
    return {
        "type": "state-response",
        "responder": responder,
        "object": object_name,
        "proposal_digest": proposal_digest,
        "new_sid": new_sid.to_dict(),
        "body_hash": body_hash,
        "decision": decision.to_dict(),
        "gid": gid.to_dict(),
        "agreed_sid": agreed_sid.to_dict(),
        "current_sid": current_sid.to_dict(),
    }


def propose_message(proposal: SignedPart, body: Any) -> dict:
    """Wire form of ``m1``: the signed proposal plus the proposed body
    (the full new state in overwrite mode, the update in update mode)."""
    return {"msg_type": PROPOSE, "proposal": proposal.to_dict(), "body": body}


def respond_message(response: SignedPart) -> dict:
    """Wire form of ``m2``."""
    return {"msg_type": RESPOND, "response": response.to_dict()}


def commit_message(object_name: str, new_sid: StateId, auth: bytes,
                   proposal: SignedPart,
                   responses: "list[SignedPart]") -> dict:
    """Wire form of ``m3`` — the complete evidence aggregation.

    Unsigned by design; authenticity follows from ``auth`` being the
    preimage of the commitment inside the signed proposal.
    """
    return {
        "msg_type": COMMIT,
        "object": object_name,
        "new_sid": new_sid.to_dict(),
        "auth": auth,
        "proposal": proposal.to_dict(),
        "responses": [part.to_dict() for part in responses],
    }


# -------------------------------------------------------------------------
# Membership payload builders (section 4.5)
# -------------------------------------------------------------------------


def build_connect_request(subject: str, object_name: str, nonce: bytes,
                          certificate: "dict | None") -> dict:
    """``req`` — P_new's signed connection request, labelled by r_new."""
    return {
        "type": "connect-request",
        "subject": subject,
        "object": object_name,
        "nonce": nonce,
        "certificate": certificate,
    }


def build_membership_proposal(kind: str, sponsor: str, object_name: str,
                              old_gid: GroupId, new_gid: GroupId,
                              new_members: "list[str]",
                              subjects: "list[str]",
                              agreed_sid: StateId,
                              auth_commitment: bytes,
                              request: "SignedPart | None",
                              voluntary: "bool | None" = None,
                              proposer: "str | None" = None) -> dict:
    """The signed core of a connect/disconnect/evict proposal (``m1``)."""
    payload = {
        "type": f"{kind}-proposal",
        "kind": kind,
        "sponsor": sponsor,
        "object": object_name,
        "old_gid": old_gid.to_dict(),
        "new_gid": new_gid.to_dict(),
        "new_members": list(new_members),
        "subjects": list(subjects),
        "agreed_sid": agreed_sid.to_dict(),
        "auth_commitment": auth_commitment,
        "request": request.to_dict() if request is not None else None,
    }
    if voluntary is not None:
        payload["voluntary"] = voluntary
    if proposer is not None:
        payload["proposer"] = proposer
    return payload


def build_membership_response(kind: str, responder: str, object_name: str,
                              proposal_digest: bytes, decision: Decision,
                              gid: GroupId, agreed_sid: StateId,
                              current_sid: StateId) -> dict:
    """The signed core of a membership response (``m2``)."""
    return {
        "type": f"{kind}-response",
        "kind": kind,
        "responder": responder,
        "object": object_name,
        "proposal_digest": proposal_digest,
        "decision": decision.to_dict(),
        "gid": gid.to_dict(),
        "agreed_sid": agreed_sid.to_dict(),
        "current_sid": current_sid.to_dict(),
    }


def build_connect_reject(sponsor: str, object_name: str,
                         request_digest: bytes) -> dict:
    """Signed rejection of a connection request.

    Deliberately carries no information about *why* or *who* — immediate
    sponsor rejection and member veto are indistinguishable to the
    subject (section 4.5.3).
    """
    return {
        "type": "connect-reject",
        "sponsor": sponsor,
        "object": object_name,
        "request_digest": request_digest,
        "result": "rej",
    }


def build_agreed_state_attestation(party: str, object_name: str,
                                   agreed_sid: StateId) -> dict:
    """A member's signed assertion of the current agreed state tuple.

    The welcome message carries one per member so P_new can verify the
    state it receives against every member's signed view (section 4.5.3).
    """
    return {
        "type": "agreed-state-attestation",
        "party": party,
        "object": object_name,
        "agreed_sid": agreed_sid.to_dict(),
    }


def membership_message(msg_type: str, part: SignedPart,
                       extra: "dict | None" = None) -> dict:
    """Generic wire wrapper for a single signed membership part."""
    message = {"msg_type": msg_type, "part": part.to_dict()}
    if extra:
        message.update(extra)
    return message


def membership_commit_message(msg_type: str, kind: str, object_name: str,
                              new_gid: GroupId, auth: bytes,
                              proposal: SignedPart,
                              responses: "list[SignedPart]") -> dict:
    """Wire form of a membership ``m3`` evidence aggregation."""
    return {
        "msg_type": msg_type,
        "kind": kind,
        "object": object_name,
        "new_gid": new_gid.to_dict(),
        "auth": auth,
        "proposal": proposal.to_dict(),
        "responses": [part.to_dict() for part in responses],
    }


def welcome_message(part: SignedPart, agreed_state: Any,
                    commit: dict) -> dict:
    """Wire form of the sponsor's welcome to an admitted member.

    ``part`` signs the membership/gid/agreed-sid description plus the
    member attestations; ``agreed_state`` is the actual state value, and
    ``commit`` the full m3 bundle of the admission run.
    """
    return {
        "msg_type": CONNECT_WELCOME,
        "part": part.to_dict(),
        "agreed_state": agreed_state,
        "commit": commit,
    }


# -------------------------------------------------------------------------
# Decision aggregation
# -------------------------------------------------------------------------


def responses_unanimous(responses: "list[SignedPart]") -> "tuple[bool, list[str]]":
    """Compute the group decision over a set of response parts.

    Returns ``(unanimous_accept, diagnostics)``.  Any reject verdict, or
    any response whose decision cannot be parsed, makes the group decision
    *invalid* — the protocol is fail-safe.
    """
    diagnostics: "list[str]" = []
    unanimous = True
    for part in responses:
        try:
            decision = Decision.from_dict(part.payload["decision"])
        except (KeyError, ValueError, TypeError):
            unanimous = False
            diagnostics.append(f"{part.signer}: malformed decision")
            continue
        if not decision.accepted:
            unanimous = False
            for diag in decision.diagnostics:
                diagnostics.append(f"{part.signer}: {diag}")
            if not decision.diagnostics:
                diagnostics.append(f"{part.signer}: rejected")
    return unanimous, diagnostics


def verify_auth_preimage(auth: bytes, commitment: bytes) -> bool:
    """Check that ``auth`` is the committed authenticator preimage."""
    return hash_value(auth) == commitment
