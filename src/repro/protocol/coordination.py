"""The non-repudiable state coordination protocol (sections 4.3 and 4.4).

In essence the protocol is non-repudiable two-phase commit over object
replicas:

1. ``m1`` — the proposer sends every other member a signed proposal plus
   the proposed new state (overwrite) or update.  The proposer is
   committed to acceptance from this point and *pre-applies* the state
   (invariant 2); it cannot later unilaterally reject the transition.
2. ``m2`` — each recipient runs the systematic invariant checks and its
   local application validation, and returns a signed receipt + decision.
3. ``m3`` — the proposer aggregates the signed proposal, every signed
   response and the random authenticator whose hash it committed to in
   ``m1``.  Any party can compute the group decision over the bundle: the
   new state is valid iff every decision is accept.  ``m3`` carries no
   signature — only the proposer can produce the authenticator preimage.

The engine is sans-IO: :meth:`StateCoordinationEngine.handle` consumes a
message and returns an :class:`~repro.protocol.events.Output` of messages
to transmit and events to surface.  Every message is journalled for
recovery and logged as non-repudiation evidence before it is acted on.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.crypto.hashing import hash_value
from repro.errors import ConcurrencyError, ProtocolError
from repro.obs.hooks import (
    PHASE_M1,
    PHASE_M2,
    PHASE_M3,
    RECEIVED,
    SENT,
    approx_size_cached,
)
from repro.protocol.context import PartyContext
from repro.protocol.engine_base import EngineBase
from repro.protocol.events import (
    Output,
    RunBlocked,
    RunCompleted,
    StateInstalled,
    StateRolledBack,
)
from repro.protocol.group import GroupView
from repro.protocol.ids import StateId, initial_state_id, new_state_id
from repro.protocol.messages import (
    COMMIT,
    MODE_OVERWRITE,
    MODE_UPDATE,
    MODE_UPDATE_BATCH,
    PROPOSE,
    RESPOND,
    SignedPart,
    build_proposal,
    build_response,
    commit_message,
    propose_message,
    respond_message,
    responses_unanimous,
    UPDATE_MODES,
    verify_auth_preimage,
)
from repro.protocol.validation import Decision, StateMerger, Validator
from repro.util.encoding import canonical_bytes, from_canonical_bytes

AUTH_BYTES = 32

ROLE_PROPOSER = "proposer"
ROLE_RESPONDER = "responder"

OUTCOME_VALID = "valid"
OUTCOME_INVALID = "invalid"


def freeze(value: Any) -> Any:
    """Deep-copy a state value via its canonical encoding.

    Engines keep private copies of states so that application-side
    mutation after a call cannot silently alter coordinated history.
    """
    return from_canonical_bytes(canonical_bytes(value))


@dataclass
class RunState:
    """Book-keeping for one protocol run at one party."""

    run_id: str
    role: str
    proposal: SignedPart
    body: Any
    new_sid: StateId
    new_state: Any
    mode: str
    recipients: "list[str]"
    auth: "Optional[bytes]" = None  # proposer only
    responses: "dict[str, SignedPart]" = field(default_factory=dict)
    own_response: "Optional[SignedPart]" = None  # responder only
    own_decision: "Optional[Decision]" = None
    commit: "Optional[dict]" = None
    outcome: "Optional[str]" = None
    diagnostics: "list[str]" = field(default_factory=list)
    started_at: float = 0.0
    last_activity: float = 0.0

    @property
    def proposer(self) -> str:
        return str(self.proposal.payload["proposer"])

    def waiting_on(self) -> "list[str]":
        if self.outcome is not None:
            return []
        if self.role == ROLE_PROPOSER:
            return [p for p in self.recipients if p not in self.responses]
        return [self.proposer]  # responder waits for m3


class StateCoordinationEngine(EngineBase):
    """One party's state-coordination engine for one shared object."""

    #: Replay-protection window (invariant 4): how many recently seen
    #: proposal tuples are remembered.  A long-lived object sees one tuple
    #: per proposal, so the set must not grow without bound; the window
    #: mirrors the reliable layer's dedup window.  Evicting an old tuple
    #: is safe because invariant 3 independently rejects any proposal
    #: whose sequence number does not exceed the agreed one — the window
    #: only needs to cover tuples that could still pass that check.
    seen_window: int = 4096

    def __init__(self, ctx: PartyContext, group: GroupView,
                 initial_state: Any,
                 validator: "Validator | None" = None,
                 merger: "StateMerger | None" = None,
                 reject_null_transitions: bool = True,
                 initial_sid: "StateId | None" = None) -> None:
        super().__init__(ctx, group.object_name)
        self.group = group
        self.validator = validator or Validator()
        self.merger = merger or StateMerger()
        self.reject_null_transitions = reject_null_transitions

        self.agreed_state: Any = freeze(initial_state)
        # Founding members derive the genesis identifier; a member admitted
        # later adopts the agreed identifier transferred in the welcome.
        self.agreed_sid: StateId = initial_sid or initial_state_id(self.agreed_state)
        self.current_state: Any = freeze(initial_state)
        self.current_sid: StateId = self.agreed_sid

        self.highest_seq_seen: int = self.agreed_sid.seq
        self._seen_proposal_keys: "set[bytes]" = set()
        self._seen_proposal_order: "deque[bytes]" = deque()
        self._runs: "dict[str, RunState]" = {}
        self._active_run_id: "Optional[str]" = None
        # Membership engine sets this while a membership change is being
        # coordinated; new state proposals are rejected meanwhile.
        self.membership_change_active: bool = False

        if not self.agreed_sid.matches_state(self.agreed_state):
            raise ProtocolError("initial state does not match its identifier")
        latest = self.ctx.checkpoints.latest(self.object_name)
        if latest is None or self.agreed_sid.seq > latest.sequence:
            self.ctx.checkpoints.save(
                self.object_name, self.agreed_sid.to_dict(), self.agreed_state
            )

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------

    @property
    def party_id(self) -> str:
        return self.ctx.party_id

    @property
    def busy(self) -> bool:
        return self._active_run_id is not None

    def active_run(self) -> "Optional[RunState]":
        if self._active_run_id is None:
            return None
        return self._runs.get(self._active_run_id)

    def run(self, run_id: str) -> "Optional[RunState]":
        return self._runs.get(run_id)

    def runs(self) -> "list[RunState]":
        return list(self._runs.values())

    # ------------------------------------------------------------------
    # proposing (sections 4.3, 4.3.1)
    # ------------------------------------------------------------------

    def propose_overwrite(self, new_state: Any) -> "tuple[str, Output]":
        """Initiate coordination of a full-state overwrite."""
        new_state = freeze(new_state)
        return self._propose(MODE_OVERWRITE, body=new_state, new_state=new_state)

    def propose_update(self, update: Any) -> "tuple[str, Output]":
        """Initiate coordination of an incremental update.

        The resulting state is computed by the configured merger; the
        proposal carries both ``H(update)`` and ``H(S_new)`` so recipients
        can verify that applying the agreed update yields a consistent
        new state (section 4.3.1).
        """
        update = freeze(update)
        new_state = freeze(self.merger.apply(self.current_state, update))
        return self._propose(MODE_UPDATE, body=update, new_state=new_state)

    def propose_update_batch(self, updates: "list[Any]") -> "tuple[str, Output]":
        """Initiate coordination of an ordered batch of updates.

        The batch is one protocol run: the m1 body is the ordered list of
        update values, applied left-to-right through the merger as a
        single state transition with one state identifier and one
        signature per phase.  Recipients recompute every intermediate
        state and validate each step, so a batch is exactly as auditable
        as the equivalent sequence of single-update runs at a third of
        the messages per update (amortised).
        """
        if not updates:
            raise ValueError("an update batch must contain at least one update")
        body = [freeze(update) for update in updates]
        new_state = self.current_state
        for update in body:
            new_state = freeze(self.merger.apply(new_state, update))
        return self._propose(MODE_UPDATE_BATCH, body=body, new_state=new_state)

    def _propose(self, mode: str, body: Any, new_state: Any) -> "tuple[str, Output]":
        if self.busy:
            raise ConcurrencyError(
                f"{self.party_id}: a coordination run is already active"
            )
        if self.membership_change_active:
            raise ConcurrencyError(
                f"{self.party_id}: a membership change is in progress"
            )
        output = Output()
        new_sid, _nonce = new_state_id(self.highest_seq_seen, new_state, self.ctx.rng)
        auth = self.ctx.rng.random_bytes(AUTH_BYTES)
        update_hash = hash_value(body) if mode in UPDATE_MODES else None
        proposal_payload = build_proposal(
            proposer=self.party_id,
            object_name=self.object_name,
            gid=self.group.group_id,
            agreed_sid=self.agreed_sid,
            new_sid=new_sid,
            auth_commitment=hash_value(auth),
            mode=mode,
            update_hash=update_hash,
        )
        proposal = self._signed(proposal_payload)
        run_id = self._state_run_id(new_sid)
        recipients = self.group.others(self.party_id)
        now = self.ctx.clock.now()
        run = RunState(
            run_id=run_id,
            role=ROLE_PROPOSER,
            proposal=proposal,
            body=body,
            new_sid=new_sid,
            new_state=new_state,
            mode=mode,
            recipients=recipients,
            auth=auth,
            started_at=now,
            last_activity=now,
        )
        self._runs[run_id] = run
        self._active_run_id = run_id
        self._note_proposal_seen(new_sid)
        if self.ctx.obs.enabled:
            self.ctx.obs.run_started(self.party_id, self.object_name,
                                     run_id, ROLE_PROPOSER, mode)
            if mode == MODE_UPDATE_BATCH:
                self.ctx.obs.batch_proposed(self.party_id, self.object_name,
                                            run_id, len(body))

        # Invariant 2: the proposer's current state is the proposed state.
        self.current_state = new_state
        self.current_sid = new_sid

        # Journal the run's private material (notably the authenticator
        # preimage) so a full process restart can resume the run; see
        # recover_runs().
        self._journal_sent(run_id, self.party_id, {
            "msg_type": "run-keys",
            "object": self.object_name,
            "auth": auth,
            "mode": mode,
            "body": body,
            "new_state": new_state,
            "proposal": proposal.to_dict(),
        })
        self._log_evidence(
            "proposal-sent",
            {"run_id": run_id, "proposal": proposal.to_dict(), "mode": mode},
        )
        message = propose_message(proposal, body)
        self._trace_send(run_id, PHASE_M1, message, recipients)
        for recipient in recipients:
            self._journal_sent(run_id, recipient, message)
            output.send(recipient, message)
        self._obs_message(run_id, PHASE_M1, SENT, message,
                          count=len(recipients))

        if not recipients:
            # Singleton group: trivially unanimous.
            self._complete_as_proposer(run, output)
        return run_id, output

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    _PHASE_BY_TYPE = {PROPOSE: PHASE_M1, RESPOND: PHASE_M2, COMMIT: PHASE_M3}

    def handle(self, sender: str, message: dict) -> Output:
        """Process one inbound protocol message."""
        obs = self.ctx.obs
        if not obs.enabled:
            return self._dispatch(sender, message)
        phase = self._PHASE_BY_TYPE.get(message.get("msg_type"))
        if phase is not None:
            obs.protocol_message(self.party_id, self.object_name, "",
                                 phase, RECEIVED, approx_size_cached(message))
        started = time.perf_counter()
        output = self._dispatch(sender, message)
        if phase is not None:
            obs.phase_handled(self.party_id, self.object_name, phase,
                              time.perf_counter() - started)
        return output

    def _dispatch(self, sender: str, message: dict) -> Output:
        msg_type = message.get("msg_type")
        if msg_type == PROPOSE:
            return self._on_propose(sender, message)
        if msg_type == RESPOND:
            return self._on_respond(sender, message)
        if msg_type == COMMIT:
            return self._on_commit(sender, message)
        output = Output()
        self._misbehaviour(
            output, sender, "unknown-message",
            f"unrecognised msg_type {msg_type!r}",
        )
        return output

    # ------------------------------------------------------------------
    # m1: responder side
    # ------------------------------------------------------------------

    def _on_propose(self, sender: str, message: dict) -> Output:
        output = Output()
        proposal = self._parse_part(message, "proposal")
        if proposal is None:
            self._misbehaviour(output, sender, "malformed-message", "unparseable proposal")
            return output
        payload = proposal.payload
        proposer = str(payload.get("proposer", ""))
        if proposer != sender:
            self._misbehaviour(
                output, sender, "impersonation",
                f"proposal names proposer {proposer!r} but arrived from {sender!r}",
            )
            return output
        if not self._verify_part(proposal, proposer, "state proposal", output):
            return output

        try:
            new_sid = StateId.from_dict(payload["new_sid"])
            claimed_agreed = StateId.from_dict(payload["agreed_sid"])
            mode = str(payload["mode"])
        except (KeyError, TypeError, ValueError):
            self._misbehaviour(
                output, proposer, "malformed-message",
                "proposal missing required fields", "",
            )
            return output

        run_id = self._state_run_id(new_sid)
        self._trace_receive(run_id, PHASE_M1, sender, message)
        existing = self._runs.get(run_id)
        if existing is not None:
            return self._replay_responder_messages(existing, output)

        body = message.get("body")
        self._journal_received(run_id, sender, message)
        self._log_evidence(
            "proposal-received",
            {"run_id": run_id, "proposal": proposal.to_dict(), "mode": mode},
        )

        decision, new_state = self._evaluate_proposal(
            proposer, payload, new_sid, claimed_agreed, mode, body
        )
        body_hash = hash_value(body)
        response_payload = build_response(
            responder=self.party_id,
            object_name=self.object_name,
            proposal_digest=proposal.digest(),
            new_sid=new_sid,
            body_hash=body_hash,
            decision=decision,
            gid=self.group.group_id,
            agreed_sid=self.agreed_sid,
            current_sid=self.current_sid,
        )
        response = self._signed(response_payload)
        now = self.ctx.clock.now()
        run = RunState(
            run_id=run_id,
            role=ROLE_RESPONDER,
            proposal=proposal,
            body=freeze(body) if body is not None else None,
            new_sid=new_sid,
            new_state=new_state,
            mode=mode,
            recipients=self.group.others(proposer),
            own_response=response,
            own_decision=decision,
            started_at=now,
            last_activity=now,
        )
        self._runs[run_id] = run
        self._note_proposal_seen(new_sid)
        if self.ctx.obs.enabled:
            self.ctx.obs.run_started(self.party_id, self.object_name,
                                     run_id, ROLE_RESPONDER, mode)
            self.ctx.obs.validation_decision(
                self.party_id, self.object_name, run_id,
                decision.accepted, list(decision.diagnostics),
            )
            decided = self.ctx.trace.local_event(run_id)
            self.ctx.obs.causal_decision(
                self.party_id, self.object_name, run_id,
                decided.trace_id, decided.lamport,
                decision.accepted, list(decision.diagnostics),
            )
        if decision.accepted:
            # An accepted proposal must settle before this replica takes
            # part in another run, or concurrent installs could diverge.
            self._active_run_id = run_id

        self._log_evidence(
            "response-sent", {"run_id": run_id, "response": response.to_dict()}
        )
        reply = respond_message(response)
        self._trace_send(run_id, PHASE_M2, reply, [proposer])
        self._journal_sent(run_id, proposer, reply)
        output.send(proposer, reply)
        self._obs_message(run_id, PHASE_M2, SENT, reply)
        return output

    def _replay_responder_messages(self, run: RunState, output: Output) -> Output:
        """Idempotent re-handling of a duplicated / recovered ``m1``."""
        if run.role == ROLE_RESPONDER and run.own_response is not None:
            reply = respond_message(run.own_response)
            self._trace_send(run.run_id, PHASE_M2, reply, [run.proposer])
            output.send(run.proposer, reply)
            self._obs_message(run.run_id, PHASE_M2, SENT, reply)
        return output

    def _evaluate_proposal(self, proposer: str, payload: dict, new_sid: StateId,
                           claimed_agreed: StateId, mode: str,
                           body: Any) -> "tuple[Decision, Any]":
        """Systematic checks (section 4.2 invariants) + application upcall.

        Returns the decision and, when computable, the resulting state.
        """
        diagnostics: "list[str]" = []

        if proposer not in self.group:
            diagnostics.append(f"proposer {proposer!r} is not a group member")
        gid = payload.get("gid")
        if gid != self.group.group_id.to_dict():
            diagnostics.append("inconsistent group identifier")

        if self.membership_change_active:
            diagnostics.append("busy: membership change in progress")
        elif self.busy:
            diagnostics.append("busy: concurrent coordination run active")

        # Invariant 1: our current state is our agreed state, and matches
        # the agreed state claimed by the proposer.
        if self.current_sid != self.agreed_sid:
            diagnostics.append("invariant-1: replica is mid-transition")
        if claimed_agreed != self.agreed_sid:
            diagnostics.append(
                "invariant-1: proposer's agreed state "
                f"{claimed_agreed.short()} != ours {self.agreed_sid.short()}"
            )
        # Invariant 3: the proposed sequence number must advance.
        if new_sid.seq <= self.agreed_sid.seq:
            diagnostics.append(
                f"invariant-3: seq {new_sid.seq} does not exceed agreed {self.agreed_sid.seq}"
            )
        # Invariant 4: the proposal tuple must be unique among all seen.
        if self._proposal_key(new_sid) in self._seen_proposal_keys:
            diagnostics.append("invariant-4: proposal tuple replayed")

        # While this replica is mid-transition (busy, or lagging behind a
        # commit in flight) its current state is not the agreed baseline
        # the proposer computed against, so re-applying an update here
        # would fail for reasons that are pure contention, not evidence
        # of a bad proposal.  The proposal is already rejected with the
        # transient diagnostics above; skip the meaningless recompute so
        # the veto stays recognisably benign (and retryable).
        contended = any(
            diag.startswith("busy:") or diag.startswith("invariant-1:")
            for diag in diagnostics
        )

        new_state: Any = None
        # For batches: the recomputed (pre_state, update, post_state) of
        # every step, so application validation can judge each step
        # against the state it actually transforms.
        batch_steps: "list[tuple[Any, Any, Any]]" = []
        if mode == MODE_OVERWRITE:
            if not new_sid.matches_state(body):
                diagnostics.append("body hash does not match proposed state identifier")
            else:
                new_state = freeze(body)
        elif mode == MODE_UPDATE_BATCH:
            update_hash = payload.get("update_hash")
            if not isinstance(body, list) or not body:
                diagnostics.append("batch body must be a non-empty list of updates")
            elif hash_value(body) != update_hash:
                diagnostics.append("update hash does not match received batch")
            elif not contended:
                state = self.current_state
                for index, update in enumerate(body):
                    try:
                        candidate = freeze(self.merger.apply(state, update))
                    except Exception as exc:  # noqa: BLE001 - app merge may fail
                        diagnostics.append(
                            f"batch[{index}]: update could not be applied: {exc}"
                        )
                        break
                    batch_steps.append((state, update, candidate))
                    state = candidate
                else:
                    if not new_sid.matches_state(state):
                        diagnostics.append(
                            "applying the batch does not yield the claimed new state"
                        )
                    else:
                        new_state = state
        elif mode == MODE_UPDATE:
            update_hash = payload.get("update_hash")
            if hash_value(body) != update_hash:
                diagnostics.append("update hash does not match received update")
            elif not contended:
                try:
                    candidate = freeze(self.merger.apply(self.current_state, body))
                except Exception as exc:  # noqa: BLE001 - app merge may fail
                    candidate = None
                    diagnostics.append(f"update could not be applied: {exc}")
                if candidate is not None:
                    if not new_sid.matches_state(candidate):
                        diagnostics.append(
                            "applying the update does not yield the claimed new state"
                        )
                    else:
                        new_state = candidate
        else:
            diagnostics.append(f"unknown proposal mode {mode!r}")

        # Null transition check (section 4.4): S_new == S_current.
        if (self.reject_null_transitions
                and new_sid.state_hash == self.agreed_sid.state_hash):
            diagnostics.append("null state transition")

        if diagnostics:
            return Decision.reject(*diagnostics), new_state

        # Application-specific validation upcall.  A batch is validated
        # step by step against the recomputed intermediate states: every
        # step must pass the same policy a single-update run would face.
        if mode == MODE_UPDATE_BATCH:
            step_diagnostics: "list[str]" = []
            for index, (pre_state, update, post_state) in enumerate(batch_steps):
                step = self.validator.validate_update(
                    update, post_state, pre_state, proposer
                )
                if not step.accepted:
                    for diag in step.diagnostics or ("rejected",):
                        step_diagnostics.append(f"batch[{index}]: {diag}")
            decision = (Decision.reject(*step_diagnostics)
                        if step_diagnostics else Decision.accept())
        elif mode == MODE_UPDATE:
            decision = self.validator.validate_update(
                body, new_state, self.current_state, proposer
            )
        else:
            decision = self.validator.validate_state(
                new_state, self.current_state, proposer
            )
        return decision, new_state

    # ------------------------------------------------------------------
    # m2: proposer side
    # ------------------------------------------------------------------

    def _on_respond(self, sender: str, message: dict) -> Output:
        output = Output()
        response = self._parse_part(message, "response")
        if response is None:
            self._misbehaviour(output, sender, "malformed-message", "unparseable response")
            return output
        payload = response.payload
        responder = str(payload.get("responder", ""))
        if responder != sender:
            self._misbehaviour(
                output, sender, "impersonation",
                f"response names responder {responder!r} but arrived from {sender!r}",
            )
            return output

        try:
            new_sid = StateId.from_dict(payload["new_sid"])
        except (KeyError, TypeError, ValueError):
            self._misbehaviour(output, responder, "malformed-message",
                               "response missing state identifier")
            return output
        run_id = self._state_run_id(new_sid)
        self._trace_receive(run_id, PHASE_M2, sender, message)
        run = self._runs.get(run_id)
        if run is None or run.role != ROLE_PROPOSER:
            # A response to a run we never proposed: either stale or forged.
            self._misbehaviour(output, responder, "unsolicited-response",
                               f"no proposer run {run_id[:12]}", run_id)
            return output
        if run.outcome is not None:
            # Run already settled: the responder evidently missed m3
            # (e.g. it crashed and recovered) — re-send it.
            if run.commit is not None:
                self._trace_send(run_id, PHASE_M3, run.commit, [responder])
                output.send(responder, run.commit)
                self._obs_message(run_id, PHASE_M3, SENT, run.commit)
            return output
        if responder not in run.recipients:
            self._misbehaviour(output, responder, "unsolicited-response",
                               "responder is not a recipient of this proposal", run_id)
            return output
        if not self._verify_part(response, responder, "state response", output, run_id):
            return output

        previous = run.responses.get(responder)
        if previous is not None:
            if previous.payload != payload:
                self._misbehaviour(
                    output, responder, "equivocation",
                    "two different signed responses for one proposal", run_id,
                )
            return output

        self._journal_received(run_id, responder, message)
        self._log_evidence(
            "response-received", {"run_id": run_id, "response": response.to_dict()}
        )
        run.responses[responder] = response
        run.last_activity = self.ctx.clock.now()

        if set(run.responses) == set(run.recipients):
            self._complete_as_proposer(run, output)
        return output

    def _aggregate_decisions(self, responses: "list[SignedPart]",
                             own_decision: "Decision | None" = None
                             ) -> "tuple[bool, list[str]]":
        """Group decision rule: unanimity (the paper's protocol).

        Extension engines (e.g. majority voting, section 7) override this
        single point; all systematic consistency checks stay mandatory.
        """
        return responses_unanimous(responses)

    def _may_install_despite_own_veto(self) -> bool:
        """Whether the decision rule can overrule a local veto.

        False for the unanimity rule; majority-voting extensions return
        True (a correctly behaving minority follows the majority).
        """
        return False

    def _require_complete_bundle(self) -> bool:
        """Whether ``m3`` must contain a response from every recipient.

        True for the unanimity rule (a missing response can never
        demonstrate unanimity); quorum-based extensions relax this so a
        run can terminate despite non-responders.
        """
        return True

    def force_completion(self, run_id: str) -> Output:
        """Proposer-side forced settlement with the responses received.

        Supports deadline/quorum termination extensions (section 7): the
        commit is issued over the partial response set and the decision
        rule aggregates whatever evidence exists.  Under the base
        unanimity rule a partial set always yields *invalid*.
        """
        output = Output()
        run = self._runs.get(run_id)
        if run is None or run.role != ROLE_PROPOSER or run.outcome is not None:
            return output
        missing = [p for p in run.recipients if p not in run.responses]
        if missing and self._require_complete_bundle():
            # Unanimity can never be demonstrated from a partial response
            # set: settle as invalid (local fail-safe abort).
            self._settle(run, False,
                         [f"aborted: no response from {missing}"], output)
            return output
        run.recipients = [p for p in run.recipients if p in run.responses]
        self._complete_as_proposer(run, output)
        return output

    def _complete_as_proposer(self, run: RunState, output: Output) -> None:
        """All responses are in: compute the decision, emit ``m3``."""
        responses = [run.responses[p] for p in run.recipients]
        unanimous, diagnostics = self._aggregate_decisions(responses)

        # Systematic cross-checks: every response must reference this exact
        # proposal and assert the body hash the proposer actually sent.
        expected_digest = run.proposal.digest()
        expected_body_hash = hash_value(run.body)
        for part in responses:
            if bytes(part.payload.get("proposal_digest", b"")) != expected_digest:
                unanimous = False
                diagnostics.append(f"{part.signer}: response references a different proposal")
            if bytes(part.payload.get("body_hash", b"")) != expected_body_hash:
                unanimous = False
                diagnostics.append(f"{part.signer}: body integrity assertion mismatch")

        commit = commit_message(
            self.object_name, run.new_sid, run.auth or b"", run.proposal, responses
        )
        run.commit = commit
        self._trace_send(run.run_id, PHASE_M3, commit, run.recipients)
        for recipient in run.recipients:
            self._journal_sent(run.run_id, recipient, commit)
            output.send(recipient, commit)
        self._obs_message(run.run_id, PHASE_M3, SENT, commit,
                          count=len(run.recipients))
        self._log_evidence(
            "commit-sent",
            {"run_id": run.run_id, "valid": unanimous, "diagnostics": diagnostics},
        )
        self._settle(run, unanimous, diagnostics, output)

    # ------------------------------------------------------------------
    # m3: responder side
    # ------------------------------------------------------------------

    def _on_commit(self, sender: str, message: dict) -> Output:
        output = Output()
        try:
            new_sid = StateId.from_dict(message["new_sid"])
        except (KeyError, TypeError, ValueError):
            self._misbehaviour(output, sender, "malformed-message",
                               "commit missing state identifier")
            return output
        run_id = self._state_run_id(new_sid)
        self._trace_receive(run_id, PHASE_M3, sender, message)
        run = self._runs.get(run_id)

        proposal = self._parse_part(message, "proposal")
        if proposal is None:
            self._misbehaviour(output, sender, "malformed-message",
                               "commit without signed proposal", run_id)
            return output

        if run is None:
            # We are seeing m3 for a run whose m1 never reached us: the
            # proposer selectively sent the proposal (section 4.4).  The
            # bundle itself proves the run happened without us.
            if self._verify_part(proposal, None, "commit proposal", output, run_id):
                self._misbehaviour(
                    output, str(proposal.payload.get("proposer", sender)),
                    "selective-send",
                    "received commit for a proposal we were never sent", run_id,
                )
            return output
        if run.outcome is not None:
            return output  # duplicate m3: already settled
        if run.role != ROLE_RESPONDER:
            self._misbehaviour(output, sender, "protocol-abuse",
                               "commit received for our own proposal", run_id)
            return output

        self._journal_received(run_id, sender, message)

        valid, diagnostics, responses = self._check_commit_bundle(run, message, output)
        run.commit = message
        self._log_evidence(
            "commit-received",
            {"run_id": run_id, "valid": valid, "diagnostics": diagnostics},
        )
        self._settle(run, valid, diagnostics, output, responses)
        return output

    def _check_commit_bundle(self, run: RunState, message: dict,
                             output: Output) -> "tuple[bool, list[str], list[SignedPart]]":
        """Verify an ``m3`` evidence bundle against our own run state."""
        diagnostics: "list[str]" = []
        proposer = run.proposer

        embedded = self._parse_part(message, "proposal")
        if embedded is None or embedded.payload != run.proposal.payload:
            diagnostics.append("commit embeds a different proposal than we received")
            self._misbehaviour(output, proposer, "inconsistent-message",
                               "commit/proposal mismatch", run.run_id)
            return False, diagnostics, []

        auth = bytes(message.get("auth", b""))
        commitment = bytes(run.proposal.payload.get("auth_commitment", b""))
        if not verify_auth_preimage(auth, commitment):
            diagnostics.append("authenticator does not match the committed hash")
            self._misbehaviour(output, proposer, "forged-commit",
                               "invalid authenticator preimage", run.run_id)
            return False, diagnostics, []

        raw_responses = message.get("responses", [])
        responses: "list[SignedPart]" = []
        for raw in raw_responses:
            try:
                responses.append(SignedPart.from_dict(raw))
            except (KeyError, TypeError, ValueError):
                diagnostics.append("malformed response in commit bundle")
                return False, diagnostics, []

        expected_responders = set(self.group.others(proposer))
        seen_responders: "set[str]" = set()
        expected_digest = run.proposal.digest()
        for part in responses:
            responder = str(part.payload.get("responder", ""))
            if responder == self.party_id:
                if run.own_response is None or part.payload != run.own_response.payload:
                    diagnostics.append("our own response was altered in the bundle")
                    self._misbehaviour(output, proposer, "evidence-tampering",
                                       "bundle alters our signed response", run.run_id)
                    return False, diagnostics, responses
            if not self._verify_part(part, responder, "bundled response",
                                     output, run.run_id):
                diagnostics.append(f"invalid signature on response by {responder!r}")
                return False, diagnostics, responses
            if bytes(part.payload.get("proposal_digest", b"")) != expected_digest:
                diagnostics.append(f"{responder}: response references a different proposal")
            seen_responders.add(responder)

        extra = sorted(seen_responders - expected_responders)
        if extra:
            diagnostics.append(f"bundle has responses from non-members {extra}")
            self._misbehaviour(output, proposer, "incomplete-bundle",
                               "; ".join(diagnostics), run.run_id)
            return False, diagnostics, responses
        missing = sorted(expected_responders - seen_responders)
        if missing and self._require_complete_bundle():
            diagnostics.append(f"bundle lacks responses from {missing}")
            self._misbehaviour(output, proposer, "incomplete-bundle",
                               "; ".join(diagnostics), run.run_id)
            return False, diagnostics, responses

        unanimous, veto_diags = self._aggregate_decisions(
            responses, run.own_decision
        )
        diagnostics.extend(veto_diags)

        # Cross-responder integrity: everyone must have received the same
        # body we did, or the proposer selectively sent different content.
        own_body_hash = hash_value(run.body)
        for part in responses:
            if bytes(part.payload.get("body_hash", b"")) != own_body_hash:
                unanimous = False
                detail = (
                    f"{part.signer} asserts a different body hash: "
                    "proposer sent divergent content"
                )
                diagnostics.append(detail)
                self._misbehaviour(output, proposer, "selective-send",
                                   detail, run.run_id)

        if (unanimous and not self._may_install_despite_own_veto()
                and run.own_decision is not None
                and not run.own_decision.accepted):
            # Defence in depth: a bundle can never make us install a state
            # we vetoed; with signatures verified this cannot trigger.
            unanimous = False
            diagnostics.append("bundle claims unanimity but we vetoed")

        if unanimous and run.new_state is None:
            unanimous = False
            diagnostics.append("no verified state value available to install")

        return unanimous, diagnostics, responses

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------

    def _settle(self, run: RunState, valid: bool, diagnostics: "list[str]",
                output: Output,
                responses: "list[SignedPart] | None" = None) -> None:
        run.outcome = OUTCOME_VALID if valid else OUTCOME_INVALID
        run.diagnostics = diagnostics
        if self._active_run_id == run.run_id:
            self._active_run_id = None
        if self.ctx.obs.enabled:
            self.ctx.obs.run_settled(
                self.party_id, self.object_name, run.run_id, run.role,
                run.outcome, self.ctx.clock.now() - run.started_at,
            )
            settled = self.ctx.trace.local_event(run.run_id)
            self.ctx.obs.causal_outcome(
                self.party_id, self.object_name, run.run_id,
                settled.trace_id, settled.lamport, run.role, run.outcome,
            )

        if responses is None:
            responses = [run.responses[p] for p in run.recipients
                         if p in run.responses]
        evidence = {
            "type": "authenticated-decision",
            "object": self.object_name,
            "run_id": run.run_id,
            "kind": "state",
            "new_sid": run.new_sid.to_dict(),
            "auth": run.auth if run.auth is not None else bytes(
                (run.commit or {}).get("auth", b"")
            ),
            "proposal": run.proposal.to_dict(),
            "responses": [part.to_dict() for part in responses],
            "valid": valid,
            "diagnostics": list(diagnostics),
        }
        self._log_evidence("authenticated-decision", evidence)
        self._close_journal(run.run_id, run.outcome)

        if valid:
            self.agreed_state = run.new_state
            self.agreed_sid = run.new_sid
            self.current_state = run.new_state
            self.current_sid = run.new_sid
            self.ctx.checkpoints.save(
                self.object_name, self.agreed_sid.to_dict(), self.agreed_state
            )
            output.emit(StateInstalled(
                object_name=self.object_name,
                state_id=self.agreed_sid.to_dict(),
                state=self.agreed_state,
                run_id=run.run_id,
            ))
        elif run.role == ROLE_PROPOSER:
            # Roll back the pre-applied state to the last agreed state.
            self.current_state = self.agreed_state
            self.current_sid = self.agreed_sid
            output.emit(StateRolledBack(
                object_name=self.object_name,
                state_id=self.agreed_sid.to_dict(),
                state=self.agreed_state,
                run_id=run.run_id,
            ))
        output.emit(RunCompleted(
            run_id=run.run_id,
            object_name=self.object_name,
            kind="state",
            valid=valid,
            role=run.role,
            diagnostics=list(diagnostics),
            evidence=evidence,
        ))

    # ------------------------------------------------------------------
    # progress / recovery
    # ------------------------------------------------------------------

    def check_progress(self, timeout: float) -> Output:
        """Surface runs that have stalled beyond *timeout* seconds.

        The protocol deliberately cannot guarantee termination under
        misbehaviour (section 4.1); blocked runs carry the evidence needed
        for extra-protocol dispute resolution.
        """
        output = Output()
        now = self.ctx.clock.now()
        for run in self._runs.values():
            if run.outcome is None and now - run.last_activity > timeout:
                output.emit(RunBlocked(
                    run_id=run.run_id,
                    object_name=self.object_name,
                    kind="state",
                    waiting_on=run.waiting_on(),
                    age=now - run.last_activity,
                ))
        return output

    def resend_outstanding(self) -> Output:
        """Re-emit the messages an in-flight run is waiting to deliver.

        Used after crash recovery: peers de-duplicate at the engine level
        (known run ids are re-handled idempotently), so resending is safe.
        """
        output = Output()
        for run in self._runs.values():
            if run.outcome is not None:
                continue
            if run.role == ROLE_PROPOSER:
                message = propose_message(run.proposal, run.body)
                waiting = run.waiting_on()
                self._trace_send(run.run_id, PHASE_M1, message, waiting)
                for recipient in waiting:
                    output.send(recipient, message)
                self._obs_message(run.run_id, PHASE_M1, SENT, message,
                                  count=len(waiting))
            elif run.own_response is not None:
                reply = respond_message(run.own_response)
                self._trace_send(run.run_id, PHASE_M2, reply, [run.proposer])
                output.send(run.proposer, reply)
                self._obs_message(run.run_id, PHASE_M2, SENT, reply)
        return output

    def recover_runs(self) -> Output:
        """Rebuild in-flight run state after a full process restart.

        The engine is expected to have been constructed from the latest
        checkpoint (agreed state + identifier).  This method then

        * rebuilds the replay-protection set from the evidence log;
        * resumes every open *proposer* run from the journalled run-keys
          record (which preserves the authenticator preimage), re-ingests
          the responses received before the crash and re-sends ``m1`` to
          the parties still owing one;
        * re-drives every open *responder* run by re-handling the
          journalled proposal (decisions are recomputed; deterministic
          validators yield byte-identical responses, which peers
          de-duplicate).
        """
        output = Output()
        self._recover_seen_proposals()
        for run_id in sorted(self.ctx.journal.open_runs()):
            if run_id in self._runs:
                continue
            messages = self.ctx.journal.messages(run_id)
            if not messages:
                continue
            run_keys = [m for m in messages
                        if m["message"].get("msg_type") == "run-keys"
                        and m["message"].get("object") == self.object_name]
            if run_keys:
                self._recover_proposer_run(run_id, run_keys[-1]["message"],
                                           messages, output)
                continue
            proposes = [m for m in messages
                        if m["direction"] == "received"
                        and m["message"].get("msg_type") == PROPOSE]
            for record in proposes:
                proposal = record["message"].get("proposal", {})
                payload = proposal.get("payload", {}) if isinstance(
                    proposal, dict) else {}
                if payload.get("object") != self.object_name:
                    continue
                # Re-driving our own open run is not a replay: lift its
                # tuple from the recovered seen-set for this one handling.
                try:
                    sid = StateId.from_dict(payload["new_sid"])
                    self._forget_proposal_seen(sid)
                except (KeyError, TypeError, ValueError):
                    pass
                output.merge(self.handle(record["peer"], record["message"]))
                break
        return output

    def _recover_seen_proposals(self) -> None:
        for kind in ("proposal-sent", "proposal-received"):
            for entry in self.ctx.evidence.entries(kind):
                proposal = entry.payload.get("proposal", {})
                payload = proposal.get("payload", {}) if isinstance(
                    proposal, dict) else {}
                if payload.get("object") != self.object_name:
                    continue
                try:
                    sid = StateId.from_dict(payload["new_sid"])
                except (KeyError, TypeError, ValueError):
                    continue
                self._note_proposal_seen(sid)

    def _recover_proposer_run(self, run_id: str, keys: dict,
                              messages: "list[dict]", output: Output) -> None:
        try:
            proposal = SignedPart.from_dict(keys["proposal"])
            new_sid = StateId.from_dict(proposal.payload["new_sid"])
        except (KeyError, TypeError, ValueError):
            self._close_journal(run_id, "unrecoverable")
            return
        if new_sid.seq <= self.agreed_sid.seq:
            # The group moved on without this run; it can never win.
            self._close_journal(run_id, "stale")
            return
        now = self.ctx.clock.now()
        run = RunState(
            run_id=run_id,
            role=ROLE_PROPOSER,
            proposal=proposal,
            body=keys.get("body"),
            new_sid=new_sid,
            new_state=keys.get("new_state"),
            mode=str(keys.get("mode", MODE_OVERWRITE)),
            recipients=self.group.others(self.party_id),
            auth=bytes(keys.get("auth", b"")),
            started_at=now,
            last_activity=now,
        )
        self._runs[run_id] = run
        self._active_run_id = run_id
        self._note_proposal_seen(new_sid)
        # Invariant 2 still holds: the proposer remains committed.
        self.current_state = run.new_state
        self.current_sid = new_sid
        # Re-ingest the responses that arrived before the restart.
        for record in messages:
            message = record["message"]
            if record["direction"] != "received" \
                    or message.get("msg_type") != RESPOND:
                continue
            response = self._parse_part(message, "response")
            if response is None:
                continue
            responder = str(response.payload.get("responder", ""))
            if responder in run.recipients and responder not in run.responses:
                if self._verify_part(response, responder,
                                     "recovered response", output, run_id):
                    run.responses[responder] = response
        if set(run.responses) == set(run.recipients):
            self._complete_as_proposer(run, output)
        else:
            message = propose_message(proposal, run.body)
            waiting = run.waiting_on()
            self._trace_send(run_id, PHASE_M1, message, waiting)
            for recipient in waiting:
                output.send(recipient, message)
            self._obs_message(run_id, PHASE_M1, SENT, message,
                              count=len(waiting))

    def abort_active_run(self, reason: str) -> Output:
        """Locally abandon a blocked run we proposed (fail-safe abort).

        The run is marked invalid locally and the proposer rolls back; the
        logged evidence still shows the run as unresolved group-wide.
        """
        output = Output()
        run = self.active_run()
        if run is None:
            return output
        self._settle(run, False, [f"aborted: {reason}"], output)
        return output

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _state_run_id(self, new_sid: StateId) -> str:
        return self._run_id("state", self.object_name, new_sid.to_dict())

    @staticmethod
    def _proposal_key(sid: StateId) -> bytes:
        return hash_value(["proposal-key", sid.seq, sid.rand_hash])

    def _note_proposal_seen(self, sid: StateId) -> None:
        key = self._proposal_key(sid)
        if key not in self._seen_proposal_keys:
            self._seen_proposal_keys.add(key)
            self._seen_proposal_order.append(key)
            while len(self._seen_proposal_order) > self.seen_window:
                self._seen_proposal_keys.discard(
                    self._seen_proposal_order.popleft()
                )
        if sid.seq > self.highest_seq_seen:
            self.highest_seq_seen = sid.seq

    def _forget_proposal_seen(self, sid: StateId) -> None:
        """Lift a tuple from the replay window (recovery re-drive only)."""
        key = self._proposal_key(sid)
        if key in self._seen_proposal_keys:
            self._seen_proposal_keys.discard(key)
            try:
                self._seen_proposal_order.remove(key)
            except ValueError:
                pass
