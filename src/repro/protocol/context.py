"""Per-party wiring consumed by the protocol engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.prng import RandomSource, SystemRandomSource
from repro.crypto.signature import Signer, Verifier
from repro.crypto.timestamp import TimestampService
from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.obs.trace import PartyTraceContext
from repro.storage.checkpoint import CheckpointStore
from repro.storage.journal import MessageJournal
from repro.storage.log import NonRepudiationLog
from repro.util.clocks import Clock, SystemClock

VerifierResolver = Callable[[str], Verifier]


@dataclass
class PartyContext:
    """Everything a protocol engine needs about the local party.

    One context is shared by all engines (state coordination and
    membership) of one party, so they see one evidence log, one journal
    and one checkpoint store — matching Figure 3, where certificate
    management, non-repudiation and check-pointing are per-organisation
    middleware services.
    """

    party_id: str
    signer: Signer
    resolver: VerifierResolver
    tsa: "Optional[TimestampService]" = None
    tsa_verifier: "Optional[Verifier]" = None
    rng: RandomSource = field(default_factory=SystemRandomSource)
    clock: Clock = field(default_factory=SystemClock)
    evidence: NonRepudiationLog = None  # type: ignore[assignment]
    journal: MessageJournal = None  # type: ignore[assignment]
    checkpoints: CheckpointStore = None  # type: ignore[assignment]
    obs: Instrumentation = NULL_INSTRUMENTATION
    trace: PartyTraceContext = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.trace is None:
            self.trace = PartyTraceContext(self.party_id)
        if self.evidence is None:
            self.evidence = NonRepudiationLog(self.party_id, obs=self.obs)
        if self.journal is None:
            self.journal = MessageJournal(self.party_id, obs=self.obs)
        if self.checkpoints is None:
            self.checkpoints = CheckpointStore()
        if self.tsa is not None and self.tsa_verifier is None:
            self.tsa_verifier = self.tsa.verifier
