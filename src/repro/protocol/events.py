"""Events emitted by the protocol engines.

Engines are sans-IO: handling a message returns an :class:`Output` whose
``messages`` the runtime must transmit and whose ``events`` the upper
layer (the B2BObjectController) reacts to — installing state, signalling
completion to blocked application calls, surfacing misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Output:
    """Result of one engine step: messages to send + events to surface."""

    messages: "list[tuple[str, dict]]" = field(default_factory=list)
    events: "list[Event]" = field(default_factory=list)

    def send(self, recipient: str, message: dict) -> None:
        self.messages.append((recipient, message))

    def broadcast(self, recipients: "list[str]", message: dict) -> None:
        for recipient in recipients:
            self.messages.append((recipient, message))

    def emit(self, event: "Event") -> None:
        self.events.append(event)

    def merge(self, other: "Output") -> None:
        self.messages.extend(other.messages)
        self.events.extend(other.events)


@dataclass
class Event:
    """Base class for engine events."""


@dataclass
class RunCompleted(Event):
    """A coordination run reached a consistent outcome at this party."""

    run_id: str
    object_name: str
    kind: str  # "state" | "connect" | "disconnect" | "evict"
    valid: bool
    role: str  # "proposer" | "responder" | "sponsor" | "subject"
    diagnostics: "list[str]" = field(default_factory=list)
    evidence: "Optional[dict]" = None


@dataclass
class StateInstalled(Event):
    """A newly validated state was installed on the local replica."""

    object_name: str
    state_id: dict
    state: Any
    run_id: str


@dataclass
class StateRolledBack(Event):
    """The proposer rolled its replica back to the last agreed state."""

    object_name: str
    state_id: dict
    state: Any
    run_id: str


@dataclass
class MembershipChanged(Event):
    """The participant set changed (connect / disconnect / evict)."""

    object_name: str
    change: str
    subjects: "list[str]"
    members: "list[str]"
    group_id: dict
    run_id: str


@dataclass
class ConnectionDecided(Event):
    """Outcome of our own connection request (subject side)."""

    object_name: str
    accepted: bool
    members: "list[str]" = field(default_factory=list)
    state: Any = None
    diagnostics: "list[str]" = field(default_factory=list)


@dataclass
class DisconnectionDecided(Event):
    """Outcome of our own voluntary disconnection (subject side)."""

    object_name: str
    evidence: "Optional[dict]" = None


@dataclass
class MisbehaviourEvent(Event):
    """Provable misbehaviour was detected and logged (section 4.4)."""

    party: str
    kind: str
    detail: str
    object_name: str = ""
    run_id: str = ""


@dataclass
class RunBlocked(Event):
    """A run exceeded its progress deadline; evidence identifies laggards."""

    run_id: str
    object_name: str
    kind: str
    waiting_on: "list[str]" = field(default_factory=list)
    age: float = 0.0
