"""Connection and disconnection protocols (section 4.5).

Membership of the participant set ``P`` is managed by three protocols —
connection, voluntary disconnection and eviction — all coordinated by a
*sponsor*:

* the sponsor of a connection request is the most recently joined member;
* the sponsor of a disconnection is the same, unless it is itself the
  subject, in which case the next most recently connected member sponsors;
* the sponsor relays the request to the remaining members, collects their
  signed decisions, distributes the evidence aggregation (``m3``) and —
  for connection — transfers the agreed object state to the admitted
  member in a *welcome* message.

Voluntary disconnection cannot be vetoed (a member wishing to leave could
simply stop cooperating); eviction can.  A rejected connection looks
identical to the subject whether the sponsor rejected it immediately or a
member vetoed it (section 4.5.3).

Member-side handling lives in :class:`MembershipEngine`; the
not-yet-member side of a connection lives in :class:`JoinClient`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.crypto.hashing import hash_value
from repro.crypto.signature import Verifier
from repro.errors import ConcurrencyError, MembershipError
from repro.protocol.context import PartyContext
from repro.protocol.coordination import StateCoordinationEngine, freeze
from repro.protocol.engine_base import EngineBase
from repro.protocol.events import (
    ConnectionDecided,
    DisconnectionDecided,
    MembershipChanged,
    Output,
    RunBlocked,
    RunCompleted,
)
from repro.protocol.ids import GroupId, StateId, new_group_id
from repro.protocol.messages import (
    CONNECT_COMMIT,
    CONNECT_PROPOSE,
    CONNECT_REJECT,
    CONNECT_REQUEST,
    CONNECT_RESPOND,
    CONNECT_WELCOME,
    DISCONNECT_COMMIT,
    DISCONNECT_NOTICE,
    DISCONNECT_PROPOSE,
    DISCONNECT_REQUEST,
    DISCONNECT_RESPOND,
    EVICT_REQUEST,
    SPONSOR_INFO,
    SPONSOR_QUERY,
    SignedPart,
    build_connect_reject,
    build_connect_request,
    build_membership_proposal,
    build_membership_response,
    membership_commit_message,
    membership_message,
    responses_unanimous,
    verify_auth_preimage,
    welcome_message,
)
from repro.protocol.validation import Decision, Validator

KIND_CONNECT = "connect"
KIND_DISCONNECT = "disconnect"
KIND_EVICT = "evict"

ROLE_SPONSOR = "sponsor"
ROLE_MEMBER = "member"

CertificateResolver = Callable[[str, "dict | None"], Verifier]


@dataclass
class MembershipRun:
    """Book-keeping for one membership protocol run at one party."""

    run_id: str
    kind: str
    role: str
    proposal: SignedPart
    new_gid: GroupId
    new_members: "list[str]"
    subjects: "list[str]"
    recipients: "list[str]"
    request: "Optional[SignedPart]" = None
    auth: "Optional[bytes]" = None  # sponsor only
    responses: "dict[str, SignedPart]" = field(default_factory=dict)
    own_response: "Optional[SignedPart]" = None
    commit: "Optional[dict]" = None
    outcome: "Optional[str]" = None
    final_message: "Optional[tuple[str, dict]]" = None  # welcome/reject/notice
    diagnostics: "list[str]" = field(default_factory=list)
    started_at: float = 0.0
    last_activity: float = 0.0

    @property
    def sponsor(self) -> str:
        return str(self.proposal.payload["sponsor"])

    def waiting_on(self) -> "list[str]":
        if self.outcome is not None:
            return []
        if self.role == ROLE_SPONSOR:
            return [p for p in self.recipients if p not in self.responses]
        return [self.sponsor]


class MembershipEngine(EngineBase):
    """Member-side connection/disconnection/eviction coordination."""

    def __init__(self, ctx: PartyContext,
                 state_engine: StateCoordinationEngine,
                 validator: "Validator | None" = None,
                 certificate_resolver: "CertificateResolver | None" = None) -> None:
        super().__init__(ctx, state_engine.object_name)
        self.state_engine = state_engine
        self.group = state_engine.group
        self.validator = validator or state_engine.validator
        self._certificate_resolver = certificate_resolver
        self._runs: "dict[str, MembershipRun]" = {}
        self._active_run_id: "Optional[str]" = None
        self._request_to_run: "dict[bytes, str]" = {}
        self._seen_group_keys: "set[bytes]" = {
            hash_value(["gid-key", self.group.group_id.seq,
                        self.group.group_id.rand_hash])
        }
        # Set while this party awaits the outcome of its own voluntary
        # disconnection request.
        self._pending_departure: "Optional[bytes]" = None
        self._departure_request: "Optional[tuple[str, dict]]" = None

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------

    @property
    def party_id(self) -> str:
        return self.ctx.party_id

    @property
    def busy(self) -> bool:
        return self._active_run_id is not None

    def runs(self) -> "list[MembershipRun]":
        return list(self._runs.values())

    # ------------------------------------------------------------------
    # initiating requests
    # ------------------------------------------------------------------

    def request_disconnect(self) -> "tuple[bytes, Output]":
        """Voluntarily leave the group (section 4.5.4).

        Returns the request digest (for correlating the final notice) and
        the outbound request to the legitimate sponsor.
        """
        if len(self.group) < 2:
            raise MembershipError("cannot disconnect from a singleton group")
        output = Output()
        sponsor = self.group.disconnect_sponsor(self.party_id)
        request_payload = {
            "type": "disconnect-request",
            "subject": self.party_id,
            "object": self.object_name,
            "nonce": self.ctx.rng.random_bytes(32),
            "voluntary": True,
        }
        request = self._signed(request_payload)
        digest = request.digest()
        self._pending_departure = digest
        message = membership_message(DISCONNECT_REQUEST, request)
        self._departure_request = (sponsor, message)
        self._journal_sent("disconnect-request:" + digest.hex(), sponsor, message)
        self._log_evidence("disconnect-request-sent", {"request": request.to_dict()})
        output.send(sponsor, message)
        return digest, output

    def request_eviction(self, subjects: "list[str]") -> "tuple[bytes, Output]":
        """Propose eviction of one or more members (section 4.5.4).

        If this party is itself the legitimate sponsor, the request step
        is omitted and the eviction proposal is issued directly.
        """
        subjects = list(subjects)
        if not subjects:
            raise MembershipError("eviction requires at least one subject")
        if self.party_id in subjects:
            raise MembershipError("cannot request one's own eviction; disconnect instead")
        for subject in subjects:
            if subject not in self.group:
                raise MembershipError(f"{subject!r} is not a member")
        sponsor = self.group.eviction_sponsor(subjects)
        request_payload = {
            "type": "evict-request",
            "proposer": self.party_id,
            "subjects": list(subjects),
            "object": self.object_name,
            "nonce": self.ctx.rng.random_bytes(32),
        }
        request = self._signed(request_payload)
        digest = request.digest()
        if sponsor == self.party_id:
            output = self._sponsor_removal(
                KIND_EVICT, subjects, request=request, voluntary=False,
                proposer=self.party_id,
            )
            return digest, output
        output = Output()
        message = membership_message(EVICT_REQUEST, request)
        self._journal_sent("evict-request:" + digest.hex(), sponsor, message)
        self._log_evidence("evict-request-sent", {"request": request.to_dict()})
        output.send(sponsor, message)
        return digest, output

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def handle(self, sender: str, message: dict) -> Output:
        msg_type = message.get("msg_type")
        if msg_type == CONNECT_REQUEST:
            return self._on_connect_request(sender, message)
        if msg_type == CONNECT_PROPOSE:
            return self._on_propose(sender, message, KIND_CONNECT)
        if msg_type == CONNECT_RESPOND:
            return self._on_respond(sender, message)
        if msg_type == CONNECT_COMMIT:
            return self._on_commit(sender, message)
        if msg_type == DISCONNECT_REQUEST:
            return self._on_disconnect_request(sender, message)
        if msg_type == EVICT_REQUEST:
            return self._on_evict_request(sender, message)
        if msg_type == DISCONNECT_PROPOSE:
            return self._on_propose(sender, message, None)
        if msg_type == DISCONNECT_RESPOND:
            return self._on_respond(sender, message)
        if msg_type == DISCONNECT_COMMIT:
            return self._on_commit(sender, message)
        if msg_type == DISCONNECT_NOTICE:
            return self._on_disconnect_notice(sender, message)
        if msg_type == CONNECT_REJECT:
            return self._on_reject_notice(sender, message)
        if msg_type == SPONSOR_QUERY:
            return self._on_sponsor_query(sender, message)
        output = Output()
        self._misbehaviour(output, sender, "unknown-message",
                           f"unrecognised membership msg_type {msg_type!r}")
        return output

    def _on_sponsor_query(self, sender: str, message: dict) -> Output:
        """Tell a prospective member who the legitimate sponsor is.

        Advisory and unsigned: the subject's admission evidence is checked
        against the real group later, so a lying informant can at worst
        direct the request to a party that will refuse to sponsor it.
        """
        output = Output()
        output.send(sender, {
            "msg_type": SPONSOR_INFO,
            "object": self.object_name,
            "sponsor": self.group.connect_sponsor(),
            "members": list(self.group.members),
        })
        return output

    # ------------------------------------------------------------------
    # sponsor side: requests
    # ------------------------------------------------------------------

    def _on_connect_request(self, sender: str, message: dict) -> Output:
        output = Output()
        request = self._parse_part(message, "part")
        if request is None:
            self._misbehaviour(output, sender, "malformed-message",
                               "unparseable connect request")
            return output
        payload = request.payload
        subject = str(payload.get("subject", ""))
        digest = request.digest()

        known_run_id = self._request_to_run.get(digest)
        if known_run_id is not None:
            run = self._runs.get(known_run_id)
            if run is not None and run.final_message is not None:
                output.send(*run.final_message)
            return output

        # Verify the subject's signature using the certificate carried in
        # the request (the subject is not yet in anyone's resolver).
        try:
            verifier = self._resolve_verifier(subject, payload.get("certificate"))
            verifier.require(payload, request.signature, "connect request")
        except Exception as exc:  # noqa: BLE001 - any failure means reject
            self._log_evidence(
                "connect-request-rejected",
                {"subject": subject, "reason": f"unverifiable request: {exc}"},
            )
            output.send(sender, self._reject_message(digest))
            return output

        self._log_evidence("connect-request-received", {"request": request.to_dict()})

        if self.group.connect_sponsor() != self.party_id:
            # Not the legitimate sponsor: refuse (the subject can learn the
            # correct sponsor from any member).
            output.send(subject, self._reject_message(digest))
            return output
        if subject in self.group:
            output.send(subject, self._reject_message(digest))
            return output
        if self.busy or self.state_engine.busy:
            # Sponsor blocks new coordination requests pending decision on
            # any active request (section 4.5.1).
            output.send(subject, self._reject_message(digest))
            return output

        # Sponsor's own local validation may reject immediately.
        decision = self.validator.validate_connect(subject, list(self.group.members))
        if not decision.accepted:
            self._log_evidence(
                "connect-request-rejected",
                {"subject": subject, "reason": list(decision.diagnostics)},
            )
            output.send(subject, self._reject_message(digest))
            return output

        output.merge(self._sponsor_connect(subject, request))
        return output

    def _on_disconnect_request(self, sender: str, message: dict) -> Output:
        output = Output()
        request = self._parse_part(message, "part")
        if request is None:
            self._misbehaviour(output, sender, "malformed-message",
                               "unparseable disconnect request")
            return output
        payload = request.payload
        subject = str(payload.get("subject", ""))
        digest = request.digest()
        known_run_id = self._request_to_run.get(digest)
        if known_run_id is not None:
            run = self._runs.get(known_run_id)
            if run is not None and run.final_message is not None:
                output.send(*run.final_message)
            return output
        if subject != sender:
            self._misbehaviour(output, sender, "impersonation",
                               f"disconnect request for {subject!r} sent by {sender!r}")
            return output
        if not self._verify_part(request, subject, "disconnect request", output):
            return output
        if subject not in self.group:
            return output
        if self.group.disconnect_sponsor(subject) != self.party_id:
            return output  # not our responsibility; subject should retry
        if self.busy or self.state_engine.busy:
            return output  # request will be retried; sponsor is blocking
        self._log_evidence("disconnect-request-received",
                           {"request": request.to_dict()})
        output.merge(self._sponsor_removal(
            KIND_DISCONNECT, [subject], request=request, voluntary=True,
            proposer=subject,
        ))
        return output

    def _on_evict_request(self, sender: str, message: dict) -> Output:
        output = Output()
        request = self._parse_part(message, "part")
        if request is None:
            self._misbehaviour(output, sender, "malformed-message",
                               "unparseable evict request")
            return output
        payload = request.payload
        proposer = str(payload.get("proposer", ""))
        subjects = [str(s) for s in payload.get("subjects", [])]
        digest = request.digest()
        known_run_id = self._request_to_run.get(digest)
        if known_run_id is not None:
            return output
        if proposer != sender:
            self._misbehaviour(output, sender, "impersonation",
                               f"evict request by {proposer!r} sent by {sender!r}")
            return output
        if not self._verify_part(request, proposer, "evict request", output):
            return output
        if proposer not in self.group or not subjects:
            return output
        if any(subject not in self.group for subject in subjects):
            return output
        if self.group.eviction_sponsor(subjects) != self.party_id:
            return output
        if self.busy or self.state_engine.busy:
            return output
        self._log_evidence("evict-request-received", {"request": request.to_dict()})
        decision = self._removal_decision(subjects, voluntary=False, proposer=proposer)
        if not decision.accepted:
            # Sponsor rejects the eviction outright; tell the proposer.
            self._log_evidence(
                "evict-request-rejected",
                {"proposer": proposer, "subjects": subjects,
                 "reason": list(decision.diagnostics)},
            )
            reject = self._signed({
                "type": "evict-reject",
                "sponsor": self.party_id,
                "object": self.object_name,
                "request_digest": digest,
                "result": "rej",
            })
            output.send(proposer, membership_message(CONNECT_REJECT, reject))
            return output
        output.merge(self._sponsor_removal(
            KIND_EVICT, subjects, request=request, voluntary=False,
            proposer=proposer,
        ))
        return output

    # ------------------------------------------------------------------
    # sponsor side: proposing
    # ------------------------------------------------------------------

    def _sponsor_connect(self, subject: str, request: SignedPart) -> Output:
        output = Output()
        new_members = self.group.membership_after_connect(subject)
        new_gid, _nonce = new_group_id(
            self.group.group_id.seq, new_members, self.ctx.rng
        )
        auth = self.ctx.rng.random_bytes(32)
        proposal_payload = build_membership_proposal(
            kind=KIND_CONNECT,
            sponsor=self.party_id,
            object_name=self.object_name,
            old_gid=self.group.group_id,
            new_gid=new_gid,
            new_members=new_members,
            subjects=[subject],
            agreed_sid=self.state_engine.agreed_sid,
            auth_commitment=hash_value(auth),
            request=request,
        )
        proposal = self._signed(proposal_payload)
        run = self._start_sponsor_run(
            KIND_CONNECT, proposal, new_gid, new_members, [subject],
            request=request, auth=auth,
        )
        message = membership_message(CONNECT_PROPOSE, proposal)
        for recipient in run.recipients:
            self._journal_sent(run.run_id, recipient, message)
            output.send(recipient, message)
        if not run.recipients:
            self._complete_as_sponsor(run, output)
        return output

    def _sponsor_removal(self, kind: str, subjects: "list[str]",
                         request: "SignedPart | None", voluntary: bool,
                         proposer: str) -> Output:
        output = Output()
        if self.busy:
            raise ConcurrencyError(
                f"{self.party_id}: a membership run is already active"
            )
        new_members = self.group.membership_after_removal(subjects)
        new_gid, _nonce = new_group_id(
            self.group.group_id.seq, new_members, self.ctx.rng
        )
        auth = self.ctx.rng.random_bytes(32)
        proposal_payload = build_membership_proposal(
            kind=kind,
            sponsor=self.party_id,
            object_name=self.object_name,
            old_gid=self.group.group_id,
            new_gid=new_gid,
            new_members=new_members,
            subjects=subjects,
            agreed_sid=self.state_engine.agreed_sid,
            auth_commitment=hash_value(auth),
            request=request,
            voluntary=voluntary,
            proposer=proposer,
        )
        proposal = self._signed(proposal_payload)
        run = self._start_sponsor_run(
            kind, proposal, new_gid, new_members, subjects,
            request=request, auth=auth,
        )
        message = membership_message(DISCONNECT_PROPOSE, proposal)
        for recipient in run.recipients:
            self._journal_sent(run.run_id, recipient, message)
            output.send(recipient, message)
        if not run.recipients:
            self._complete_as_sponsor(run, output)
        return output

    def _start_sponsor_run(self, kind: str, proposal: SignedPart,
                           new_gid: GroupId, new_members: "list[str]",
                           subjects: "list[str]",
                           request: "SignedPart | None",
                           auth: bytes) -> MembershipRun:
        run_id = self._membership_run_id(new_gid)
        if kind == KIND_CONNECT:
            recipients = self.group.recipients_excluding(self.party_id)
        else:
            recipients = self.group.recipients_excluding(self.party_id, *subjects)
        now = self.ctx.clock.now()
        run = MembershipRun(
            run_id=run_id,
            kind=kind,
            role=ROLE_SPONSOR,
            proposal=proposal,
            new_gid=new_gid,
            new_members=new_members,
            subjects=subjects,
            recipients=recipients,
            request=request,
            auth=auth,
            started_at=now,
            last_activity=now,
        )
        self._runs[run_id] = run
        self._active_run_id = run_id
        self.state_engine.membership_change_active = True
        if request is not None:
            self._request_to_run[request.digest()] = run_id
        self._note_group_seen(new_gid)
        self._log_evidence(
            f"{kind}-proposal-sent",
            {"run_id": run_id, "proposal": proposal.to_dict()},
        )
        return run

    # ------------------------------------------------------------------
    # member side: proposals
    # ------------------------------------------------------------------

    def _on_propose(self, sender: str, message: dict,
                    forced_kind: "str | None") -> Output:
        output = Output()
        proposal = self._parse_part(message, "part")
        if proposal is None:
            self._misbehaviour(output, sender, "malformed-message",
                               "unparseable membership proposal")
            return output
        payload = proposal.payload
        sponsor = str(payload.get("sponsor", ""))
        kind = forced_kind or str(payload.get("kind", ""))
        if sponsor != sender:
            self._misbehaviour(output, sender, "impersonation",
                               f"proposal sponsored by {sponsor!r} sent by {sender!r}")
            return output
        if not self._verify_part(proposal, sponsor, f"{kind} proposal", output):
            return output
        try:
            new_gid = GroupId.from_dict(payload["new_gid"])
            old_gid = GroupId.from_dict(payload["old_gid"])
            claimed_agreed = StateId.from_dict(payload["agreed_sid"])
            new_members = [str(m) for m in payload["new_members"]]
            subjects = [str(s) for s in payload["subjects"]]
        except (KeyError, TypeError, ValueError):
            self._misbehaviour(output, sponsor, "malformed-message",
                               "membership proposal missing fields")
            return output

        run_id = self._membership_run_id(new_gid)
        existing = self._runs.get(run_id)
        if existing is not None:
            if existing.own_response is not None and existing.outcome is None:
                reply_type = (CONNECT_RESPOND if existing.kind == KIND_CONNECT
                              else DISCONNECT_RESPOND)
                output.send(sponsor, membership_message(
                    reply_type, existing.own_response))
            return output

        self._journal_received(run_id, sender, message)
        self._log_evidence(
            f"{kind}-proposal-received",
            {"run_id": run_id, "proposal": proposal.to_dict()},
        )

        voluntary = bool(payload.get("voluntary", False))
        decision = self._evaluate_membership_proposal(
            kind, sponsor, payload, new_gid, old_gid, claimed_agreed,
            new_members, subjects, voluntary,
        )
        response_payload = build_membership_response(
            kind=kind,
            responder=self.party_id,
            object_name=self.object_name,
            proposal_digest=proposal.digest(),
            decision=decision,
            gid=self.group.group_id,
            agreed_sid=self.state_engine.agreed_sid,
            current_sid=self.state_engine.current_sid,
        )
        response = self._signed(response_payload)
        now = self.ctx.clock.now()
        run = MembershipRun(
            run_id=run_id,
            kind=kind,
            role=ROLE_MEMBER,
            proposal=proposal,
            new_gid=new_gid,
            new_members=new_members,
            subjects=subjects,
            recipients=[],
            own_response=response,
            started_at=now,
            last_activity=now,
        )
        self._runs[run_id] = run
        self._note_group_seen(new_gid)
        if decision.accepted or voluntary:
            self._active_run_id = run_id
            self.state_engine.membership_change_active = True

        self._log_evidence(
            f"{kind}-response-sent",
            {"run_id": run_id, "response": response.to_dict()},
        )
        reply_type = CONNECT_RESPOND if kind == KIND_CONNECT else DISCONNECT_RESPOND
        reply = membership_message(reply_type, response)
        self._journal_sent(run_id, sponsor, reply)
        output.send(sponsor, reply)
        return output

    def _evaluate_membership_proposal(self, kind: str, sponsor: str,
                                      payload: dict, new_gid: GroupId,
                                      old_gid: GroupId, claimed_agreed: StateId,
                                      new_members: "list[str]",
                                      subjects: "list[str]",
                                      voluntary: bool) -> Decision:
        diagnostics: "list[str]" = []
        if sponsor not in self.group:
            diagnostics.append(f"sponsor {sponsor!r} is not a member")
        else:
            legitimate = self._legitimate_sponsor(kind, subjects)
            if sponsor != legitimate:
                diagnostics.append(
                    f"illegitimate sponsor {sponsor!r} (expected {legitimate!r})"
                )
        if old_gid != self.group.group_id:
            diagnostics.append("inconsistent group identifier")
        if claimed_agreed != self.state_engine.agreed_sid:
            diagnostics.append("inconsistent agreed state identifier")
        if self.busy:
            diagnostics.append("busy: concurrent membership run active")
        if self.state_engine.busy:
            diagnostics.append("busy: state coordination in progress")
        if not new_gid.matches_members(new_members):
            diagnostics.append("new group identifier does not match proposed membership")
        if new_gid.seq != old_gid.seq + 1:
            diagnostics.append("group identifier sequence does not advance by one")

        if kind == KIND_CONNECT:
            if len(subjects) != 1:
                diagnostics.append("connection must have exactly one subject")
            else:
                expected = self.group.membership_after_connect(subjects[0]) \
                    if subjects[0] not in self.group else None
                if expected is None:
                    diagnostics.append(f"{subjects[0]!r} is already a member")
                elif new_members != expected:
                    diagnostics.append("proposed membership list is inconsistent")
            request = payload.get("request")
            if not request:
                diagnostics.append("connection proposal lacks the subject's request")
            else:
                try:
                    request_part = SignedPart.from_dict(request)
                    subject = str(request_part.payload.get("subject", ""))
                    verifier = self._resolve_verifier(
                        subject, request_part.payload.get("certificate")
                    )
                    verifier.require(request_part.payload, request_part.signature,
                                     "embedded connect request")
                    if subjects and subject != subjects[0]:
                        diagnostics.append("request subject differs from proposal subject")
                except Exception as exc:  # noqa: BLE001
                    diagnostics.append(f"embedded request unverifiable: {exc}")
        else:
            try:
                expected_members = self.group.membership_after_removal(subjects)
            except MembershipError as exc:
                expected_members = None
                diagnostics.append(str(exc))
            if expected_members is not None and new_members != expected_members:
                diagnostics.append("proposed membership list is inconsistent")
            if voluntary:
                request = payload.get("request")
                if not request:
                    diagnostics.append("voluntary disconnection lacks the subject's request")
                else:
                    try:
                        request_part = SignedPart.from_dict(request)
                        subject = str(request_part.payload.get("subject", ""))
                        self.ctx.resolver(subject).require(
                            request_part.payload, request_part.signature,
                            "embedded disconnect request",
                        )
                        if subjects != [subject]:
                            diagnostics.append(
                                "request subject differs from proposal subject"
                            )
                    except Exception as exc:  # noqa: BLE001
                        diagnostics.append(f"embedded request unverifiable: {exc}")

        if diagnostics:
            return Decision.reject(*diagnostics)

        if kind == KIND_CONNECT:
            return self.validator.validate_connect(subjects[0], list(self.group.members))
        decision = self._removal_decision(
            subjects, voluntary=voluntary,
            proposer=str(payload.get("proposer", sponsor)),
        )
        if voluntary and not decision.accepted:
            # Voluntary disconnection cannot be vetoed; record diagnostics
            # in evidence but acknowledge the departure.
            self._log_evidence(
                "disconnect-objection",
                {"subjects": subjects, "diagnostics": list(decision.diagnostics)},
            )
            return Decision.accept()
        return decision

    def _removal_decision(self, subjects: "list[str]", voluntary: bool,
                          proposer: str) -> Decision:
        diagnostics: "list[str]" = []
        for subject in subjects:
            decision = self.validator.validate_disconnect(subject, voluntary, proposer)
            if not decision.accepted:
                diagnostics.extend(
                    decision.diagnostics or (f"disconnect of {subject!r} rejected",)
                )
        if diagnostics:
            return Decision.reject(*diagnostics)
        return Decision.accept()

    def _legitimate_sponsor(self, kind: str, subjects: "list[str]") -> str:
        if kind == KIND_CONNECT:
            return self.group.connect_sponsor()
        if kind == KIND_DISCONNECT and len(subjects) == 1:
            return self.group.disconnect_sponsor(subjects[0])
        return self.group.eviction_sponsor(subjects)

    # ------------------------------------------------------------------
    # sponsor side: responses and commit
    # ------------------------------------------------------------------

    def _on_respond(self, sender: str, message: dict) -> Output:
        output = Output()
        response = self._parse_part(message, "part")
        if response is None:
            self._misbehaviour(output, sender, "malformed-message",
                               "unparseable membership response")
            return output
        payload = response.payload
        responder = str(payload.get("responder", ""))
        if responder != sender:
            self._misbehaviour(output, sender, "impersonation",
                               f"response by {responder!r} sent by {sender!r}")
            return output
        run = self._find_run_by_proposal_digest(
            bytes(payload.get("proposal_digest", b""))
        )
        if run is None or run.role != ROLE_SPONSOR:
            self._misbehaviour(output, responder, "unsolicited-response",
                               "no sponsor run matches this response")
            return output
        if run.outcome is not None:
            if run.commit is not None:
                output.send(responder, run.commit)
            return output
        if responder not in run.recipients:
            self._misbehaviour(output, responder, "unsolicited-response",
                               "responder not a recipient of this proposal",
                               run.run_id)
            return output
        if not self._verify_part(response, responder, f"{run.kind} response",
                                 output, run.run_id):
            return output
        previous = run.responses.get(responder)
        if previous is not None:
            if previous.payload != payload:
                self._misbehaviour(output, responder, "equivocation",
                                   "two different signed membership responses",
                                   run.run_id)
            return output
        self._journal_received(run.run_id, responder, message)
        self._log_evidence(
            f"{run.kind}-response-received",
            {"run_id": run.run_id, "response": response.to_dict()},
        )
        run.responses[responder] = response
        run.last_activity = self.ctx.clock.now()
        if set(run.responses) == set(run.recipients):
            self._complete_as_sponsor(run, output)
        return output

    def _complete_as_sponsor(self, run: MembershipRun, output: Output) -> None:
        responses = [run.responses[p] for p in run.recipients]
        unanimous, diagnostics = responses_unanimous(responses)
        expected_digest = run.proposal.digest()
        for part in responses:
            if bytes(part.payload.get("proposal_digest", b"")) != expected_digest:
                unanimous = False
                diagnostics.append(
                    f"{part.signer}: response references a different proposal"
                )
        if run.kind == KIND_DISCONNECT:
            # Voluntary disconnection cannot be vetoed; responses are
            # receipts only.
            unanimous = True

        commit_type = (CONNECT_COMMIT if run.kind == KIND_CONNECT
                       else DISCONNECT_COMMIT)
        commit = membership_commit_message(
            commit_type, run.kind, self.object_name, run.new_gid,
            run.auth or b"", run.proposal, responses,
        )
        run.commit = commit
        for recipient in run.recipients:
            self._journal_sent(run.run_id, recipient, commit)
            output.send(recipient, commit)
        self._log_evidence(
            f"{run.kind}-commit-sent",
            {"run_id": run.run_id, "valid": unanimous, "diagnostics": diagnostics},
        )
        self._settle(run, unanimous, diagnostics, output, responses)

        # Final message to the subject.
        if run.kind == KIND_CONNECT:
            subject = run.subjects[0]
            if unanimous:
                final = self._build_welcome(run, responses)
            else:
                final = self._reject_message(
                    run.request.digest() if run.request else b""
                )
            run.final_message = (subject, final)
            output.send(subject, final)
        elif run.kind == KIND_DISCONNECT:
            subject = run.subjects[0]
            notice_part = self._signed({
                "type": "disconnect-notice",
                "sponsor": self.party_id,
                "object": self.object_name,
                "new_gid": run.new_gid.to_dict(),
                "subjects": list(run.subjects),
            })
            final = membership_message(
                DISCONNECT_NOTICE, notice_part, extra={"commit": run.commit}
            )
            run.final_message = (subject, final)
            output.send(subject, final)

    def _build_welcome(self, run: MembershipRun,
                       responses: "list[SignedPart]") -> dict:
        welcome_payload = {
            "type": "connect-welcome",
            "sponsor": self.party_id,
            "object": self.object_name,
            "members": list(run.new_members),
            "new_gid": run.new_gid.to_dict(),
            "agreed_sid": self.state_engine.agreed_sid.to_dict(),
        }
        part = self._signed(welcome_payload)
        return welcome_message(part, self.state_engine.agreed_state,
                               run.commit or {})

    # ------------------------------------------------------------------
    # member side: commit
    # ------------------------------------------------------------------

    def _on_commit(self, sender: str, message: dict) -> Output:
        output = Output()
        try:
            new_gid = GroupId.from_dict(message["new_gid"])
        except (KeyError, TypeError, ValueError):
            self._misbehaviour(output, sender, "malformed-message",
                               "membership commit missing group identifier")
            return output
        run_id = self._membership_run_id(new_gid)
        run = self._runs.get(run_id)
        if run is None:
            proposal = self._parse_part(message, "proposal")
            if proposal is not None and self._verify_part(
                    proposal, None, "membership commit proposal", output, run_id):
                self._misbehaviour(
                    output, str(proposal.payload.get("sponsor", sender)),
                    "selective-send",
                    "membership commit for a proposal we were never sent",
                    run_id,
                )
            return output
        if run.outcome is not None:
            return output
        if run.role != ROLE_MEMBER:
            return output
        self._journal_received(run_id, sender, message)
        valid, diagnostics, responses = self._check_membership_commit(
            run, message, output
        )
        run.commit = message
        self._log_evidence(
            f"{run.kind}-commit-received",
            {"run_id": run_id, "valid": valid, "diagnostics": diagnostics},
        )
        self._settle(run, valid, diagnostics, output, responses)
        return output

    def _check_membership_commit(self, run: MembershipRun, message: dict,
                                 output: Output) -> "tuple[bool, list[str], list[SignedPart]]":
        diagnostics: "list[str]" = []
        sponsor = run.sponsor
        embedded = self._parse_part(message, "proposal")
        if embedded is None or embedded.payload != run.proposal.payload:
            diagnostics.append("commit embeds a different proposal than we received")
            self._misbehaviour(output, sponsor, "inconsistent-message",
                               "membership commit/proposal mismatch", run.run_id)
            return False, diagnostics, []
        auth = bytes(message.get("auth", b""))
        commitment = bytes(run.proposal.payload.get("auth_commitment", b""))
        if not verify_auth_preimage(auth, commitment):
            diagnostics.append("authenticator does not match the committed hash")
            self._misbehaviour(output, sponsor, "forged-commit",
                               "invalid membership authenticator", run.run_id)
            return False, diagnostics, []
        responses: "list[SignedPart]" = []
        for raw in message.get("responses", []):
            try:
                responses.append(SignedPart.from_dict(raw))
            except (KeyError, TypeError, ValueError):
                diagnostics.append("malformed response in membership commit")
                return False, diagnostics, []
        if run.kind == KIND_CONNECT:
            expected = set(self.group.recipients_excluding(sponsor))
        else:
            expected = set(self.group.recipients_excluding(sponsor, *run.subjects))
        seen: "set[str]" = set()
        expected_digest = run.proposal.digest()
        for part in responses:
            responder = str(part.payload.get("responder", ""))
            if responder == self.party_id:
                if run.own_response is None or part.payload != run.own_response.payload:
                    diagnostics.append("our own membership response was altered")
                    self._misbehaviour(output, sponsor, "evidence-tampering",
                                       "bundle alters our signed response", run.run_id)
                    return False, diagnostics, responses
            if not self._verify_part(part, responder, "bundled membership response",
                                     output, run.run_id):
                diagnostics.append(f"invalid signature on response by {responder!r}")
                return False, diagnostics, responses
            if bytes(part.payload.get("proposal_digest", b"")) != expected_digest:
                diagnostics.append(
                    f"{responder}: response references a different proposal"
                )
            seen.add(responder)
        if seen != expected:
            missing = sorted(expected - seen)
            extra = sorted(seen - expected)
            if missing:
                diagnostics.append(f"bundle lacks responses from {missing}")
            if extra:
                diagnostics.append(f"bundle has responses from non-recipients {extra}")
            self._misbehaviour(output, sponsor, "incomplete-bundle",
                               "; ".join(diagnostics), run.run_id)
            return False, diagnostics, responses
        unanimous, veto_diags = responses_unanimous(responses)
        diagnostics.extend(veto_diags)
        if run.kind == KIND_DISCONNECT:
            unanimous = True  # receipts, not votes
        return unanimous, diagnostics, responses

    # ------------------------------------------------------------------
    # subject side: final notices
    # ------------------------------------------------------------------

    def _on_disconnect_notice(self, sender: str, message: dict) -> Output:
        output = Output()
        part = self._parse_part(message, "part")
        if part is None or self._pending_departure is None:
            return output
        if not self._verify_part(part, sender, "disconnect notice", output):
            return output
        self._log_evidence("disconnect-notice-received",
                           {"notice": part.to_dict(),
                            "commit": message.get("commit")})
        self._pending_departure = None
        output.emit(DisconnectionDecided(
            object_name=self.object_name,
            evidence=message.get("commit"),
        ))
        return output

    def _on_reject_notice(self, sender: str, message: dict) -> Output:
        """A sponsor rejected our eviction request outright."""
        output = Output()
        part = self._parse_part(message, "part")
        if part is None:
            return output
        if not self._verify_part(part, sender, "eviction reject", output):
            return output
        if part.payload.get("type") != "evict-reject":
            return output
        self._log_evidence("evict-request-rejected-notice",
                           {"reject": part.to_dict()})
        output.emit(RunCompleted(
            run_id=bytes(part.payload.get("request_digest", b"")).hex(),
            object_name=self.object_name,
            kind=KIND_EVICT,
            valid=False,
            role="proposer",
            diagnostics=["rejected by sponsor"],
        ))
        return output

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------

    def _settle(self, run: MembershipRun, valid: bool,
                diagnostics: "list[str]", output: Output,
                responses: "list[SignedPart]") -> None:
        run.outcome = "valid" if valid else "invalid"
        run.diagnostics = diagnostics
        if self._active_run_id == run.run_id:
            self._active_run_id = None
            self.state_engine.membership_change_active = False
        evidence = {
            "type": "authenticated-decision",
            "object": self.object_name,
            "run_id": run.run_id,
            "kind": run.kind,
            "new_gid": run.new_gid.to_dict(),
            "auth": run.auth if run.auth is not None else bytes(
                (run.commit or {}).get("auth", b"")
            ),
            "proposal": run.proposal.to_dict(),
            "responses": [part.to_dict() for part in responses],
            "valid": valid,
            "diagnostics": list(diagnostics),
        }
        self._log_evidence("authenticated-decision", evidence)
        self._close_journal(run.run_id, run.outcome)
        if valid:
            self.group.apply_change(run.new_members, run.new_gid)
            self.ctx.checkpoints.save(
                f"{self.object_name}::group",
                run.new_gid.to_dict(),
                {"members": list(run.new_members),
                 "gid": run.new_gid.to_dict(),
                 "sponsor_mode": self.group.sponsor_mode},
            )
            output.emit(MembershipChanged(
                object_name=self.object_name,
                change=run.kind,
                subjects=list(run.subjects),
                members=list(run.new_members),
                group_id=run.new_gid.to_dict(),
                run_id=run.run_id,
            ))
        output.emit(RunCompleted(
            run_id=run.run_id,
            object_name=self.object_name,
            kind=run.kind,
            valid=valid,
            role=run.role,
            diagnostics=list(diagnostics),
            evidence=evidence,
        ))

    # ------------------------------------------------------------------
    # progress / recovery
    # ------------------------------------------------------------------

    def check_progress(self, timeout: float) -> Output:
        output = Output()
        now = self.ctx.clock.now()
        for run in self._runs.values():
            if run.outcome is None and now - run.last_activity > timeout:
                output.emit(RunBlocked(
                    run_id=run.run_id,
                    object_name=self.object_name,
                    kind=run.kind,
                    waiting_on=run.waiting_on(),
                    age=now - run.last_activity,
                ))
        return output

    def resend_outstanding(self) -> Output:
        output = Output()
        if self._pending_departure is not None and self._departure_request is not None:
            output.send(*self._departure_request)
        for run in self._runs.values():
            if run.outcome is not None:
                continue
            if run.role == ROLE_SPONSOR:
                msg_type = (CONNECT_PROPOSE if run.kind == KIND_CONNECT
                            else DISCONNECT_PROPOSE)
                message = membership_message(msg_type, run.proposal)
                for recipient in run.waiting_on():
                    output.send(recipient, message)
            elif run.own_response is not None:
                reply_type = (CONNECT_RESPOND if run.kind == KIND_CONNECT
                              else DISCONNECT_RESPOND)
                output.send(run.sponsor, membership_message(
                    reply_type, run.own_response))
        return output

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _membership_run_id(self, new_gid: GroupId) -> str:
        return self._run_id("membership", self.object_name, new_gid.to_dict())

    def _note_group_seen(self, gid: GroupId) -> None:
        self._seen_group_keys.add(hash_value(["gid-key", gid.seq, gid.rand_hash]))

    def _find_run_by_proposal_digest(self, digest: bytes) -> "Optional[MembershipRun]":
        for run in self._runs.values():
            if run.proposal.digest() == digest:
                return run
        return None

    def _resolve_verifier(self, party_id: str,
                          certificate: "dict | None") -> Verifier:
        if self._certificate_resolver is not None:
            return self._certificate_resolver(party_id, certificate)
        return self.ctx.resolver(party_id)

    def _reject_message(self, request_digest: bytes) -> dict:
        reject_payload = build_connect_reject(
            self.party_id, self.object_name, request_digest
        )
        return membership_message(CONNECT_REJECT, self._signed(reject_payload))


class JoinClient(EngineBase):
    """The subject side of a connection request (not yet a member).

    Sends the signed request to the sponsor and interprets the welcome or
    rejection.  On acceptance it verifies the admission evidence bundle —
    the sponsor's signed proposal, every member's signed accept decision
    and agreed-state attestation — before trusting the transferred state.
    """

    def __init__(self, ctx: PartyContext, object_name: str,
                 certificate: "dict | None" = None) -> None:
        super().__init__(ctx, object_name)
        self.certificate = certificate
        self.request: "Optional[SignedPart]" = None
        self.outcome: "Optional[ConnectionDecided]" = None
        self.sponsor: "Optional[str]" = None
        self._discovery_peer: "Optional[str]" = None
        # Populated on a verified welcome, for constructing the session.
        self.welcome_members: "Optional[list[str]]" = None
        self.welcome_gid: "Optional[GroupId]" = None
        self.welcome_sid: "Optional[StateId]" = None
        self.welcome_state: Any = None

    def request_connect_via(self, member: str) -> Output:
        """Discover the legitimate sponsor through any known member.

        Section 4.5.3: any member can identify the sponsor and provide
        this information to the subject.  The actual connection request
        follows automatically once the sponsor info arrives.
        """
        output = Output()
        self._discovery_peer = member
        output.send(member, {"msg_type": SPONSOR_QUERY,
                             "object": self.object_name})
        return output

    def request_connect(self, sponsor: str) -> Output:
        """Build and send the signed connection request (``m0``)."""
        output = Output()
        self.sponsor = sponsor
        request_payload = build_connect_request(
            subject=self.ctx.party_id,
            object_name=self.object_name,
            nonce=self.ctx.rng.random_bytes(32),
            certificate=self.certificate,
        )
        self.request = self._signed(request_payload)
        self._log_evidence("connect-request-sent",
                           {"request": self.request.to_dict()})
        message = membership_message(CONNECT_REQUEST, self.request)
        run_id = "connect-request:" + self.request.digest().hex()
        self._journal_sent(run_id, sponsor, message)
        output.send(sponsor, message)
        return output

    def resend_request(self) -> Output:
        output = Output()
        if self.outcome is None and self.request is not None and self.sponsor:
            output.send(self.sponsor,
                        membership_message(CONNECT_REQUEST, self.request))
        return output

    def handle(self, sender: str, message: dict) -> Output:
        msg_type = message.get("msg_type")
        if msg_type == CONNECT_WELCOME:
            return self._on_welcome(sender, message)
        if msg_type == CONNECT_REJECT:
            return self._on_reject(sender, message)
        if msg_type == SPONSOR_INFO:
            return self._on_sponsor_info(sender, message)
        return Output()

    def _on_sponsor_info(self, sender: str, message: dict) -> Output:
        """Follow up a sponsor discovery with the real request."""
        if self.request is not None or self.outcome is not None:
            return Output()  # already requested or settled
        if sender != getattr(self, "_discovery_peer", None):
            return Output()  # unsolicited advice: ignore
        sponsor = str(message.get("sponsor", ""))
        if not sponsor:
            return Output()
        return self.request_connect(sponsor)

    def _on_reject(self, sender: str, message: dict) -> Output:
        output = Output()
        if self.outcome is not None:
            return output
        part = self._parse_part(message, "part")
        if part is None:
            return output
        if not self._verify_part(part, sender, "connect reject", output):
            return output
        self._log_evidence("connect-rejected", {"reject": part.to_dict()})
        self.outcome = ConnectionDecided(
            object_name=self.object_name, accepted=False,
            diagnostics=["request rejected"],
        )
        output.emit(self.outcome)
        return output

    def _on_welcome(self, sender: str, message: dict) -> Output:
        output = Output()
        if self.outcome is not None:
            return output
        part = self._parse_part(message, "part")
        if part is None:
            return output
        if not self._verify_part(part, sender, "connect welcome", output):
            return output
        payload = part.payload
        try:
            members = [str(m) for m in payload["members"]]
            new_gid = GroupId.from_dict(payload["new_gid"])
            agreed_sid = StateId.from_dict(payload["agreed_sid"])
        except (KeyError, TypeError, ValueError):
            self._misbehaviour(output, sender, "malformed-message",
                               "welcome missing fields")
            return output
        agreed_state = message.get("agreed_state")
        diagnostics = self._verify_welcome(
            sender, message, members, new_gid, agreed_sid, agreed_state
        )
        if diagnostics:
            self._misbehaviour(output, sender, "invalid-welcome",
                               "; ".join(diagnostics))
            self.outcome = ConnectionDecided(
                object_name=self.object_name, accepted=False,
                diagnostics=diagnostics,
            )
            output.emit(self.outcome)
            return output
        self._log_evidence("connect-welcome-received", {
            "welcome": part.to_dict(),
            "commit": message.get("commit"),
        })
        self.welcome_members = members
        self.welcome_gid = new_gid
        self.welcome_sid = agreed_sid
        self.welcome_state = freeze(agreed_state)
        self.outcome = ConnectionDecided(
            object_name=self.object_name,
            accepted=True,
            members=members,
            state=freeze(agreed_state),
        )
        output.emit(self.outcome)
        return output

    def _verify_welcome(self, sponsor: str, message: dict,
                        members: "list[str]", new_gid: GroupId,
                        agreed_sid: StateId,
                        agreed_state: Any) -> "list[str]":
        diagnostics: "list[str]" = []
        if self.ctx.party_id not in members:
            diagnostics.append("welcome membership does not include us")
        if members and members[-1] != self.ctx.party_id:
            diagnostics.append("we are not the most recently joined member")
        if not new_gid.matches_members(members):
            diagnostics.append("group identifier does not match membership")
        if not agreed_sid.matches_state(agreed_state):
            diagnostics.append("transferred state does not match the agreed identifier")
        commit = message.get("commit") or {}
        proposal_raw = commit.get("proposal")
        if len(members) > 2:
            # With other members present, the commit bundle must prove
            # their unanimous agreement and attest the same agreed state.
            if not isinstance(proposal_raw, dict):
                diagnostics.append("welcome lacks the admission proposal")
                return diagnostics
            try:
                proposal = SignedPart.from_dict(proposal_raw)
            except (KeyError, TypeError, ValueError):
                diagnostics.append("welcome carries a malformed proposal")
                return diagnostics
            if str(proposal.payload.get("sponsor")) != sponsor:
                diagnostics.append("admission proposal sponsored by someone else")
            if proposal.payload.get("new_gid") != new_gid.to_dict():
                diagnostics.append("admission proposal for a different group")
            if proposal.payload.get("agreed_sid") != agreed_sid.to_dict():
                diagnostics.append("admission proposal attests a different agreed state")
            responses: "list[SignedPart]" = []
            for raw in commit.get("responses", []):
                try:
                    responses.append(SignedPart.from_dict(raw))
                except (KeyError, TypeError, ValueError):
                    diagnostics.append("malformed response in admission evidence")
                    return diagnostics
            expected = set(members) - {sponsor, self.ctx.party_id}
            seen: "set[str]" = set()
            for part in responses:
                responder = str(part.payload.get("responder", ""))
                try:
                    self.ctx.resolver(responder).require(
                        part.payload, part.signature, "admission response"
                    )
                except Exception as exc:  # noqa: BLE001
                    diagnostics.append(f"unverifiable admission response: {exc}")
                    continue
                decision = part.payload.get("decision", {})
                if decision.get("verdict") != "accept":
                    diagnostics.append(f"{responder} did not accept our admission")
                if part.payload.get("agreed_sid") != agreed_sid.to_dict():
                    diagnostics.append(
                        f"{responder} attests a different agreed state"
                    )
                seen.add(responder)
            if seen != expected:
                diagnostics.append(
                    f"admission evidence incomplete: have {sorted(seen)}, "
                    f"expected {sorted(expected)}"
                )
        return diagnostics
