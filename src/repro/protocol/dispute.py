"""Extra-protocol dispute resolution.

The protocol "is designed to generate the evidence necessary for
application-level resolution of the resultant blocking" (section 4.1) and
"this must be resolved at the application level by, for example, using the
evidence generated to invoke a dispute resolution procedure" (section 4.4).

:class:`Arbiter` models that procedure: a third party that accepts each
disputant's evidence log, checks the logs' own integrity, independently
re-verifies authenticated-decision bundles, and rules on claims such as
"state X was validly agreed" or "party Y misbehaved".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from repro.crypto.signature import Verifier
from repro.errors import DisputeError, LogCorruptionError, StorageError
from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.protocol.evidence import (
    VerifiedDecision,
    find_equivocation,
    verify_authenticated_decision,
)
from repro.protocol.messages import SignedPart, VerifierResolver
from repro.storage.log import NonRepudiationLog

RULING_UPHELD = "upheld"
RULING_REJECTED = "rejected"
RULING_UNDECIDABLE = "undecidable"


@dataclass
class Ruling:
    """An arbiter's decision on one claim."""

    claim: str
    outcome: str
    reasons: "list[str]" = field(default_factory=list)
    culprits: "list[str]" = field(default_factory=list)

    @property
    def upheld(self) -> bool:
        return self.outcome == RULING_UPHELD


@dataclass
class SubmittedEvidence:
    """One disputant's submission: their identity and evidence log."""

    party_id: str
    log: NonRepudiationLog
    log_intact: bool = True
    log_error: str = ""


class Arbiter:
    """Trusted third party ruling from non-repudiation evidence."""

    def __init__(self, resolver: VerifierResolver,
                 tsa_verifier: "Verifier | None" = None,
                 obs: "Instrumentation | None" = None) -> None:
        self._resolver = resolver
        self._tsa_verifier = tsa_verifier
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._submissions: "dict[str, SubmittedEvidence]" = {}

    def submit(self, party_id: str, log: NonRepudiationLog) -> SubmittedEvidence:
        """Accept a party's evidence log, checking its hash chain first.

        A party presenting a tampered log is recorded as such; its
        evidence carries no weight in subsequent rulings.
        """
        submission = SubmittedEvidence(party_id=party_id, log=log)
        try:
            log.verify_chain()
        except (LogCorruptionError, StorageError) as exc:
            submission.log_intact = False
            submission.log_error = str(exc)
        self._submissions[party_id] = submission
        if self._obs.enabled:
            self._obs.evidence_submitted(party_id, submission.log_intact)
        return submission

    def _intact_submissions(self) -> "list[SubmittedEvidence]":
        return [s for s in self._submissions.values() if s.log_intact]

    # ------------------------------------------------------------------
    # rulings
    # ------------------------------------------------------------------

    def _timed_ruling(self, kind: str, started: float, ruling: Ruling) -> Ruling:
        if self._obs.enabled:
            self._obs.claim_checked(kind, ruling.outcome, ruling.culprits,
                                    time.perf_counter() - started)
        return ruling

    def rule_on_state_validity(self, object_name: str, run_id: str,
                               claimant: str) -> Ruling:
        started = time.perf_counter()
        return self._timed_ruling(
            "state-validity", started,
            self._rule_on_state_validity(object_name, run_id, claimant),
        )

    def _rule_on_state_validity(self, object_name: str, run_id: str,
                                claimant: str) -> Ruling:
        """Rule on the claim "run *run_id* validly agreed a new state".

        The claim is upheld iff the claimant's (intact) log contains an
        authenticated-decision bundle for the run that independently
        verifies as authentic and unanimous.  A misbehaving party cannot
        fabricate such a bundle (it cannot forge accepting responses) and
        cannot deny one held by others.
        """
        claim = f"state of {object_name!r} validly agreed in run {run_id[:12]}"
        submission = self._submissions.get(claimant)
        if submission is None:
            raise DisputeError(f"no evidence submitted by {claimant!r}")
        if not submission.log_intact:
            return Ruling(claim, RULING_REJECTED,
                          [f"claimant's evidence log is corrupt: {submission.log_error}"],
                          culprits=[claimant])
        bundle_entry = submission.log.find(
            "authenticated-decision", run_id=run_id, object=object_name
        )
        if bundle_entry is None:
            return Ruling(claim, RULING_UNDECIDABLE,
                          ["claimant holds no decision bundle for this run"])
        verdict = self._verify_bundle(bundle_entry.payload)
        if not verdict.authentic:
            return Ruling(claim, RULING_REJECTED,
                          ["bundle fails verification"] + verdict.problems,
                          culprits=[claimant])
        if not verdict.valid:
            return Ruling(claim, RULING_REJECTED,
                          ["bundle shows the proposal was not unanimously accepted"]
                          + verdict.diagnostics)
        return Ruling(claim, RULING_UPHELD,
                      [f"unanimous agreement by {sorted(verdict.responders)} "
                       f"proposed by {verdict.proposer}"])

    def rule_on_misbehaviour(self, accused: str) -> Ruling:
        started = time.perf_counter()
        return self._timed_ruling(
            "misbehaviour", started, self._rule_on_misbehaviour(accused)
        )

    def _rule_on_misbehaviour(self, accused: str) -> Ruling:
        """Rule on the claim "party *accused* misbehaved".

        Upheld when any intact submission contains either (a) a recorded
        misbehaviour entry whose embedded evidence self-verifies (an
        invalid signature cannot be checked after the fact, but
        equivocation can), or (b) two conflicting signed responses by the
        accused, found across all submissions.
        """
        claim = f"party {accused!r} misbehaved"
        reasons: "list[str]" = []
        # Cross-log equivocation scan: collect every signed response by
        # the accused from every intact log.
        parts: "list[SignedPart]" = []
        for submission in self._intact_submissions():
            for kind in ("response-received", "connect-response-received",
                         "disconnect-response-received", "evict-response-received"):
                for entry in submission.log.entries(kind):
                    raw = entry.payload.get("response")
                    if not isinstance(raw, dict):
                        continue
                    try:
                        part = SignedPart.from_dict(raw)
                    except (KeyError, TypeError, ValueError):
                        continue
                    if part.signer != accused:
                        continue
                    try:
                        self._resolver(accused).require(
                            part.payload, part.signature, "dispute evidence"
                        )
                    except Exception:  # noqa: BLE001 - unverifiable: no weight
                        continue
                    parts.append(part)
        conflict = find_equivocation(parts)
        if conflict is not None:
            reasons.append(
                "two conflicting signed responses to one proposal were presented"
            )
            return Ruling(claim, RULING_UPHELD, reasons, culprits=[accused])
        # Recorded misbehaviour entries are testimonial: they support but
        # do not by themselves prove the claim (any party can write them).
        witnesses = []
        for submission in self._intact_submissions():
            if submission.log.find("misbehaviour", party=accused) is not None:
                witnesses.append(submission.party_id)
        if witnesses:
            return Ruling(
                claim, RULING_UNDECIDABLE,
                [f"testimony from {sorted(witnesses)} but no self-verifying proof"],
            )
        return Ruling(claim, RULING_REJECTED, ["no supporting evidence"])

    def rule_on_participation(self, object_name: str, run_id: str,
                              participant: str) -> Ruling:
        started = time.perf_counter()
        return self._timed_ruling(
            "participation", started,
            self._rule_on_participation(object_name, run_id, participant),
        )

    def _rule_on_participation(self, object_name: str, run_id: str,
                               participant: str) -> Ruling:
        """Rule on "party *participant* took part in run *run_id*".

        Upheld when any intact log holds a message signed by the
        participant that is linked to the run — the paper's guarantee that
        irrefutable evidence of who participated is generated.
        """
        claim = f"{participant!r} participated in run {run_id[:12]}"
        for submission in self._intact_submissions():
            bundle_entry = submission.log.find(
                "authenticated-decision", run_id=run_id, object=object_name
            )
            if bundle_entry is None:
                continue
            verdict = self._verify_bundle(bundle_entry.payload)
            if not verdict.authentic:
                continue
            if participant == verdict.proposer or participant in verdict.responders:
                return Ruling(claim, RULING_UPHELD,
                              [f"signed message in bundle held by {submission.party_id}"])
        return Ruling(claim, RULING_UNDECIDABLE, ["no verifiable linkage found"])

    def _verify_bundle(self, bundle: dict) -> VerifiedDecision:
        return verify_authenticated_decision(
            bundle, self._resolver, tsa_verifier=self._tsa_verifier
        )
