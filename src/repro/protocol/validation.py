"""Validation interfaces and decisions.

"State changes are subject to a locally evaluated validation process.
State validation is application-specific and may be arbitrarily complex"
(section 3).  The protocol engines call out to a :class:`Validator` for
every proposal they receive; the middleware's own systematic checks
(invariants, signatures, message consistency) run before the upcall and
can reject a proposal without consulting the application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

ACCEPT = "accept"
REJECT = "reject"


@dataclass(frozen=True)
class Decision:
    """``D_j`` — a party's decision on the validity of a proposal.

    A decision is accept or reject plus optional diagnostic information
    (section 4.2).  The proposer's own decision is, by definition, accept.
    """

    verdict: str
    diagnostics: "tuple[str, ...]" = field(default=())

    def __post_init__(self) -> None:
        if self.verdict not in (ACCEPT, REJECT):
            raise ValueError(f"verdict must be accept/reject, got {self.verdict!r}")

    @property
    def accepted(self) -> bool:
        return self.verdict == ACCEPT

    def to_dict(self) -> dict:
        return {"verdict": self.verdict, "diagnostics": list(self.diagnostics)}

    @staticmethod
    def from_dict(data: dict) -> "Decision":
        return Decision(
            verdict=str(data["verdict"]),
            diagnostics=tuple(str(item) for item in data.get("diagnostics", [])),
        )

    @staticmethod
    def accept() -> "Decision":
        return Decision(ACCEPT)

    @staticmethod
    def reject(*diagnostics: str) -> "Decision":
        return Decision(REJECT, tuple(diagnostics))


class Validator:
    """Application-specific validation upcalls.

    Subclass (or use :class:`CallbackValidator`) to encode the local
    policy of one organisation.  Each method corresponds to one of the
    ``validate*`` upcalls in the B2BObject interface (Figure 4).
    """

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        """Validate a proposed overwrite of object state."""
        return Decision.accept()

    def validate_update(self, update: Any, resulting: Any, current: Any,
                        proposer: str) -> Decision:
        """Validate a proposed incremental update to object state."""
        return self.validate_state(resulting, current, proposer)

    def validate_connect(self, subject: str, members: "list[str]") -> Decision:
        """Validate the admission of *subject* to the sharing group."""
        return Decision.accept()

    def validate_disconnect(self, subject: str, voluntary: bool,
                            proposer: str) -> Decision:
        """Validate a disconnection.

        Voluntary disconnection cannot be vetoed (section 4.5.4); the
        engine ignores a reject verdict in that case but still records the
        diagnostics in evidence.
        """
        return Decision.accept()


class AcceptAllValidator(Validator):
    """Accepts everything; useful for plumbing tests and benchmarks."""


class CallbackValidator(Validator):
    """Validator assembled from plain callables."""

    def __init__(self,
                 state: "Optional[Callable[[Any, Any, str], Decision]]" = None,
                 update: "Optional[Callable[[Any, Any, Any, str], Decision]]" = None,
                 connect: "Optional[Callable[[str, list], Decision]]" = None,
                 disconnect: "Optional[Callable[[str, bool, str], Decision]]" = None) -> None:
        self._state = state
        self._update = update
        self._connect = connect
        self._disconnect = disconnect

    def validate_state(self, proposed: Any, current: Any, proposer: str) -> Decision:
        if self._state is None:
            return Decision.accept()
        return self._state(proposed, current, proposer)

    def validate_update(self, update: Any, resulting: Any, current: Any,
                        proposer: str) -> Decision:
        if self._update is not None:
            return self._update(update, resulting, current, proposer)
        return self.validate_state(resulting, current, proposer)

    def validate_connect(self, subject: str, members: "list[str]") -> Decision:
        if self._connect is None:
            return Decision.accept()
        return self._connect(subject, members)

    def validate_disconnect(self, subject: str, voluntary: bool,
                            proposer: str) -> Decision:
        if self._disconnect is None:
            return Decision.accept()
        return self._disconnect(subject, voluntary, proposer)


class StateMerger:
    """How updates are applied to states (the ``applyUpdate`` hook).

    The default treats an update as a dict of key/value assignments over a
    dict-shaped state; applications override to match their state model.
    The merge must be *pure*: recipients apply it to a copy of their
    current state to verify the proposer's claimed resulting hash
    (section 4.3.1).
    """

    def apply(self, state: Any, update: Any) -> Any:
        if not isinstance(state, dict) or not isinstance(update, dict):
            raise TypeError(
                "default StateMerger requires dict states and dict updates; "
                "provide a custom merger for other state shapes"
            )
        merged = dict(state)
        merged.update(update)
        return merged
