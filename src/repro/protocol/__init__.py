"""Coordination protocols: the paper's core contribution.

* :mod:`repro.protocol.coordination` — the non-repudiable state
  coordination protocol (section 4.3, overwrite and update variants).
* :mod:`repro.protocol.membership` — connection, voluntary disconnection
  and eviction protocols with sponsor roles (section 4.5).
* :mod:`repro.protocol.evidence` / :mod:`repro.protocol.dispute` —
  stand-alone evidence verification and extra-protocol arbitration.
* :mod:`repro.protocol.baseline` — plain 2PC comparator for benchmarks.
"""

from repro.protocol.baseline import PlainTwoPhaseEngine
from repro.protocol.context import PartyContext
from repro.protocol.coordination import (
    OUTCOME_INVALID,
    OUTCOME_VALID,
    RunState,
    StateCoordinationEngine,
    freeze,
)
from repro.protocol.dispute import (
    RULING_REJECTED,
    RULING_UNDECIDABLE,
    RULING_UPHELD,
    Arbiter,
    Ruling,
)
from repro.protocol.events import (
    ConnectionDecided,
    DisconnectionDecided,
    Event,
    MembershipChanged,
    MisbehaviourEvent,
    Output,
    RunBlocked,
    RunCompleted,
    StateInstalled,
    StateRolledBack,
)
from repro.protocol.evidence import (
    VerifiedDecision,
    find_equivocation,
    verify_authenticated_decision,
)
from repro.protocol.group import FIXED, ROTATING, GroupView
from repro.protocol.ids import (
    GroupId,
    StateId,
    initial_group_id,
    initial_state_id,
    new_group_id,
    new_state_id,
)
from repro.protocol.membership import JoinClient, MembershipEngine, MembershipRun
from repro.protocol.party import ObjectSession, ProtocolParty, extract_object_name
from repro.protocol.pipeline import (
    PipelineTicket,
    ProposalPipeline,
    is_transient_rejection,
)
from repro.protocol.validation import (
    ACCEPT,
    REJECT,
    AcceptAllValidator,
    CallbackValidator,
    Decision,
    StateMerger,
    Validator,
)

__all__ = [
    "PlainTwoPhaseEngine",
    "PartyContext",
    "OUTCOME_INVALID",
    "OUTCOME_VALID",
    "RunState",
    "StateCoordinationEngine",
    "freeze",
    "RULING_REJECTED",
    "RULING_UNDECIDABLE",
    "RULING_UPHELD",
    "Arbiter",
    "Ruling",
    "ConnectionDecided",
    "DisconnectionDecided",
    "Event",
    "MembershipChanged",
    "MisbehaviourEvent",
    "Output",
    "RunBlocked",
    "RunCompleted",
    "StateInstalled",
    "StateRolledBack",
    "VerifiedDecision",
    "find_equivocation",
    "verify_authenticated_decision",
    "FIXED",
    "ROTATING",
    "GroupView",
    "GroupId",
    "StateId",
    "initial_group_id",
    "initial_state_id",
    "new_group_id",
    "new_state_id",
    "JoinClient",
    "MembershipEngine",
    "MembershipRun",
    "ObjectSession",
    "ProtocolParty",
    "extract_object_name",
    "PipelineTicket",
    "ProposalPipeline",
    "is_transient_rejection",
    "ACCEPT",
    "REJECT",
    "AcceptAllValidator",
    "CallbackValidator",
    "Decision",
    "StateMerger",
    "Validator",
]
