"""The proposer-side write pipeline with batched coordination rounds.

The base protocol costs 3(n-1) signed messages per state change and the
engine admits one run in flight: a second local proposal raises
:class:`~repro.errors.ConcurrencyError` and responders veto overlapping
proposals with a benign ``"busy:"`` diagnostic.  Under write contention
throughput therefore collapses to one update per round trip, and the
benign vetoes leak to the application as failures.

:class:`ProposalPipeline` sits between the application and one
:class:`~repro.protocol.coordination.StateCoordinationEngine` and fixes
both problems without touching the protocol's evidence semantics:

* **Queueing** — :meth:`submit` never raises for concurrency.  While a
  run is in flight the update waits in a local queue; the caller gets a
  :class:`PipelineTicket` that resolves when its update is agreed (or
  genuinely vetoed).
* **Batching** — when the engine becomes free, every queued update is
  coalesced into a *single* batched proposal
  (:meth:`~repro.protocol.coordination.StateCoordinationEngine.propose_update_batch`):
  one run, one state identifier, one signature per phase, regardless of
  how many updates it carries.  The 3(n-1) message cost and the RSA
  signing cost are amortised over the whole batch.
* **Busy retry** — a run vetoed *solely* for benign contention ("busy"
  or the invariant-1 lag that follows a commit still in flight) is
  retried automatically with jittered exponential backoff instead of
  surfacing failure; only genuine policy vetoes resolve tickets as
  invalid.  Retries are visible through the obs hooks
  (``pipeline_busy_retry``), never through the application.

Like the engines, the pipeline is sans-IO and single-threaded by
contract: callers (the :class:`~repro.core.node.OrganisationNode` holds
its node lock) invoke :meth:`submit` / :meth:`on_event` / :meth:`poll`
and must transmit the returned :class:`Output`.  Backoff wake-ups are
the caller's job too — :meth:`retry_delay` says when to call
:meth:`poll` again.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import PipelineSaturatedError
from repro.protocol.coordination import StateCoordinationEngine
from repro.protocol.events import Event, Output, RunCompleted

#: Diagnostic prefixes that mark a veto as benign contention rather than
#: a policy decision.  ``busy:`` — the responder had a run in flight (or
#: a membership change); ``invariant-1:`` — a replica had not yet
#: installed the previous commit when the proposal arrived.  Both clear
#: on their own once in-flight traffic settles, so retrying the same
#: update is sound.  (The same rule the synchronous controller applies.)
TRANSIENT_MARKERS = ("busy:", "invariant-1:")


def is_transient_rejection(diagnostics: "list[str]") -> bool:
    """Whether a run's rejection diagnostics are all benign contention."""
    return bool(diagnostics) and all(
        any(marker in diag for marker in TRANSIENT_MARKERS)
        for diag in diagnostics
    )


@dataclass
class PipelineTicket:
    """Handle on one submitted update, resolved when it settles."""

    object_name: str
    done: bool = False
    valid: "Optional[bool]" = None
    diagnostics: "list[str]" = field(default_factory=list)
    #: Id of the run that settled this update (set on resolution).
    run_id: "Optional[str]" = None
    _signal: threading.Event = field(default_factory=threading.Event,
                                     repr=False)

    def resolve(self, valid: bool, diagnostics: "list[str]",
                run_id: "Optional[str]" = None) -> None:
        self.valid = valid
        self.diagnostics = list(diagnostics)
        self.run_id = run_id
        self.done = True
        self._signal.set()

    def wait_signal(self, timeout: "float | None") -> bool:
        """Real-time wait used by the threaded runtime."""
        return self._signal.wait(timeout)


class ProposalPipeline:
    """Queue, coalesce and retry local updates for one shared object."""

    def __init__(self, engine: StateCoordinationEngine,
                 max_batch: int = 64,
                 max_busy_retries: int = 20,
                 base_retry_delay: float = 0.05,
                 max_retry_delay: float = 1.0,
                 max_depth: "Optional[int]" = None,
                 budget: "Optional[Any]" = None,
                 gate: "Optional[Any]" = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1 (or None)")
        self.engine = engine
        self.max_batch = max_batch
        self.max_busy_retries = max_busy_retries
        self.base_retry_delay = base_retry_delay
        self.max_retry_delay = max_retry_delay
        #: Bound on the local queue; None means unbounded.  A busy-retry
        #: re-queue may transiently exceed it (the entries were already
        #: admitted); only new submissions are rejected at the bound.
        self.max_depth = max_depth
        #: Shard-shared depth allowance (a DepthBudget): units acquired
        #: per submission, released when the update's ticket resolves.
        self.budget = budget
        #: Shard run-slot gate: a callable that returns False while the
        #: shard is at its concurrent in-flight run bound; the proposal
        #: waits queued and a sibling's settlement re-polls it.
        self.gate = gate
        #: Updates awaiting a run, oldest first.
        self._queue: "list[tuple[Any, PipelineTicket]]" = []
        #: The (run_id, entries) of the run this pipeline has in flight.
        self._inflight: "Optional[tuple[str, list[tuple[Any, PipelineTicket]]]]" = None
        #: Consecutive busy retries of the entries currently at the head.
        self._attempts = 0
        #: Total busy retries over the pipeline's lifetime.
        self.busy_retries = 0
        #: Earliest time the next proposal may be issued (backoff).
        self._not_before = 0.0

    # ------------------------------------------------------------------
    # public queries
    # ------------------------------------------------------------------

    @property
    def object_name(self) -> str:
        return self.engine.object_name

    @property
    def depth(self) -> int:
        """Updates queued locally (excluding any in-flight batch)."""
        return len(self._queue)

    @property
    def inflight_run_id(self) -> "Optional[str]":
        return self._inflight[0] if self._inflight else None

    def retry_delay(self) -> "Optional[float]":
        """Seconds until :meth:`poll` could make progress, if a timed
        wake-up is needed.

        Returns None when no timer is required: the queue is empty, a
        run is in flight (its settlement event drives the pipeline), or
        the engine is occupied by someone else's run (ditto).
        """
        if not self._queue or self._inflight is not None:
            return None
        if self.engine.busy or self.engine.membership_change_active:
            return None
        remaining = self._not_before - self.engine.ctx.clock.now()
        return max(remaining, 0.0) if remaining > 0.0 else None

    # ------------------------------------------------------------------
    # submission and draining
    # ------------------------------------------------------------------

    def submit(self, update: Any) -> "tuple[PipelineTicket, Output]":
        """Queue one update; propose immediately if the engine is free.

        Never raises for concurrency: contention queues the update and
        the returned ticket resolves when a run carrying it settles.
        Raises :class:`~repro.errors.PipelineSaturatedError` when the
        local queue is at ``max_depth`` — explicit backpressure for
        flooding callers; the update is *not* queued.
        """
        if (self.max_depth is not None
                and len(self._queue) >= self.max_depth):
            obs = self.engine.ctx.obs
            if obs.enabled:
                obs.pipeline_saturated(self.engine.party_id,
                                       self.object_name, len(self._queue))
            raise PipelineSaturatedError(
                f"pipeline for {self.object_name!r} is saturated "
                f"({len(self._queue)} updates queued, max_depth="
                f"{self.max_depth})"
            )
        if self.budget is not None and not self.budget.try_acquire():
            obs = self.engine.ctx.obs
            if obs.enabled:
                obs.pipeline_saturated(self.engine.party_id,
                                       self.object_name, len(self._queue))
            raise PipelineSaturatedError(
                f"shard pipeline budget for {self.object_name!r} is "
                f"exhausted ({self.budget.used} updates admitted, shared "
                f"max_depth={self.budget.limit})"
            )
        ticket = PipelineTicket(object_name=self.object_name)
        self._queue.append((update, ticket))
        self._observe_depth()
        return ticket, self._maybe_propose()

    def poll(self) -> Output:
        """Timed wake-up: issue the next proposal if backoff expired."""
        return self._maybe_propose()

    def on_event(self, event: Event) -> Output:
        """Feed one engine event; drains the queue on any settlement."""
        self.absorb(event)
        return self._maybe_propose()

    def absorb(self, event: Event) -> None:
        """Settle the in-flight batch on its event, *without* proposing.

        Used by the shard pipeline group, which settles first and then
        polls its pipelines in fair rotation so the freed run slot is
        not automatically retaken by the object that just settled.
        """
        if (isinstance(event, RunCompleted) and event.kind == "state"
                and event.object_name == self.object_name
                and self._inflight is not None
                and event.run_id == self._inflight[0]):
            self._settle_inflight(event)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _settle_inflight(self, event: RunCompleted) -> None:
        run_id, entries = self._inflight  # type: ignore[misc]
        self._inflight = None
        if event.valid:
            self._attempts = 0
            self._not_before = 0.0
            if self.budget is not None:
                self.budget.release(len(entries))
            for _, ticket in entries:
                ticket.resolve(True, [], run_id)
            return
        if (is_transient_rejection(event.diagnostics)
                and self._attempts < self.max_busy_retries):
            # Benign contention: put the batch back at the head of the
            # queue and back off before re-proposing.  The updates stay
            # in submission order, so a later retry re-coalesces them
            # (possibly with newer submissions appended).
            self._attempts += 1
            self.busy_retries += 1
            self._queue[:0] = entries
            self._not_before = (self.engine.ctx.clock.now()
                                + self._backoff_delay(self._attempts))
            obs = self.engine.ctx.obs
            if obs.enabled:
                obs.pipeline_busy_retry(self.engine.party_id,
                                        self.object_name, self._attempts)
            self._observe_depth()
            return
        self._attempts = 0
        self._not_before = 0.0
        if self.budget is not None:
            self.budget.release(len(entries))
        for _, ticket in entries:
            ticket.resolve(False, event.diagnostics, run_id)

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with deterministic jitter in [0.5, 1.0)."""
        delay = min(self.max_retry_delay,
                    self.base_retry_delay * (2 ** (attempt - 1)))
        jitter = 0.5 + self.engine.ctx.rng.random_below(1000) / 2000.0
        return delay * jitter

    def _maybe_propose(self) -> Output:
        if (not self._queue or self._inflight is not None
                or self.engine.busy or self.engine.membership_change_active
                or self.engine.ctx.clock.now() < self._not_before
                or (self.gate is not None and not self.gate())):
            return Output()
        entries = self._queue[:self.max_batch]
        del self._queue[:len(entries)]
        updates = [update for update, _ in entries]
        if len(updates) == 1:
            run_id, output = self.engine.propose_update(updates[0])
        else:
            run_id, output = self.engine.propose_update_batch(updates)
        self._inflight = (run_id, entries)
        self._observe_depth()
        return output

    def _observe_depth(self) -> None:
        obs = self.engine.ctx.obs
        if obs.enabled:
            obs.pipeline_depth(self.engine.party_id, self.object_name,
                               len(self._queue))
