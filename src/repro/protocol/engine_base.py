"""Shared machinery for the coordination and membership engines."""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashing import hash_value
from repro.errors import (
    InconsistentMessageError,
    SignatureError,
    TimestampError,
)
from repro.obs.hooks import RECEIVED as OBS_RECEIVED
from repro.obs.hooks import SENT as OBS_SENT
from repro.obs.hooks import approx_size_cached
from repro.obs.trace import TraceContext
from repro.protocol.context import PartyContext
from repro.protocol.events import MisbehaviourEvent, Output
from repro.protocol.messages import (
    SignedPart,
    attach_trace_context,
    extract_trace_context,
    make_signed,
    verify_signed,
)
from repro.storage.journal import RECEIVED, SENT


class EngineBase:
    """Evidence-logging, journalling and signature plumbing."""

    def __init__(self, ctx: PartyContext, object_name: str) -> None:
        self.ctx = ctx
        self.object_name = object_name

    # ------------------------------------------------------------------
    # signing / verification
    # ------------------------------------------------------------------

    def _signed(self, payload: dict) -> SignedPart:
        return make_signed(payload, self.ctx.signer, self.ctx.tsa)

    def _verify_part(self, part: SignedPart, expected_signer: "str | None",
                     context: str, output: Output,
                     run_id: str = "") -> bool:
        """Verify a signed part; on failure, log + emit misbehaviour.

        Returns True when the part is genuine.  An invalid signature means
        the content cannot be bound to any party, so the engine drops the
        message (retransmission of the genuine message still succeeds)
        rather than acting on unattributable data.
        """
        try:
            verify_signed(
                part,
                self.ctx.resolver,
                tsa_verifier=self.ctx.tsa_verifier,
                expected_signer=expected_signer,
                context=context,
            )
            return True
        except (SignatureError, InconsistentMessageError, TimestampError) as exc:
            culprit = expected_signer or part.signature.signer
            self._log_evidence(
                "misbehaviour",
                {
                    "party": culprit,
                    "kind": "invalid-signature",
                    "detail": str(exc),
                    "context": context,
                },
            )
            output.emit(
                MisbehaviourEvent(
                    party=culprit,
                    kind="invalid-signature",
                    detail=str(exc),
                    object_name=self.object_name,
                    run_id=run_id,
                )
            )
            return False

    def _misbehaviour(self, output: Output, party: str, kind: str,
                      detail: str, run_id: str = "") -> None:
        """Record and surface provable misbehaviour."""
        self._log_evidence(
            "misbehaviour",
            {"party": party, "kind": kind, "detail": detail, "run_id": run_id},
        )
        output.emit(
            MisbehaviourEvent(
                party=party,
                kind=kind,
                detail=detail,
                object_name=self.object_name,
                run_id=run_id,
            )
        )

    # ------------------------------------------------------------------
    # evidence and journal
    # ------------------------------------------------------------------

    def _log_evidence(self, kind: str, payload: dict) -> None:
        record = dict(payload)
        record.setdefault("object", self.object_name)
        record.setdefault("at_ms", int(self.ctx.clock.now() * 1000))
        self.ctx.evidence.record(kind, record)

    def _journal_sent(self, run_id: str, peer: str, message: dict) -> None:
        self.ctx.journal.record_message(run_id, SENT, peer, message)

    def _journal_received(self, run_id: str, peer: str, message: dict) -> None:
        self.ctx.journal.record_message(run_id, RECEIVED, peer, message)

    def _close_journal(self, run_id: str, outcome: str) -> None:
        if self.ctx.journal.is_open(run_id):
            self.ctx.journal.close_run(run_id, outcome)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------

    def _obs_message(self, run_id: str, phase: str, direction: str,
                     message: dict, count: int = 1) -> None:
        """Count *count* copies of one protocol message, sized once."""
        obs = self.ctx.obs
        if not obs.enabled:
            return
        size = approx_size_cached(message)
        for _ in range(count):
            obs.protocol_message(self.ctx.party_id, self.object_name,
                                 run_id, phase, direction, size)

    # ------------------------------------------------------------------
    # causal tracing
    # ------------------------------------------------------------------

    def _trace_send(self, run_id: str, phase: str, message: dict,
                    recipients: "list[str]") -> None:
        """Attach causal context to an outbound wire message.

        One broadcast is one Lamport event: every recipient receives the
        same context, and the message dict (shared by journal and all
        sends) gains exactly one unsigned ``trace_ctx`` field.  Re-sends
        re-enter here and stamp a fresh context — each transmission is a
        new event on the timeline.
        """
        if not self.ctx.obs.enabled:
            return
        ctx = self.ctx.trace.begin_send(run_id)
        attach_trace_context(message, ctx.to_dict())
        for peer in recipients:
            self.ctx.obs.causal_message(
                self.ctx.party_id, self.object_name, run_id, phase,
                OBS_SENT, peer, ctx.trace_id, ctx.span_id, "", ctx.lamport,
            )

    def _trace_receive(self, run_id: str, phase: str, sender: str,
                       message: dict) -> "TraceContext | None":
        """Absorb the carried context of an inbound message and record it."""
        if not self.ctx.obs.enabled:
            return None
        ctx = self.ctx.trace.receive(run_id, extract_trace_context(message))
        self.ctx.obs.causal_message(
            self.ctx.party_id, self.object_name, run_id, phase,
            OBS_RECEIVED, sender, ctx.trace_id, ctx.span_id,
            ctx.parent_span_id, ctx.lamport,
        )
        return ctx

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _run_id(kind: str, object_name: str, identity: dict) -> str:
        return hash_value(["run", kind, object_name, identity]).hex()

    @staticmethod
    def _parse_part(message: dict, key: str) -> "Optional[SignedPart]":
        raw = message.get(key)
        if not isinstance(raw, dict):
            return None
        try:
            return SignedPart.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            return None
