"""Group membership view and sponsor selection (section 4.5.1).

Each party maintains an ordered view of the participant set ``P``: oldest
member first, most recently joined last.  The *sponsor* of a connection
request is the most recently joined member; the sponsor of a
disconnection is the same unless it is itself the subject, in which case
responsibility passes to the next most recently connected member.

A non-rotating mode (footnote 2 of the paper) pins sponsorship to the
oldest member instead; it is exposed for the sponsor-rotation ablation
benchmark.
"""

from __future__ import annotations

from repro.errors import MembershipError
from repro.protocol.ids import GroupId, initial_group_id
from repro.util.identifiers import validate_party_id

ROTATING = "rotating"
FIXED = "fixed"


class GroupView:
    """One party's view of the sharing group for one object."""

    def __init__(self, object_name: str, members: "list[str]",
                 group_id: "GroupId | None" = None,
                 sponsor_mode: str = ROTATING) -> None:
        if not members:
            raise MembershipError("a group requires at least one member")
        seen: "set[str]" = set()
        for member in members:
            validate_party_id(member)
            if member in seen:
                raise MembershipError(f"duplicate member {member!r}")
            seen.add(member)
        if sponsor_mode not in (ROTATING, FIXED):
            raise MembershipError(f"unknown sponsor mode {sponsor_mode!r}")
        self.object_name = object_name
        self.members: "list[str]" = list(members)
        self.group_id = group_id or initial_group_id(self.members)
        self.sponsor_mode = sponsor_mode

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, party_id: str) -> bool:
        return party_id in self.members

    def __len__(self) -> int:
        return len(self.members)

    def others(self, party_id: str) -> "list[str]":
        """``R`` — every member except *party_id*."""
        return [member for member in self.members if member != party_id]

    def recipients_excluding(self, *excluded: str) -> "list[str]":
        exclude_set = set(excluded)
        return [member for member in self.members if member not in exclude_set]

    def connect_sponsor(self) -> str:
        """The legitimate sponsor for the next connection request."""
        if self.sponsor_mode == FIXED:
            return self.members[0]
        return self.members[-1]

    def disconnect_sponsor(self, subject: str) -> str:
        """The legitimate sponsor for disconnecting *subject*."""
        if subject not in self.members:
            raise MembershipError(f"{subject!r} is not a member")
        if self.sponsor_mode == FIXED:
            candidates = [m for m in self.members if m != subject]
            if not candidates:
                raise MembershipError("cannot disconnect the last member")
            return candidates[0]
        if self.members[-1] != subject:
            return self.members[-1]
        if len(self.members) < 2:
            raise MembershipError("cannot disconnect the last member")
        return self.members[-2]

    def eviction_sponsor(self, subjects: "list[str]") -> str:
        """Sponsor for evicting a subset: most recent non-subject member."""
        subject_set = set(subjects)
        candidates = [m for m in self.members if m not in subject_set]
        if not candidates:
            raise MembershipError("cannot evict every member")
        if self.sponsor_mode == FIXED:
            return candidates[0]
        return candidates[-1]

    def membership_after_connect(self, subject: str) -> "list[str]":
        if subject in self.members:
            raise MembershipError(f"{subject!r} is already a member")
        return self.members + [subject]

    def membership_after_removal(self, subjects: "list[str]") -> "list[str]":
        subject_set = set(subjects)
        missing = subject_set - set(self.members)
        if missing:
            raise MembershipError(f"not members: {sorted(missing)}")
        remaining = [m for m in self.members if m not in subject_set]
        if not remaining:
            raise MembershipError("cannot remove every member")
        return remaining

    # ------------------------------------------------------------------
    # mutation (applied only on agreed membership changes)
    # ------------------------------------------------------------------

    def apply_change(self, new_members: "list[str]", new_group_id: GroupId) -> None:
        if not new_group_id.matches_members(new_members):
            raise MembershipError("group identifier does not match the new membership")
        self.members = list(new_members)
        self.group_id = new_group_id

    def clone(self) -> "GroupView":
        return GroupView(
            self.object_name, list(self.members), self.group_id, self.sponsor_mode
        )
