"""Stand-alone verification of non-repudiation evidence.

An *authenticated decision* (section 4.3) is the durable artefact of a
protocol run:

``AD = (auth, {resp_j, sig_j}_all, prop, sig_prop)``

Any third party holding the participants' certificates can verify the
bundle and compute the group's decision — this is what makes the paper's
guarantees about misrepresentation work: no party can claim a vetoed
state is valid (it cannot produce accepting signed responses) nor that a
unanimously agreed state is invalid (the other parties hold the bundle
proving unanimity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.hashing import hash_value
from repro.crypto.signature import Verifier
from repro.errors import InconsistentMessageError, SignatureError, TimestampError
from repro.protocol.messages import (
    SignedPart,
    VerifierResolver,
    responses_unanimous,
    verify_auth_preimage,
    verify_signed,
)


@dataclass
class VerifiedDecision:
    """Outcome of independently verifying an authenticated decision."""

    authentic: bool  # all signatures / linkage checks passed
    valid: bool  # the group decision (meaningful only if authentic)
    kind: str
    object_name: str
    proposer: str
    responders: "list[str]" = field(default_factory=list)
    problems: "list[str]" = field(default_factory=list)
    diagnostics: "list[str]" = field(default_factory=list)


def verify_authenticated_decision(bundle: dict, resolver: VerifierResolver,
                                  tsa_verifier: "Verifier | None" = None,
                                  expected_recipients: "set[str] | None" = None
                                  ) -> VerifiedDecision:
    """Verify an evidence bundle with no protocol state.

    Checks: the proposal signature, every response signature, every
    response's linkage to this exact proposal, and the authenticator
    preimage against the commitment in the signed proposal.  When
    *expected_recipients* is given, completeness of the response set is
    checked too (a bundle missing responses cannot demonstrate validity).
    """
    problems: "list[str]" = []
    kind = str(bundle.get("kind", "state"))
    object_name = str(bundle.get("object", ""))

    try:
        proposal = SignedPart.from_dict(bundle["proposal"])
    except (KeyError, TypeError, ValueError):
        return VerifiedDecision(
            authentic=False, valid=False, kind=kind, object_name=object_name,
            proposer="", problems=["malformed or missing proposal"],
        )
    proposer = str(
        proposal.payload.get("proposer") or proposal.payload.get("sponsor") or ""
    )
    try:
        verify_signed(proposal, resolver, tsa_verifier=tsa_verifier,
                      expected_signer=proposer, context="evidence proposal")
    except (SignatureError, InconsistentMessageError, TimestampError) as exc:
        problems.append(f"proposal signature: {exc}")

    responses: "list[SignedPart]" = []
    for raw in bundle.get("responses", []):
        try:
            responses.append(SignedPart.from_dict(raw))
        except (KeyError, TypeError, ValueError):
            problems.append("malformed response in bundle")

    expected_digest = hash_value(proposal.payload)
    responders: "list[str]" = []
    for part in responses:
        responder = str(part.payload.get("responder", ""))
        responders.append(responder)
        try:
            verify_signed(part, resolver, tsa_verifier=tsa_verifier,
                          expected_signer=responder,
                          context=f"evidence response by {responder}")
        except (SignatureError, InconsistentMessageError, TimestampError) as exc:
            problems.append(f"response signature ({responder}): {exc}")
        if bytes(part.payload.get("proposal_digest", b"")) != expected_digest:
            problems.append(f"response by {responder} references a different proposal")

    auth = bytes(bundle.get("auth", b""))
    commitment = bytes(proposal.payload.get("auth_commitment", b""))
    claimed_valid = bool(bundle.get("valid", False))
    # The authenticator only exists once the proposer has issued m3.  A
    # bundle recording an *invalid* local outcome (e.g. an aborted run)
    # may legitimately lack it; a bundle asserting validity may not.
    if claimed_valid or auth:
        if not verify_auth_preimage(auth, commitment):
            problems.append("authenticator preimage does not match commitment")

    unanimous, diagnostics = responses_unanimous(responses)
    if expected_recipients is not None:
        missing = expected_recipients - set(responders)
        extra = set(responders) - expected_recipients
        if missing:
            problems.append(f"missing responses from {sorted(missing)}")
            unanimous = False
        if extra:
            problems.append(f"unexpected responses from {sorted(extra)}")

    authentic = not problems
    return VerifiedDecision(
        authentic=authentic,
        valid=authentic and unanimous,
        kind=kind,
        object_name=object_name,
        proposer=proposer,
        responders=responders,
        problems=problems,
        diagnostics=diagnostics,
    )


def find_equivocation(parts: "list[SignedPart]") -> "Optional[tuple[str, dict, dict]]":
    """Detect two different signed statements by one party for one subject.

    Given signed responses collected from multiple sources, returns
    ``(party, payload_a, payload_b)`` for the first party found to have
    signed two conflicting responses to the same proposal digest — an
    irrefutable equivocation proof.
    """
    seen: "dict[tuple[str, bytes], dict]" = {}
    for part in parts:
        responder = str(part.payload.get("responder", ""))
        digest = bytes(part.payload.get("proposal_digest", b""))
        key = (responder, digest)
        previous = seen.get(key)
        if previous is not None and previous != part.payload:
            return responder, previous, part.payload
        seen[key] = part.payload
    return None
