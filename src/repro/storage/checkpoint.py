"""State check-pointing.

"Systematic check-pointing of object state upon installation of a
newly-validated state allows recovery in the event of general failures
and rollback in the event of invalidation" (section 3).

A checkpoint binds an object state to the state-identifier tuple under
which it was agreed, so recovery restores both the state *and* the
coordination context (sequence number, hashes) needed to resume protocol
participation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.crypto.hashing import hash_value
from repro.errors import CheckpointError
from repro.storage.backends import MemoryRecordStore, RecordStore


@dataclass(frozen=True)
class Checkpoint:
    """One durable (state-id, state) snapshot."""

    object_name: str
    state_id: dict
    state: Any
    sequence: int

    def to_dict(self) -> dict:
        return {
            "object_name": self.object_name,
            "state_id": self.state_id,
            "state": self.state,
            "sequence": self.sequence,
        }

    @staticmethod
    def from_dict(data: dict) -> "Checkpoint":
        return Checkpoint(
            object_name=str(data["object_name"]),
            state_id=dict(data["state_id"]),
            state=data["state"],
            sequence=int(data["sequence"]),
        )


class CheckpointStore:
    """Append-only checkpoint history with fast latest-lookup per object."""

    def __init__(self, store: "RecordStore | None" = None) -> None:
        self._store = store if store is not None else MemoryRecordStore()
        self._latest: "dict[str, Checkpoint]" = {}
        self._history_len: "dict[str, int]" = {}
        for record in self._store.scan():
            checkpoint = Checkpoint.from_dict(record)
            self._latest[checkpoint.object_name] = checkpoint
            self._history_len[checkpoint.object_name] = (
                self._history_len.get(checkpoint.object_name, 0) + 1
            )

    def save(self, object_name: str, state_id: dict, state: Any) -> Checkpoint:
        """Checkpoint a newly agreed state."""
        sequence = int(state_id.get("seq", -1))
        previous = self._latest.get(object_name)
        if previous is not None and sequence <= previous.sequence:
            raise CheckpointError(
                f"checkpoint for {object_name!r} does not advance the sequence "
                f"({sequence} <= {previous.sequence})"
            )
        checkpoint = Checkpoint(
            object_name=object_name,
            state_id=dict(state_id),
            state=state,
            sequence=sequence,
        )
        self._store.append(checkpoint.to_dict())
        self._latest[object_name] = checkpoint
        self._history_len[object_name] = self._history_len.get(object_name, 0) + 1
        return checkpoint

    def latest(self, object_name: str) -> "Optional[Checkpoint]":
        return self._latest.get(object_name)

    def require_latest(self, object_name: str) -> Checkpoint:
        checkpoint = self._latest.get(object_name)
        if checkpoint is None:
            raise CheckpointError(f"no checkpoint for object {object_name!r}")
        return checkpoint

    def history(self, object_name: str) -> "list[Checkpoint]":
        """All checkpoints for one object, oldest first."""
        return [
            Checkpoint.from_dict(record)
            for record in self._store.scan()
            if record["object_name"] == object_name
        ]

    def history_length(self, object_name: str) -> int:
        return self._history_len.get(object_name, 0)

    def state_digest(self, object_name: str) -> "Optional[bytes]":
        """Hash of the latest checkpointed state (for consistency checks)."""
        checkpoint = self._latest.get(object_name)
        if checkpoint is None:
            return None
        return hash_value(checkpoint.state)
