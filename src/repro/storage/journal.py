"""Protocol message journal.

"For non-repudiation, and recovery, protocol messages are held in local
persistent storage at sender and recipient" (section 4.2).  The journal
records every protocol message a party sends or receives, grouped by
protocol run, and tracks which runs are still open.  After a crash, a
recovering node replays its open runs from the journal and resumes
participation.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.storage.backends import MemoryRecordStore, RecordStore

SENT = "sent"
RECEIVED = "received"


class MessageJournal:
    """Durable per-run message history for one party."""

    def __init__(self, owner: str, store: "RecordStore | None" = None,
                 obs: "Instrumentation | None" = None) -> None:
        self.owner = owner
        self._store = store if store is not None else MemoryRecordStore()
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._open_runs: "set[str]" = set()
        self._closed_runs: "set[str]" = set()
        for record in self._store.scan():
            self._apply(record)

    def _apply(self, record: dict) -> None:
        run_id = record["run_id"]
        if record["event"] == "close":
            self._open_runs.discard(run_id)
            self._closed_runs.add(run_id)
        elif run_id not in self._closed_runs:
            self._open_runs.add(run_id)

    def record_message(self, run_id: str, direction: str, peer: str,
                       message: dict) -> None:
        """Journal one protocol message before acting on it."""
        if direction not in (SENT, RECEIVED):
            raise ValueError(f"direction must be 'sent' or 'received', got {direction!r}")
        record = {
            "event": "message",
            "run_id": run_id,
            "direction": direction,
            "peer": peer,
            "message": message,
        }
        if self._obs.enabled:
            started = time.perf_counter()
            self._store.append(record)
            self._obs.journal_append(
                self.owner, run_id, direction, self._store.last_append_size,
                time.perf_counter() - started,
            )
        else:
            self._store.append(record)
        self._apply(record)

    def close_run(self, run_id: str, outcome: str) -> None:
        """Mark a protocol run finished (valid / invalid / aborted)."""
        record = {"event": "close", "run_id": run_id, "outcome": outcome}
        self._store.append(record)
        if self._obs.enabled:
            self._obs.journal_closed(self.owner, run_id, outcome)
        self._apply(record)

    def open_runs(self) -> "set[str]":
        """Runs with journalled messages but no close record."""
        return set(self._open_runs)

    def is_open(self, run_id: str) -> bool:
        return run_id in self._open_runs

    def messages(self, run_id: str) -> "list[dict]":
        """All journalled message records for one run, in order."""
        return [
            record for record in self._store.scan()
            if record["run_id"] == run_id and record["event"] == "message"
        ]

    def outcome(self, run_id: str) -> "Optional[str]":
        """The recorded outcome of a closed run, if any."""
        result = None
        for record in self._store.scan():
            if record["run_id"] == run_id and record["event"] == "close":
                result = record["outcome"]
        return result

    def all_records(self) -> "Iterator[dict]":
        return self._store.scan()
