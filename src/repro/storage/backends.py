"""Record storage backends.

The storage substrate persists three kinds of records (evidence log
entries, state checkpoints, journalled protocol messages).  All three sit
on this minimal append/scan abstraction, with an in-memory backend for
simulation and a crash-safe file backend (JSON-lines with fsync) for real
deployments and recovery tests.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.errors import StorageError
from repro.util.encoding import canonical_bytes, from_canonical_bytes


class RecordStore:
    """Append-only sequence of canonical-encodable records."""

    #: Encoded size in bytes of the most recent append.  Stores encode
    #: every record anyway, so instrumentation reads this instead of
    #: re-serialising the record just to size it.
    last_append_size = 0

    def append(self, record: dict) -> int:
        """Persist *record*, returning its zero-based index."""
        raise NotImplementedError

    def scan(self) -> "Iterator[dict]":
        """Iterate every record in append order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""


class MemoryRecordStore(RecordStore):
    """Volatile in-process store used by the simulation runtime."""

    def __init__(self) -> None:
        self._records: "list[bytes]" = []

    def append(self, record: dict) -> int:
        # Records are stored encoded so that mutation of the caller's dict
        # after append cannot retroactively alter "persisted" history.
        blob = canonical_bytes(record)
        self.last_append_size = len(blob)
        self._records.append(blob)
        return len(self._records) - 1

    def scan(self) -> "Iterator[dict]":
        for blob in self._records:
            yield from_canonical_bytes(blob)

    def __len__(self) -> int:
        return len(self._records)


class FileRecordStore(RecordStore):
    """Crash-safe JSON-lines file store.

    Each record is one canonical-JSON line, flushed and fsync'd on append
    (non-repudiation evidence must survive the crash-recovery model of
    section 4.2).  On open, a trailing partial line from a mid-write crash
    is detected and truncated away.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self._path = path
        self._fsync = fsync
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._count = self._repair_and_count()
        self._file = open(path, "ab")

    def _repair_and_count(self) -> int:
        if not os.path.exists(self._path):
            return 0
        with open(self._path, "rb") as handle:
            data = handle.read()
        if not data:
            return 0
        if not data.endswith(b"\n"):
            # A crash interrupted the final append; the record never became
            # durable, so drop the partial line.
            keep = data.rfind(b"\n") + 1
            with open(self._path, "wb") as handle:
                handle.write(data[:keep])
            data = data[:keep]
        return data.count(b"\n")

    def append(self, record: dict) -> int:
        line = canonical_bytes(record) + b"\n"
        self.last_append_size = len(line) - 1
        self._file.write(line)
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        index = self._count
        self._count += 1
        return index

    def scan(self) -> "Iterator[dict]":
        self._file.flush()
        with open(self._path, "rb") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield from_canonical_bytes(line)
                except ValueError as exc:
                    raise StorageError(f"corrupt record in {self._path}: {exc}") from exc

    def __len__(self) -> int:
        return self._count

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
