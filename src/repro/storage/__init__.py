"""Persistence substrate: evidence logs, checkpoints, message journal."""

from repro.storage.backends import FileRecordStore, MemoryRecordStore, RecordStore
from repro.storage.checkpoint import Checkpoint, CheckpointStore
from repro.storage.journal import RECEIVED, SENT, MessageJournal
from repro.storage.log import GENESIS_HASH, LogEntry, NonRepudiationLog

__all__ = [
    "FileRecordStore",
    "MemoryRecordStore",
    "RecordStore",
    "Checkpoint",
    "CheckpointStore",
    "RECEIVED",
    "SENT",
    "MessageJournal",
    "GENESIS_HASH",
    "LogEntry",
    "NonRepudiationLog",
]
