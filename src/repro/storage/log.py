"""Non-repudiation evidence log.

"Evidence is stored systematically in local non-repudiation logs"
(section 3).  Each entry records a protocol artefact (message sent or
received, decision, time-stamp token) and is chained to its predecessor by
hash, so any after-the-fact tampering with local evidence is detectable —
an organisation cannot quietly rewrite its own history before presenting
it to an arbiter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.crypto.hashing import hash_value
from repro.errors import LogCorruptionError
from repro.obs.hooks import NULL_INSTRUMENTATION, Instrumentation
from repro.storage.backends import MemoryRecordStore, RecordStore

GENESIS_HASH = b"\x00" * 32


@dataclass(frozen=True)
class LogEntry:
    """One evidence record in the hash chain."""

    index: int
    prev_hash: bytes
    entry_hash: bytes
    kind: str
    payload: dict

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "prev_hash": self.prev_hash,
            "entry_hash": self.entry_hash,
            "kind": self.kind,
            "payload": self.payload,
        }

    @staticmethod
    def from_dict(data: dict) -> "LogEntry":
        return LogEntry(
            index=int(data["index"]),
            prev_hash=bytes(data["prev_hash"]),
            entry_hash=bytes(data["entry_hash"]),
            kind=str(data["kind"]),
            payload=dict(data["payload"]),
        )


def _chain_hash(index: int, prev_hash: bytes, kind: str, payload: dict) -> bytes:
    return hash_value(["log-entry", index, prev_hash, kind, payload])


class NonRepudiationLog:
    """Hash-chained append-only evidence log for one party."""

    def __init__(self, owner: str, store: "RecordStore | None" = None,
                 obs: "Instrumentation | None" = None) -> None:
        self.owner = owner
        self._store = store if store is not None else MemoryRecordStore()
        self._obs = obs if obs is not None else NULL_INSTRUMENTATION
        self._head = GENESIS_HASH
        self._count = 0
        self._replay_existing()

    def _replay_existing(self) -> None:
        """Rebuild chain head from a pre-existing store (recovery path)."""
        for record in self._store.scan():
            entry = LogEntry.from_dict(record)
            expected = _chain_hash(entry.index, entry.prev_hash, entry.kind, entry.payload)
            if entry.entry_hash != expected or entry.prev_hash != self._head:
                raise LogCorruptionError(
                    f"{self.owner}: log chain broken at index {entry.index}"
                )
            self._head = entry.entry_hash
            self._count += 1

    @property
    def head(self) -> bytes:
        """Hash of the most recent entry (GENESIS_HASH when empty)."""
        return self._head

    def __len__(self) -> int:
        return self._count

    def record(self, kind: str, payload: dict) -> LogEntry:
        """Append an evidence record and return the chained entry."""
        entry_hash = _chain_hash(self._count, self._head, kind, payload)
        entry = LogEntry(
            index=self._count,
            prev_hash=self._head,
            entry_hash=entry_hash,
            kind=kind,
            payload=payload,
        )
        record = entry.to_dict()
        if self._obs.enabled:
            started = time.perf_counter()
            self._store.append(record)
            self._obs.evidence_append(
                self.owner, kind, self._store.last_append_size,
                time.perf_counter() - started,
            )
        else:
            self._store.append(record)
        self._head = entry_hash
        self._count += 1
        return entry

    def entries(self, kind: "str | None" = None) -> "Iterator[LogEntry]":
        """Iterate entries in order, optionally filtered by kind."""
        for record in self._store.scan():
            entry = LogEntry.from_dict(record)
            if kind is None or entry.kind == kind:
                yield entry

    def find(self, kind: str, **payload_match: Any) -> "Optional[LogEntry]":
        """First entry of *kind* whose payload matches all given fields."""
        for entry in self.entries(kind):
            if all(entry.payload.get(key) == value for key, value in payload_match.items()):
                return entry
        return None

    def verify_chain(self) -> int:
        """Re-verify the whole chain; returns the entry count.

        Raises :class:`LogCorruptionError` on the first broken link.  An
        arbiter runs this before trusting any evidence a party presents.
        """
        head = GENESIS_HASH
        count = 0
        for record in self._store.scan():
            entry = LogEntry.from_dict(record)
            if entry.index != count:
                raise LogCorruptionError(
                    f"{self.owner}: entry index {entry.index} != expected {count}"
                )
            if entry.prev_hash != head:
                raise LogCorruptionError(
                    f"{self.owner}: broken prev-hash link at index {entry.index}"
                )
            expected = _chain_hash(entry.index, entry.prev_hash, entry.kind, entry.payload)
            if entry.entry_hash != expected:
                raise LogCorruptionError(
                    f"{self.owner}: entry hash mismatch at index {entry.index}"
                )
            head = entry.entry_hash
            count += 1
        if count != self._count or head != self._head:
            raise LogCorruptionError(f"{self.owner}: in-memory head disagrees with store")
        return count
