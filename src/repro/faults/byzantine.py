"""Misbehaving-party adapters (the attack catalogue of section 4.4).

Each adapter installs an outbound interceptor on an
:class:`~repro.core.node.OrganisationNode`, turning an honest node into
one that omits, selectively sends, or corrupts its own protocol traffic.
The adapters hold the node's real signing key (a misbehaving party *is* a
key-holder), so whatever they emit is exactly what a dishonest
organisation could emit — the protocol's safety guarantee must hold
against all of them.
"""

from __future__ import annotations

import copy
from typing import Callable, Optional

from repro.core.node import OrganisationNode
from repro.protocol.messages import (
    COMMIT,
    CONNECT_COMMIT,
    CONNECT_RESPOND,
    DISCONNECT_COMMIT,
    DISCONNECT_RESPOND,
    PROPOSE,
    RESPOND,
)

Interceptor = Callable[[str, dict], "list[tuple[str, dict]]"]

_COMMIT_TYPES = {COMMIT, CONNECT_COMMIT, DISCONNECT_COMMIT}
_RESPOND_TYPES = {RESPOND, CONNECT_RESPOND, DISCONNECT_RESPOND}


class ByzantineBehaviour:
    """Base adapter: installs itself as the node's outbound interceptor."""

    def __init__(self, node: OrganisationNode) -> None:
        self.node = node
        self.intercepted = 0
        self._previous: "Optional[Interceptor]" = node.outbound_interceptor
        node.outbound_interceptor = self._intercept

    def uninstall(self) -> None:
        self.node.outbound_interceptor = self._previous

    def _intercept(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        base = ([(recipient, message)] if self._previous is None
                else self._previous(recipient, message))
        result: "list[tuple[str, dict]]" = []
        for rec, msg in base:
            result.extend(self.apply(rec, msg))
        return result

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        raise NotImplementedError


class SuppressCommits(ByzantineBehaviour):
    """Proposer/sponsor that never sends ``m3`` (omission attack).

    Responders block; every member of the recipient set holds evidence
    that the run is still active, and any subsequent request reveals the
    inconsistency (section 4.4).
    """

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if message.get("msg_type") in _COMMIT_TYPES:
            self.intercepted += 1
            return []
        return [(recipient, message)]


class SuppressResponses(ByzantineBehaviour):
    """Recipient that obtains the proposed state but never responds.

    It gains the content without giving a receipt, but can never
    demonstrate the state is valid (no commit will exist for it).
    """

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if message.get("msg_type") in _RESPOND_TYPES:
            self.intercepted += 1
            return []
        return [(recipient, message)]


class SelectiveCommit(ByzantineBehaviour):
    """Proposer that sends ``m3`` to only part of the recipient set.

    The excluded members can show the run is still active, and any honest
    member that received ``m3`` can relay it.
    """

    def __init__(self, node: OrganisationNode, excluded: "list[str]") -> None:
        super().__init__(node)
        self.excluded = set(excluded)

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if message.get("msg_type") in _COMMIT_TYPES and recipient in self.excluded:
            self.intercepted += 1
            return []
        return [(recipient, message)]


class SelectiveProposal(ByzantineBehaviour):
    """Proposer that sends ``m1`` to only part of the recipient set.

    Unanimity then cannot be reached: the proposer cannot produce a valid
    commit for anyone (the bundle would lack responses).
    """

    def __init__(self, node: OrganisationNode, excluded: "list[str]") -> None:
        super().__init__(node)
        self.excluded = set(excluded)

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if message.get("msg_type") == PROPOSE and recipient in self.excluded:
            self.intercepted += 1
            return []
        return [(recipient, message)]


class DivergentBody(ByzantineBehaviour):
    """Proposer that sends different state bodies to different members.

    The signed proposal carries ``H(S_new)``, so victims detect that the
    body they received does not hash to the identifier and reject; the
    body-hash assertions in the responses expose the divergence to all.
    """

    def __init__(self, node: OrganisationNode, victim: str,
                 mutate: "Callable[[object], object] | None" = None) -> None:
        super().__init__(node)
        self.victim = victim
        self.mutate = mutate or _default_mutation

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if message.get("msg_type") == PROPOSE and recipient == self.victim:
            self.intercepted += 1
            tampered = copy.deepcopy(message)
            tampered["body"] = self.mutate(tampered.get("body"))
            return [(recipient, tampered)]
        return [(recipient, message)]


class ForgedCommitAuth(ByzantineBehaviour):
    """Proposer whose ``m3`` carries a wrong authenticator preimage.

    Recipients verify ``H(auth)`` against the commitment in the signed
    proposal and treat the commit as forged.
    """

    def __init__(self, node: OrganisationNode) -> None:
        super().__init__(node)

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if message.get("msg_type") in _COMMIT_TYPES:
            self.intercepted += 1
            tampered = copy.deepcopy(message)
            tampered["auth"] = b"\x00" * len(bytes(tampered.get("auth", b"\x00")))
            return [(recipient, tampered)]
        return [(recipient, message)]


class TamperedCommitResponses(ByzantineBehaviour):
    """Proposer that alters a veto into an accept inside the bundle.

    The altered response no longer verifies under the responder's
    signature, so recipients reject the bundle and hold proof of
    tampering.
    """

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if message.get("msg_type") in _COMMIT_TYPES:
            tampered = copy.deepcopy(message)
            changed = False
            for response in tampered.get("responses", []):
                decision = response.get("payload", {}).get("decision", {})
                if decision.get("verdict") == "reject":
                    decision["verdict"] = "accept"
                    decision["diagnostics"] = []
                    changed = True
            if changed:
                self.intercepted += 1
                return [(recipient, tampered)]
        return [(recipient, message)]


class MessageRecorder(ByzantineBehaviour):
    """Passive adapter that records outbound messages for replay attacks."""

    def __init__(self, node: OrganisationNode,
                 msg_type: "str | None" = None) -> None:
        super().__init__(node)
        self.msg_type = msg_type
        self.recorded: "list[tuple[str, dict]]" = []

    def apply(self, recipient: str, message: dict) -> "list[tuple[str, dict]]":
        if self.msg_type is None or message.get("msg_type") == self.msg_type:
            self.recorded.append((recipient, copy.deepcopy(message)))
        return [(recipient, message)]

    def replay(self, index: int = -1) -> None:
        """Re-send a recorded message (replay attack, section 4.4)."""
        recipient, message = self.recorded[index]
        self.node.endpoint.send(recipient, copy.deepcopy(message))


def _default_mutation(body: object) -> object:
    if isinstance(body, dict):
        mutated = dict(body)
        mutated["__tampered__"] = True
        return mutated
    return {"__tampered__": True, "original": body}
