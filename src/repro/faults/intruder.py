"""The Dolev-Yao network intruder (section 4.4).

"The well-known Dolev-Yao intruder (who has full control over the network
but cannot perform cryptanalysis) can obtain complete knowledge of
proposed object state and of decisions with respect to proposals.  In
addition, they are able to modify the unsigned parts of any message ...
Given secure channels, this intruder can only remove, delay or replay
messages."

The intruder is a :class:`~repro.transport.base.NetworkFilter` on the raw
(simulated) network, below the reliable layer — exactly where a network
attacker sits.  It can eavesdrop, drop, delay, replay, inject, and
rewrite unsigned message content; it cannot forge signatures (it has no
keys).
"""

from __future__ import annotations

import copy
from typing import Callable, Optional

from repro.transport.base import Envelope, NetworkFilter
from repro.transport.inmemory import SimNetwork


class DolevYaoIntruder(NetworkFilter):
    """A programmable man-in-the-middle on the raw network."""

    def __init__(self, network: SimNetwork, secure_channels: bool = False) -> None:
        self.network = network
        # With secure (encrypted/authenticated) channels the intruder can
        # still remove, delay and replay, but cannot read or rewrite.
        self.secure_channels = secure_channels
        self.observed: "list[Envelope]" = []
        self.dropped = 0
        self.delayed = 0
        self.replayed = 0
        self.modified = 0
        self.injected = 0
        self._drop_predicate: "Optional[Callable[[Envelope], bool]]" = None
        self._delay_predicate: "Optional[Callable[[Envelope], float]]" = None
        self._rewrite: "Optional[Callable[[dict], Optional[dict]]]" = None
        network.add_filter(self)

    def uninstall(self) -> None:
        self.network.remove_filter(self)

    # -- attack configuration -------------------------------------------

    def drop_when(self, predicate: "Callable[[Envelope], bool]") -> None:
        """Remove messages matching *predicate*."""
        self._drop_predicate = predicate

    def delay_when(self, predicate: "Callable[[Envelope], float]") -> None:
        """Delay matching messages by the returned number of seconds
        (return 0 to pass through immediately)."""
        self._delay_predicate = predicate

    def rewrite_payloads(self, rewrite: "Callable[[dict], Optional[dict]]") -> None:
        """Modify protocol payloads in flight (insecure channels only).

        *rewrite* receives a deep copy of the protocol message and
        returns the modified message, or None to leave it unchanged.
        """
        self._rewrite = rewrite

    # -- active attacks ---------------------------------------------------

    def replay(self, index: int = -1) -> None:
        """Re-inject a previously observed envelope."""
        envelope = self.observed[index]
        self.replayed += 1
        self.injected += 1
        # Bypass our own filter so the replay is not re-processed.
        self.network._transmit(copy.deepcopy(envelope))

    def inject(self, sender: str, recipient: str, payload: dict) -> None:
        """Forge a raw message claiming to be from *sender*."""
        self.injected += 1
        self.network._transmit(Envelope(
            sender=sender, recipient=recipient,
            payload={"type": "data", "data": payload},
        ))

    def knowledge(self) -> "list[dict]":
        """Everything the intruder has learned (decoded data payloads)."""
        learned = []
        for envelope in self.observed:
            if envelope.payload.get("type") == "data":
                learned.append(envelope.payload.get("data", {}))
        return learned

    # -- NetworkFilter ----------------------------------------------------

    def on_send(self, envelope: Envelope) -> "Envelope | list[Envelope] | None":
        self.observed.append(envelope)
        if self._drop_predicate is not None and self._drop_predicate(envelope):
            self.dropped += 1
            return None
        if self._delay_predicate is not None:
            delay = self._delay_predicate(envelope)
            if delay and delay > 0:
                self.delayed += 1
                self.network.schedule(
                    delay,
                    lambda env=envelope: self.network._transmit(env),
                )
                return None
        if (self._rewrite is not None and not self.secure_channels
                and envelope.payload.get("type") == "data"):
            data = copy.deepcopy(envelope.payload.get("data", {}))
            rewritten = self._rewrite(data)
            if rewritten is not None:
                self.modified += 1
                return Envelope(
                    sender=envelope.sender,
                    recipient=envelope.recipient,
                    payload={"type": "data", "data": rewritten},
                    msg_id=envelope.msg_id,
                )
        return envelope


def tamper_body(message: dict) -> "Optional[dict]":
    """Canonical unsigned-part attack: corrupt the proposed state body."""
    if message.get("msg_type") == "propose":
        tampered = copy.deepcopy(message)
        body = tampered.get("body")
        if isinstance(body, dict):
            body["__intruder__"] = True
        else:
            tampered["body"] = {"__intruder__": True}
        return tampered
    return None


def tamper_commit_auth(message: dict) -> "Optional[dict]":
    """Corrupt the (unsigned) authenticator in a commit."""
    if message.get("msg_type") in ("commit", "connect_commit", "disconnect_commit"):
        tampered = copy.deepcopy(message)
        auth = bytes(tampered.get("auth", b"\x00"))
        tampered["auth"] = bytes(b ^ 0xFF for b in auth)
        return tampered
    return None
