"""Fault and adversary models: crashes, partitions, byzantine parties,
and the Dolev-Yao network intruder."""

from repro.faults.byzantine import (
    ByzantineBehaviour,
    DivergentBody,
    ForgedCommitAuth,
    MessageRecorder,
    SelectiveCommit,
    SelectiveProposal,
    SuppressCommits,
    SuppressResponses,
    TamperedCommitResponses,
)
from repro.faults.injectors import (
    CrashWindow,
    FaultSchedule,
    PartitionWindow,
    bounded_failure_schedule,
)
from repro.faults.intruder import DolevYaoIntruder, tamper_body, tamper_commit_auth

__all__ = [
    "ByzantineBehaviour",
    "DivergentBody",
    "ForgedCommitAuth",
    "MessageRecorder",
    "SelectiveCommit",
    "SelectiveProposal",
    "SuppressCommits",
    "SuppressResponses",
    "TamperedCommitResponses",
    "CrashWindow",
    "FaultSchedule",
    "PartitionWindow",
    "bounded_failure_schedule",
    "DolevYaoIntruder",
    "tamper_body",
    "tamper_commit_auth",
]
