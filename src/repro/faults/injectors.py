"""Scheduled crash / partition fault injection.

Section 4.2's failure model: nodes crash but eventually recover;
partitions heal eventually.  A :class:`FaultSchedule` scripts such
bounded temporary failures against a simulated community so that
liveness experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.community import Community
from repro.core.runtime import SimRuntime
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CrashWindow:
    """Crash *party* at *start* and recover it at *end* (virtual time)."""

    party: str
    start: float
    end: float


@dataclass(frozen=True)
class PartitionWindow:
    """Partition the network into *groups* between *start* and *end*."""

    groups: "tuple[tuple[str, ...], ...]"
    start: float
    end: float


class FaultSchedule:
    """Arms scripted crash/partition windows on a simulated community."""

    def __init__(self, community: Community) -> None:
        if not isinstance(community.runtime, SimRuntime):
            raise ConfigurationError("fault schedules require a SimRuntime")
        self.community = community
        self.network = community.runtime.network
        self.crashes: "list[CrashWindow]" = []
        self.partitions: "list[PartitionWindow]" = []

    def crash(self, party: str, start: float, end: float) -> "FaultSchedule":
        if end <= start:
            raise ConfigurationError("crash window must have positive duration")
        if party not in self.community.nodes:
            raise ConfigurationError(f"unknown party {party!r}")
        self.crashes.append(CrashWindow(party, start, end))
        return self

    def partition(self, groups: "list[list[str]]", start: float,
                  end: float) -> "FaultSchedule":
        if end <= start:
            raise ConfigurationError("partition window must have positive duration")
        self.partitions.append(PartitionWindow(
            tuple(tuple(group) for group in groups), start, end,
        ))
        return self

    def arm(self) -> None:
        """Register every window with the simulator's timer wheel."""
        now = self.network.now()
        for window in self.crashes:
            node = self.community.nodes[window.party]
            self.network.schedule(max(0.0, window.start - now), node.crash)
            self.network.schedule(max(0.0, window.end - now), node.recover)
        for window in self.partitions:
            groups = [set(group) for group in window.groups]
            self.network.schedule(
                max(0.0, window.start - now),
                lambda gs=groups: self.network.partition(*gs),
            )
            self.network.schedule(
                max(0.0, window.end - now), self.network.heal_partition
            )

    def total_downtime(self) -> float:
        """Aggregate scheduled fault time (for benchmark reporting)."""
        crash_time = sum(w.end - w.start for w in self.crashes)
        partition_time = sum(w.end - w.start for w in self.partitions)
        return crash_time + partition_time


def bounded_failure_schedule(community: Community, parties: "list[str]",
                             failures: int, period: float = 2.0,
                             downtime: float = 0.5,
                             start: float = 0.25,
                             kind: str = "crash",
                             seedless_round_robin: bool = True
                             ) -> FaultSchedule:
    """Build a simple bounded-failure schedule (experiment C2).

    Injects *failures* temporary faults, one every *period* seconds, each
    lasting *downtime* seconds, cycling round-robin over *parties*
    (crash) or over two-way splits of the community (partition).
    """
    schedule = FaultSchedule(community)
    names = list(parties)
    for index in range(failures):
        begin = start + index * period
        end = begin + downtime
        if kind == "crash":
            schedule.crash(names[index % len(names)], begin, end)
        elif kind == "partition":
            isolated = names[index % len(names)]
            rest = [n for n in community.names() if n != isolated]
            schedule.partition([[isolated], rest], begin, end)
        else:
            raise ConfigurationError(f"unknown fault kind {kind!r}")
    return schedule
