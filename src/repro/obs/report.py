"""Plain-text reporting over a metrics registry or a captured snapshot.

``render_report`` produces the per-phase breakdown the CLI's
``obs-report`` command and the benchmark ``--obs`` path print: protocol
message/byte counts and handling spans per phase (m1/m2/m3), sign/verify
latency histograms, transport reliability counters and storage append
statistics.

Sections render from a registry *snapshot* (the dict shape of
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), not from live
instruments — so ``render_snapshot`` works equally on a running node, on
the JSON payload scraped from a telemetry endpoint, or on a snapshot
captured hours earlier.  Every accessor tolerates missing instruments: a
subsystem that never ran renders zeros, never a KeyError or a division
by zero.
"""

from __future__ import annotations

from repro.obs.hooks import PHASE_M1, PHASE_M2, PHASE_M3
from repro.obs.metrics import MetricsRegistry

PHASES = (PHASE_M1, PHASE_M2, PHASE_M3)

_EMPTY_HIST = {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
               "p50": 0.0, "p95": 0.0, "p99": 0.0}
_EMPTY_GAUGE = {"value": 0.0, "high_water": 0.0}


def format_table(headers: "list[str]", rows: "list[list]") -> str:
    """Render an aligned plain-text table (shared report output)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _ms(seconds: float) -> float:
    return seconds * 1000.0


# -- snapshot accessors (missing-instrument safe) --------------------------


def _c(snapshot: dict, name: str) -> int:
    return snapshot.get("counters", {}).get(name, 0)


def _g(snapshot: dict, name: str) -> dict:
    entry = snapshot.get("gauges", {}).get(name)
    return entry if entry else dict(_EMPTY_GAUGE)


def _h(snapshot: dict, name: str) -> dict:
    merged = dict(_EMPTY_HIST)
    entry = snapshot.get("histograms", {}).get(name)
    if entry:
        merged.update(entry)
    return merged


def render_report(registry: MetricsRegistry) -> str:
    """The full observability report for one instrumented run."""
    return render_snapshot(registry.snapshot())


def render_snapshot(snapshot: dict, health: "dict | None" = None) -> str:
    """Render a captured registry snapshot (optionally with health status).

    *snapshot* is ``MetricsRegistry.snapshot()`` output — live, scraped
    from ``/metrics.json``, or loaded from a file.  *health* is an
    optional ``HealthMonitor.status()`` dict appended as its own
    section.
    """
    sections = [
        _phase_section(snapshot),
        _crypto_section(snapshot),
        _transport_section(snapshot),
        _wire_section(snapshot),
        _storage_section(snapshot),
        _run_section(snapshot),
        _pipeline_section(snapshot),
        _shard_section(snapshot),
        _readcache_section(snapshot),
        _gateway_section(snapshot),
        _health_section(health),
    ]
    return "\n\n".join(section for section in sections if section)


def _phase_section(snapshot: dict) -> str:
    rows = []
    for phase in PHASES:
        handle = _h(snapshot, f"protocol.{phase}.handle_seconds")
        rows.append([
            phase,
            _c(snapshot, f"protocol.{phase}.sent"),
            _c(snapshot, f"protocol.{phase}.received"),
            _c(snapshot, f"protocol.{phase}.bytes_sent"),
            handle["count"],
            _ms(handle["p50"]),
            _ms(handle["p95"]),
            _ms(handle["p99"]),
        ])
    table = format_table(
        ["phase", "sent", "received", "bytes sent",
         "handled", "handle p50 ms", "p95 ms", "p99 ms"],
        rows,
    )
    return "== protocol phases (m1 propose / m2 respond / m3 commit) ==\n" + table


def _crypto_section(snapshot: dict) -> str:
    rows = []
    for op in ("sign", "verify"):
        summary = _h(snapshot, f"crypto.{op}_seconds")
        rows.append([
            op, summary["count"], _ms(summary["mean"]),
            _ms(summary["p50"]), _ms(summary["p95"]), _ms(summary["p99"]),
        ])
    table = format_table(
        ["operation", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms"], rows
    )
    return "== signature operations ==\n" + table


def _transport_section(snapshot: dict) -> str:
    depth = _g(snapshot, "transport.queue_depth")
    rows = [
        ["data messages sent", _c(snapshot, "transport.data_sent")],
        ["retransmissions", _c(snapshot, "transport.retransmissions")],
        ["duplicates suppressed",
         _c(snapshot, "transport.duplicates_suppressed")],
        ["acks received", _c(snapshot, "transport.acks_received")],
        ["retry exhausted", _c(snapshot, "transport.retry_exhausted")],
        ["max outbound queue depth", depth["high_water"]],
    ]
    pool_rows = [
        ["connections opened",
         _c(snapshot, "transport.tcp.connections_opened")],
        ["reconnects", _c(snapshot, "transport.tcp.reconnects")],
        ["connections reused",
         _c(snapshot, "transport.tcp.connections_reused")],
        ["connect failures",
         _c(snapshot, "transport.tcp.connect_failures")],
        ["frames coalesced",
         _c(snapshot, "transport.tcp.frames_coalesced")],
        ["coalesced batches", _c(snapshot, "transport.tcp.batches")],
        ["malformed frames",
         _c(snapshot, "transport.tcp.malformed_frames")],
        ["handler errors (command)",
         _c(snapshot, "transport.tcp.handler_errors.command")],
        ["handler errors (timer)",
         _c(snapshot, "transport.tcp.handler_errors.timer")],
        ["handler errors (dispatch)",
         _c(snapshot, "transport.tcp.handler_errors.dispatch")],
    ]
    text = "== reliable transport ==\n" + format_table(["counter", "value"], rows)
    if any(value for _, value in pool_rows):
        text += ("\n\n== tcp connection pool ==\n"
                 + format_table(["counter", "value"], pool_rows))
    return text


def _wire_section(snapshot: dict) -> str:
    rows = []
    for codec in ("json", "binary"):
        frames_out = _c(snapshot, f"wire.{codec}.frames_out")
        frames_in = _c(snapshot, f"wire.{codec}.frames_in")
        if frames_out == 0 and frames_in == 0:
            continue
        encode = _h(snapshot, f"wire.{codec}.encode_seconds")
        decode = _h(snapshot, f"wire.{codec}.decode_seconds")
        rows.append([
            codec,
            frames_out, _c(snapshot, f"wire.{codec}.bytes_out"),
            frames_in, _c(snapshot, f"wire.{codec}.bytes_in"),
            _ms(encode["p50"]) * 1000.0, _ms(decode["p50"]) * 1000.0,
        ])
    if not rows:
        return ""
    table = format_table(
        ["codec", "frames out", "bytes out", "frames in", "bytes in",
         "encode p50 us", "decode p50 us"],
        rows,
    )
    return "== wire codec ==\n" + table


def _storage_section(snapshot: dict) -> str:
    journal = _h(snapshot, "storage.journal.append_seconds")
    evidence = _h(snapshot, "storage.evidence.append_seconds")
    rows = [
        ["journal", _c(snapshot, "storage.journal.appends"),
         _c(snapshot, "storage.journal.bytes"),
         _ms(journal["p95"])],
        ["evidence log", _c(snapshot, "storage.evidence.appends"),
         _c(snapshot, "storage.evidence.bytes"),
         _ms(evidence["p95"])],
    ]
    return "== storage ==\n" + format_table(
        ["store", "appends", "bytes", "append p95 ms"], rows
    )


def _run_section(snapshot: dict) -> str:
    started = _c(snapshot, "protocol.runs.started")
    if started == 0:
        return ""
    run = _h(snapshot, "protocol.run_seconds")
    rows = [
        ["runs started", started],
        ["runs valid", _c(snapshot, "protocol.runs.valid")],
        ["runs invalid", _c(snapshot, "protocol.runs.invalid")],
        ["validation accepted",
         _c(snapshot, "protocol.validation.accepted")],
        ["validation rejected",
         _c(snapshot, "protocol.validation.rejected")],
        ["run time p50 (s)", run["p50"]],
        ["run time p95 (s)", run["p95"]],
    ]
    return "== coordination runs ==\n" + format_table(["metric", "value"], rows)


def _pipeline_section(snapshot: dict) -> str:
    batches = _c(snapshot, "pipeline.batches")
    retries = _c(snapshot, "pipeline.busy_retries")
    saturated = _c(snapshot, "pipeline.saturated")
    depth = _g(snapshot, "pipeline.depth")
    if batches == 0 and retries == 0 and saturated == 0 \
            and depth["high_water"] == 0:
        return ""
    size = _h(snapshot, "pipeline.batch_size")
    rows = [
        ["batched proposals", batches],
        ["updates batched", _c(snapshot, "pipeline.batched_updates")],
        ["batch size p50", size["p50"]],
        ["batch size max", size["max"]],
        ["busy retries", retries],
        ["saturation rejections", saturated],
        ["max pipeline depth", depth["high_water"]],
    ]
    return "== proposal pipeline ==\n" + format_table(["metric", "value"], rows)


def _shard_section(snapshot: dict) -> str:
    settled = _c(snapshot, "shards.settled")
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    indices = set()
    for name in counters:
        for prefix in ("shards.settled.s", "shards.dispatched.s"):
            if name.startswith(prefix):
                suffix = name[len(prefix):]
                if suffix.isdigit():
                    indices.add(int(suffix))
    for name in gauges:
        if name.startswith("shards.queue_depth.s"):
            suffix = name[len("shards.queue_depth.s"):]
            if suffix.isdigit():
                indices.add(int(suffix))
    if settled == 0 and not indices:
        return ""
    rows = []
    for index in sorted(indices):
        depth = _g(snapshot, f"shards.queue_depth.s{index}")
        rows.append([
            f"s{index}",
            _c(snapshot, f"shards.dispatched.s{index}"),
            _c(snapshot, f"shards.settled.s{index}"),
            depth["high_water"],
        ])
    rows.append([
        "total", sum(row[1] for row in rows), settled,
        max((row[3] for row in rows), default=0.0),
    ])
    table = format_table(
        ["shard", "dispatched", "settled", "max queue depth"], rows
    )
    text = "== shard scheduler ==\n" + table
    invalid = _c(snapshot, "shards.settled.invalid")
    if invalid:
        text += f"\ninvalid settlements: {invalid}"
    return text


def _readcache_section(snapshot: dict) -> str:
    reads = _c(snapshot, "readcache.reads")
    published = _c(snapshot, "readcache.published")
    if reads == 0 and published == 0:
        return ""
    staleness = _h(snapshot, "readcache.staleness_seconds")
    version = _g(snapshot, "readcache.version")
    rows = [
        ["reads", reads],
        ["reads settled", _c(snapshot, "readcache.reads.settled")],
        ["reads bounded", _c(snapshot, "readcache.reads.bounded")],
        ["reads cached", _c(snapshot, "readcache.reads.cached")],
        ["snapshot hits", _c(snapshot, "readcache.hits")],
        ["misses (refreshed)", _c(snapshot, "readcache.misses")],
        ["snapshots published", published],
        ["snapshots invalidated", _c(snapshot, "readcache.invalidated")],
        ["latest version", version["value"]],
        ["staleness p50 ms", _ms(staleness["p50"])],
        ["staleness p95 ms", _ms(staleness["p95"])],
        ["staleness max ms", _ms(staleness["max"])],
    ]
    return "== validated read cache ==\n" + format_table(
        ["metric", "value"], rows)


def _gateway_section(snapshot: dict) -> str:
    admitted = _c(snapshot, "gateway.admitted")
    rejected = _c(snapshot, "gateway.rejected")
    replays = _c(snapshot, "gateway.replays")
    if admitted == 0 and rejected == 0 and replays == 0:
        return ""
    settle = _h(snapshot, "gateway.settle_seconds")
    retry_after = _h(snapshot, "gateway.retry_after_seconds")
    depth = _g(snapshot, "gateway.queue_depth")
    rows = [
        ["admitted", admitted],
        ["settled valid", _c(snapshot, "gateway.settled.valid")],
        ["settled invalid", _c(snapshot, "gateway.settled.invalid")],
        ["rate limited", _c(snapshot, "gateway.rejected.rate_limited")],
        ["shed (overloaded)", _c(snapshot, "gateway.rejected.overloaded")],
        ["circuit open rejections",
         _c(snapshot, "gateway.rejected.circuit_open")],
        ["idempotent replays", replays],
        ["max admission queue depth", depth["high_water"]],
        ["breaker transitions",
         _c(snapshot, "gateway.breaker.transitions")],
        ["settle latency p50 ms", _ms(settle["p50"])],
        ["settle latency p95 ms", _ms(settle["p95"])],
        ["settle latency p99 ms", _ms(settle["p99"])],
        ["retry-after p50 s", retry_after["p50"]],
        ["retry-after p95 s", retry_after["p95"]],
        ["retry-after p99 s", retry_after["p99"]],
    ]
    return "== gateway ==\n" + format_table(["metric", "value"], rows)


def _health_section(health: "dict | None") -> str:
    if not health:
        return ""
    rows = [
        ["health", health.get("health", "healthy")],
        ["firing rules", ", ".join(health.get("firing", [])) or "-"],
        ["alerts", len(health.get("alerts", []))],
        ["transitions", len(health.get("transitions", []))],
    ]
    return "== node health ==\n" + format_table(["metric", "value"], rows)
