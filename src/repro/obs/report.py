"""Plain-text reporting over a metrics registry.

``render_report`` produces the per-phase breakdown the CLI's
``obs-report`` command and the benchmark ``--obs`` path print: protocol
message/byte counts and handling spans per phase (m1/m2/m3), sign/verify
latency histograms, transport reliability counters and storage append
statistics.
"""

from __future__ import annotations

from repro.obs.hooks import PHASE_M1, PHASE_M2, PHASE_M3
from repro.obs.metrics import MetricsRegistry

PHASES = (PHASE_M1, PHASE_M2, PHASE_M3)


def format_table(headers: "list[str]", rows: "list[list]") -> str:
    """Render an aligned plain-text table (shared report output)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _ms(seconds: float) -> float:
    return seconds * 1000.0


def render_report(registry: MetricsRegistry) -> str:
    """The full observability report for one instrumented run."""
    sections = [
        _phase_section(registry),
        _crypto_section(registry),
        _transport_section(registry),
        _storage_section(registry),
        _run_section(registry),
        _pipeline_section(registry),
        _gateway_section(registry),
    ]
    return "\n\n".join(section for section in sections if section)


def _phase_section(registry: MetricsRegistry) -> str:
    rows = []
    for phase in PHASES:
        handle = registry.histogram(f"protocol.{phase}.handle_seconds").summary()
        rows.append([
            phase,
            registry.counter_value(f"protocol.{phase}.sent"),
            registry.counter_value(f"protocol.{phase}.received"),
            registry.counter_value(f"protocol.{phase}.bytes_sent"),
            handle["count"],
            _ms(handle["p50"]),
            _ms(handle["p95"]),
            _ms(handle["p99"]),
        ])
    table = format_table(
        ["phase", "sent", "received", "bytes sent",
         "handled", "handle p50 ms", "p95 ms", "p99 ms"],
        rows,
    )
    return "== protocol phases (m1 propose / m2 respond / m3 commit) ==\n" + table


def _crypto_section(registry: MetricsRegistry) -> str:
    rows = []
    for op in ("sign", "verify"):
        summary = registry.histogram(f"crypto.{op}_seconds").summary()
        rows.append([
            op, summary["count"], _ms(summary["mean"]),
            _ms(summary["p50"]), _ms(summary["p95"]), _ms(summary["p99"]),
        ])
    table = format_table(
        ["operation", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms"], rows
    )
    return "== signature operations ==\n" + table


def _transport_section(registry: MetricsRegistry) -> str:
    depth = registry.gauge("transport.queue_depth")
    rows = [
        ["data messages sent", registry.counter_value("transport.data_sent")],
        ["retransmissions", registry.counter_value("transport.retransmissions")],
        ["duplicates suppressed",
         registry.counter_value("transport.duplicates_suppressed")],
        ["acks received", registry.counter_value("transport.acks_received")],
        ["retry exhausted", registry.counter_value("transport.retry_exhausted")],
        ["max outbound queue depth", depth.high_water],
    ]
    pool_rows = [
        ["connections opened",
         registry.counter_value("transport.tcp.connections_opened")],
        ["reconnects", registry.counter_value("transport.tcp.reconnects")],
        ["connections reused",
         registry.counter_value("transport.tcp.connections_reused")],
        ["connect failures",
         registry.counter_value("transport.tcp.connect_failures")],
        ["frames coalesced",
         registry.counter_value("transport.tcp.frames_coalesced")],
        ["coalesced batches", registry.counter_value("transport.tcp.batches")],
    ]
    text = "== reliable transport ==\n" + format_table(["counter", "value"], rows)
    if any(value for _, value in pool_rows):
        text += ("\n\n== tcp connection pool ==\n"
                 + format_table(["counter", "value"], pool_rows))
    return text


def _storage_section(registry: MetricsRegistry) -> str:
    journal = registry.histogram("storage.journal.append_seconds").summary()
    evidence = registry.histogram("storage.evidence.append_seconds").summary()
    rows = [
        ["journal", registry.counter_value("storage.journal.appends"),
         registry.counter_value("storage.journal.bytes"),
         _ms(journal["p95"])],
        ["evidence log", registry.counter_value("storage.evidence.appends"),
         registry.counter_value("storage.evidence.bytes"),
         _ms(evidence["p95"])],
    ]
    return "== storage ==\n" + format_table(
        ["store", "appends", "bytes", "append p95 ms"], rows
    )


def _run_section(registry: MetricsRegistry) -> str:
    started = registry.counter_value("protocol.runs.started")
    if started == 0:
        return ""
    run = registry.histogram("protocol.run_seconds").summary()
    rows = [
        ["runs started", started],
        ["runs valid", registry.counter_value("protocol.runs.valid")],
        ["runs invalid", registry.counter_value("protocol.runs.invalid")],
        ["validation accepted",
         registry.counter_value("protocol.validation.accepted")],
        ["validation rejected",
         registry.counter_value("protocol.validation.rejected")],
        ["run time p50 (s)", run["p50"]],
        ["run time p95 (s)", run["p95"]],
    ]
    return "== coordination runs ==\n" + format_table(["metric", "value"], rows)


def _pipeline_section(registry: MetricsRegistry) -> str:
    batches = registry.counter_value("pipeline.batches")
    retries = registry.counter_value("pipeline.busy_retries")
    saturated = registry.counter_value("pipeline.saturated")
    depth = registry.gauge("pipeline.depth")
    if batches == 0 and retries == 0 and saturated == 0 \
            and depth.high_water == 0:
        return ""
    size = registry.histogram("pipeline.batch_size").summary()
    rows = [
        ["batched proposals", batches],
        ["updates batched", registry.counter_value("pipeline.batched_updates")],
        ["batch size p50", size["p50"]],
        ["batch size max", size["max"]],
        ["busy retries", retries],
        ["saturation rejections", saturated],
        ["max pipeline depth", depth.high_water],
    ]
    return "== proposal pipeline ==\n" + format_table(["metric", "value"], rows)


def _gateway_section(registry: MetricsRegistry) -> str:
    admitted = registry.counter_value("gateway.admitted")
    rejected = registry.counter_value("gateway.rejected")
    replays = registry.counter_value("gateway.replays")
    if admitted == 0 and rejected == 0 and replays == 0:
        return ""
    settle = registry.histogram("gateway.settle_seconds").summary()
    depth = registry.gauge("gateway.queue_depth")
    rows = [
        ["admitted", admitted],
        ["settled valid", registry.counter_value("gateway.settled.valid")],
        ["settled invalid", registry.counter_value("gateway.settled.invalid")],
        ["rate limited", registry.counter_value("gateway.rejected.rate_limited")],
        ["shed (queue full)", registry.counter_value("gateway.rejected.queue_full")],
        ["circuit open rejections",
         registry.counter_value("gateway.rejected.circuit_open")],
        ["idempotent replays", replays],
        ["max admission queue depth", depth.high_water],
        ["breaker transitions",
         registry.counter_value("gateway.breaker.transitions")],
        ["settle latency p50 ms", _ms(settle["p50"])],
        ["settle latency p95 ms", _ms(settle["p95"])],
        ["settle latency p99 ms", _ms(settle["p99"])],
    ]
    return "== gateway ==\n" + format_table(["metric", "value"], rows)
