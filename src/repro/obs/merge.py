"""Cross-party trace merging: one causal timeline from N trace files.

Every organisation exports its *own* trace file (wall clocks are not
comparable across administrative domains), and an auditor merges them
offline.  Ordering is purely logical: records are sorted by Lamport
clock value with the party id as the tie-break, which respects causality
by construction — a receive always carries a larger Lamport value than
the send that caused it.

The merge also reconstructs the per-run causal DAG (``parent_span_id``
edges) and flags anomalies worth a human's attention: vetoed proposals,
runs that never settled at some party, retransmission storms, duplicate
floods, recipients that never answered, and deadline-style aborts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.hooks import PHASE_M1, PHASE_M2, PHASE_M3, RECEIVED, SENT
from repro.obs.trace import read_jsonl

# Record names produced by RecordingInstrumentation that the merge
# understands.  Everything else passes through untouched in the total
# order (if it carries a lamport value) or is ignored.
CAUSAL_MESSAGE = "causal.message"
CAUSAL_DECISION = "causal.decision"
CAUSAL_OUTCOME = "causal.outcome"
TRANSPORT_SEND = "transport.send"
TRANSPORT_RETRANSMISSION = "transport.retransmission"
TRANSPORT_DUPLICATE = "transport.duplicate"

ANOMALY_VETO = "veto"
ANOMALY_STALLED_RUN = "stalled-run"
ANOMALY_RETRANSMISSION_STORM = "retransmission-storm"
ANOMALY_DUPLICATE_FLOOD = "duplicate-flood"
ANOMALY_MISSING_RESPONSE = "missing-response"
ANOMALY_ABORTED_RUN = "aborted-run"


@dataclass(frozen=True)
class Anomaly:
    """One suspicious pattern surfaced by the merge."""

    kind: str
    trace_id: str
    run_id: str
    party: str
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "trace_id": self.trace_id,
                "run_id": self.run_id, "party": self.party,
                "detail": self.detail}


@dataclass
class RunTrace:
    """The merged causal view of one coordination run."""

    trace_id: str
    run_id: str
    proposer: str = ""
    events: "list[dict]" = field(default_factory=list)
    edges: "list[tuple[str, str]]" = field(default_factory=list)
    unresolved_parents: "list[str]" = field(default_factory=list)
    vetoes: "list[dict]" = field(default_factory=list)
    outcomes: "dict[str, str]" = field(default_factory=dict)
    participants: "list[str]" = field(default_factory=list)
    anomalies: "list[Anomaly]" = field(default_factory=list)

    @property
    def settled(self) -> bool:
        return bool(self.outcomes)

    def veto_parties(self) -> "list[str]":
        return sorted({str(v.get("party", "")) for v in self.vetoes})


@dataclass
class MergedTrace:
    """All parties' records in one deterministic total order."""

    events: "list[dict]" = field(default_factory=list)
    runs: "dict[str, RunTrace]" = field(default_factory=dict)
    anomalies: "list[Anomaly]" = field(default_factory=list)

    def run_for(self, run_id: str) -> "RunTrace | None":
        for run in self.runs.values():
            if run.run_id == run_id or run.run_id.startswith(run_id):
                return run
        return None


def _order_key(record: dict) -> tuple:
    """Deterministic total order: Lamport first, party as tie-break.

    The trailing canonical-JSON key makes the order a function of the
    record *set* alone, independent of file order — merging shuffled
    inputs yields byte-identical timelines.
    """
    return (
        int(record.get("lamport", 0)),
        str(record.get("party", "")),
        float(record.get("at", 0.0)),
        str(record.get("name", "")),
        json.dumps(record, sort_keys=True, default=str),
    )


def merge_traces(record_lists: "Iterable[list[dict]]",
                 retransmission_threshold: int = 3,
                 duplicate_threshold: int = 3) -> MergedTrace:
    """Merge per-party record lists into one causal timeline."""
    causal: "list[dict]" = []
    transport: "list[dict]" = []
    for records in record_lists:
        for record in records:
            name = str(record.get("name", ""))
            if name.startswith("causal."):
                causal.append(record)
            elif name in (TRANSPORT_SEND, TRANSPORT_RETRANSMISSION,
                          TRANSPORT_DUPLICATE):
                transport.append(record)
    causal.sort(key=_order_key)

    merged = MergedTrace(events=causal)
    for record in causal:
        trace_id = str(record.get("trace_id", ""))
        if not trace_id:
            continue
        run = merged.runs.get(trace_id)
        if run is None:
            run = RunTrace(trace_id=trace_id,
                           run_id=str(record.get("run_id", "")))
            merged.runs[trace_id] = run
        run.events.append(record)

    for run in merged.runs.values():
        _analyse_run(run)

    _attribute_transport(merged, transport,
                         retransmission_threshold, duplicate_threshold)

    for run in merged.runs.values():
        merged.anomalies.extend(run.anomalies)
    return merged


def merge_trace_files(paths: "Iterable[str]", **kwargs) -> MergedTrace:
    """Merge JSONL trace files exported by each party."""
    return merge_traces([read_jsonl(path) for path in paths], **kwargs)


def _analyse_run(run: RunTrace) -> None:
    """Reconstruct the DAG and detect per-run anomalies."""
    span_ids: "set[str]" = set()
    parties: "set[str]" = set()
    m1_recipients: "set[str]" = set()
    m3_senders: "set[str]" = set()
    deciders: "set[str]" = set()
    for record in run.events:
        party = str(record.get("party", ""))
        parties.add(party)
        name = record.get("name")
        if name == CAUSAL_MESSAGE:
            span = str(record.get("span_id", ""))
            if span:
                span_ids.add(span)
            parent = str(record.get("parent_span_id", ""))
            if parent:
                run.edges.append((parent, span))
            phase = record.get("phase")
            direction = record.get("direction")
            if phase == PHASE_M1 and direction == SENT:
                run.proposer = run.proposer or party
                m1_recipients.add(str(record.get("peer", "")))
            elif phase == PHASE_M3 and direction == SENT:
                m3_senders.add(party)
        elif name == CAUSAL_DECISION:
            deciders.add(party)
            if not record.get("accepted", True):
                run.vetoes.append(record)
        elif name == CAUSAL_OUTCOME:
            run.outcomes[party] = str(record.get("outcome", ""))
    run.participants = sorted(p for p in parties if p)
    run.unresolved_parents = sorted(
        {parent for parent, _ in run.edges if parent not in span_ids}
    )

    for veto in run.vetoes:
        run.anomalies.append(Anomaly(
            kind=ANOMALY_VETO, trace_id=run.trace_id, run_id=run.run_id,
            party=str(veto.get("party", "")),
            detail=str(veto.get("diagnostics", "")) or "proposal vetoed",
        ))
    stalled = sorted(p for p in parties if p and p not in run.outcomes)
    if stalled:
        run.anomalies.append(Anomaly(
            kind=ANOMALY_STALLED_RUN, trace_id=run.trace_id,
            run_id=run.run_id, party=", ".join(stalled),
            detail=f"no settlement recorded at {stalled}"
                   + ("" if m3_senders else "; run never reached m3"),
        ))
    unresponsive = sorted(p for p in m1_recipients if p and p not in deciders)
    if unresponsive:
        run.anomalies.append(Anomaly(
            kind=ANOMALY_MISSING_RESPONSE, trace_id=run.trace_id,
            run_id=run.run_id, party=", ".join(unresponsive),
            detail=f"m1 was sent to {unresponsive} but no decision "
                   "of theirs appears in any trace",
        ))
        if run.proposer and run.outcomes.get(run.proposer) == "invalid" \
                and not run.vetoes:
            run.anomalies.append(Anomaly(
                kind=ANOMALY_ABORTED_RUN, trace_id=run.trace_id,
                run_id=run.run_id, party=run.proposer,
                detail="proposer settled invalid without any veto: "
                       "deadline-forced abort over a partial response set",
            ))


def _attribute_transport(merged: MergedTrace, transport: "list[dict]",
                         retransmission_threshold: int,
                         duplicate_threshold: int) -> None:
    """Fold transport noise onto runs via the msg_id -> trace binding."""
    msg_trace: "dict[str, str]" = {}
    for record in transport:
        if record.get("name") == TRANSPORT_SEND:
            msg_id = str(record.get("msg_id", ""))
            trace_id = str(record.get("trace_id", ""))
            if msg_id and trace_id:
                msg_trace[msg_id] = trace_id

    retransmissions: "dict[str, list[dict]]" = {}
    duplicates: "dict[str, list[dict]]" = {}
    for record in transport:
        msg_id = str(record.get("msg_id", ""))
        if record.get("name") == TRANSPORT_RETRANSMISSION:
            retransmissions.setdefault(msg_id, []).append(record)
        elif record.get("name") == TRANSPORT_DUPLICATE:
            duplicates.setdefault(msg_id, []).append(record)

    def _target(msg_id: str) -> "RunTrace | None":
        trace_id = msg_trace.get(msg_id, "")
        return merged.runs.get(trace_id)

    for msg_id, records in sorted(retransmissions.items()):
        if len(records) < retransmission_threshold:
            continue
        run = _target(msg_id)
        anomaly = Anomaly(
            kind=ANOMALY_RETRANSMISSION_STORM,
            trace_id=run.trace_id if run else msg_trace.get(msg_id, ""),
            run_id=run.run_id if run else "",
            party=str(records[0].get("party", "")),
            detail=f"{len(records)} retransmissions of {msg_id} "
                   f"to {records[0].get('peer', '?')}",
        )
        if run is not None:
            run.anomalies.append(anomaly)
        else:
            merged.anomalies.append(anomaly)
    for msg_id, records in sorted(duplicates.items()):
        if len(records) < duplicate_threshold:
            continue
        run = _target(msg_id)
        anomaly = Anomaly(
            kind=ANOMALY_DUPLICATE_FLOOD,
            trace_id=run.trace_id if run else msg_trace.get(msg_id, ""),
            run_id=run.run_id if run else "",
            party=str(records[0].get("party", "")),
            detail=f"{len(records)} duplicate deliveries of {msg_id} "
                   f"from {records[0].get('peer', '?')}",
        )
        if run is not None:
            run.anomalies.append(anomaly)
        else:
            merged.anomalies.append(anomaly)


def render_timeline(merged: MergedTrace, max_events: "int | None" = None) -> str:
    """Human-readable merged timeline, one run section at a time."""
    lines: "list[str]" = []
    lines.append(f"merged causal timeline: {len(merged.events)} events, "
                 f"{len(merged.runs)} run(s), "
                 f"{len(merged.anomalies)} anomaly(ies)")
    for trace_id in sorted(merged.runs):
        run = merged.runs[trace_id]
        lines.append("")
        lines.append(f"run {run.run_id[:12]} (trace {trace_id[:12]}…)"
                     f" proposer={run.proposer or '?'}"
                     f" participants={run.participants}")
        shown = run.events if max_events is None else run.events[:max_events]
        for record in shown:
            name = record.get("name", "")
            piece = f"  L{record.get('lamport', 0):>4} {record.get('party', ''):<10} {name}"
            if name == CAUSAL_MESSAGE:
                piece += (f" {record.get('phase')}/{record.get('direction')}"
                          f" peer={record.get('peer')}")
            elif name == CAUSAL_DECISION:
                verdict = "accept" if record.get("accepted") else "VETO"
                piece += f" {verdict}"
                diagnostics = record.get("diagnostics")
                if diagnostics:
                    piece += f" ({diagnostics})"
            elif name == CAUSAL_OUTCOME:
                piece += f" {record.get('role')}/{record.get('outcome')}"
            lines.append(piece)
        if max_events is not None and len(run.events) > max_events:
            lines.append(f"  … {len(run.events) - max_events} more event(s)")
        if run.unresolved_parents:
            lines.append(f"  unresolved causal parents: "
                         f"{len(run.unresolved_parents)} (trace files missing?)")
        for anomaly in run.anomalies:
            lines.append(f"  !! {anomaly.kind}: {anomaly.party} — {anomaly.detail}")
    orphan = [a for a in merged.anomalies
              if a.kind in (ANOMALY_RETRANSMISSION_STORM,
                            ANOMALY_DUPLICATE_FLOOD) and not a.run_id]
    for anomaly in orphan:
        lines.append(f"!! {anomaly.kind} (unattributed): {anomaly.party} — "
                     f"{anomaly.detail}")
    return "\n".join(lines)
