"""Structured tracing: typed span/event records with pluggable exporters.

A :class:`Tracer` turns protocol activity into flat, timestamped records
(run id, party, phase, sizes, durations) that can be collected in memory
for assertions or streamed as JSON lines for offline analysis.  Records
are plain data — no object graph to walk — so an exporter is just a
callable receiving one dict-able record at a time.

Cross-party causality rides on a :class:`TraceContext` — a W3C-style
trace id (32 hex chars, derived from the protocol run id so every party
computes the same one), a span id (16 hex chars), and a Lamport clock
value.  The context travels in an unsigned ``trace_ctx`` field of the
wire messages, so wall-clock skew between organisations never matters:
merging per-party trace files (:mod:`repro.obs.merge`) orders records by
Lamport value with the party id as the tie-break.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

SPAN = "span"
EVENT = "event"

TRACE_ID_CHARS = 32  # W3C trace-id: 16 bytes hex
SPAN_ID_CHARS = 16  # W3C span-id: 8 bytes hex


def trace_id_for_run(run_id: str) -> str:
    """Derive the W3C-style trace id every party uses for one run.

    Run ids are already collision-free hashes shared by all parties (each
    derives it from the proposed state identifier), so the trace id is
    simply its 16-byte prefix — a party that never received the carried
    context still lands in the right trace.
    """
    if not run_id:
        return ""
    return run_id[:TRACE_ID_CHARS].ljust(TRACE_ID_CHARS, "0")


def span_id_for(trace_id: str, party: str, lamport: int) -> str:
    """Deterministic span id for one party's event in one trace."""
    seed = f"span|{trace_id}|{party}|{lamport}".encode("utf-8")
    return hashlib.sha256(seed).hexdigest()[:SPAN_ID_CHARS]


class LamportClock:
    """Thread-safe Lamport logical clock (one per party)."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def tick(self) -> int:
        """Advance for a local event; returns the event's clock value."""
        with self._lock:
            self._value += 1
            return self._value

    def observe(self, other: int) -> int:
        """Merge a received clock value; returns the receive event's value."""
        with self._lock:
            self._value = max(self._value, int(other)) + 1
            return self._value


@dataclass(frozen=True)
class TraceContext:
    """The causal context of one protocol message.

    ``span_id`` identifies the emitting event; ``parent_span_id`` (set on
    the receiving side) points at the send event that caused it.
    """

    trace_id: str
    span_id: str
    lamport: int
    parent_span_id: str = ""

    def to_dict(self) -> dict:
        data = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "lamport": self.lamport,
        }
        if self.parent_span_id:
            data["parent_span_id"] = self.parent_span_id
        return data

    @staticmethod
    def from_dict(data) -> "Optional[TraceContext]":
        """Tolerant parse; returns None for anything malformed."""
        if not isinstance(data, dict):
            return None
        try:
            return TraceContext(
                trace_id=str(data.get("trace_id", "")),
                span_id=str(data.get("span_id", "")),
                lamport=int(data.get("lamport", 0)),
                parent_span_id=str(data.get("parent_span_id", "")),
            )
        except (TypeError, ValueError):
            return None


class PartyTraceContext:
    """One party's causal-tracing state: its Lamport clock + id factory."""

    def __init__(self, party_id: str) -> None:
        self.party_id = party_id
        self.clock = LamportClock()

    def begin_send(self, run_id: str) -> TraceContext:
        """Context for an outbound message (one broadcast = one event)."""
        lamport = self.clock.tick()
        trace_id = trace_id_for_run(run_id)
        return TraceContext(
            trace_id=trace_id,
            span_id=span_id_for(trace_id, self.party_id, lamport),
            lamport=lamport,
        )

    def receive(self, run_id: str, raw) -> TraceContext:
        """Context for an inbound message.

        Merges the carried Lamport value into the local clock; when the
        sender attached no context (mixed deployments, older peers) the
        trace id is re-derived from the run id so the record still joins
        the right trace — causal edges are simply absent.
        """
        carried = TraceContext.from_dict(raw)
        if carried is not None:
            lamport = self.clock.observe(carried.lamport)
            trace_id = carried.trace_id or trace_id_for_run(run_id)
            parent = carried.span_id
        else:
            lamport = self.clock.tick()
            trace_id = trace_id_for_run(run_id)
            parent = ""
        return TraceContext(
            trace_id=trace_id,
            span_id=span_id_for(trace_id, self.party_id, lamport),
            lamport=lamport,
            parent_span_id=parent,
        )

    def local_event(self, run_id: str) -> TraceContext:
        """Context for a purely local causal event (decision, outcome)."""
        return self.begin_send(run_id)


@dataclass(frozen=True)
class TraceRecord:
    """One trace record: a point event or a completed span."""

    kind: str  # SPAN or EVENT
    name: str
    party: str = ""
    at: float = 0.0  # wall-clock time of emission (seconds)
    seconds: "Optional[float]" = None  # span duration; None for events
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = {"kind": self.kind, "name": self.name, "party": self.party,
                  "at": self.at}
        if self.seconds is not None:
            record["seconds"] = self.seconds
        record.update(self.attrs)
        return record


Exporter = Callable[[TraceRecord], None]


class InMemoryCollector:
    """Exporter that keeps every record; the test-side trace sink."""

    def __init__(self) -> None:
        self.records: "list[TraceRecord]" = []

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)

    def named(self, name: str) -> "list[TraceRecord]":
        return [r for r in self.records if r.name == name]

    def spans(self) -> "list[TraceRecord]":
        return [r for r in self.records if r.kind == SPAN]

    def events(self) -> "list[TraceRecord]":
        return [r for r in self.records if r.kind == EVENT]

    def clear(self) -> None:
        self.records.clear()


class JsonLinesExporter:
    """Exporter writing one JSON object per record to a file.

    Attribute values must be JSON-serialisable (the instrumentation only
    emits str/int/float/bool); anything else is stringified rather than
    dropped, so a trace file never loses records to an odd attribute.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def __call__(self, record: TraceRecord) -> None:
        line = json.dumps(record.to_dict(), default=str, sort_keys=True)
        self._handle.write(line + "\n")

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_jsonl(path: str) -> "list[dict]":
    """Load a JSON-lines trace file back into record dicts."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class Tracer:
    """Fan-out point for trace records.

    ``wall_clock`` stamps records (evidence-style wall time);
    ``perf_clock`` measures span durations (monotonic, high resolution).
    Both are injectable so tests can assert on deterministic output.

    Export is serialised under a lock: TCP deployments run parties in
    threads, and two parties flushing through one
    :class:`JsonLinesExporter` must not interleave half-written lines.
    """

    def __init__(self, exporters: "list[Exporter] | None" = None,
                 wall_clock: "Callable[[], float]" = time.time,
                 perf_clock: "Callable[[], float]" = time.perf_counter) -> None:
        self.exporters: "list[Exporter]" = list(exporters or [])
        self._wall = wall_clock
        self._perf = perf_clock
        self._lock = threading.Lock()

    def add_exporter(self, exporter: Exporter) -> None:
        with self._lock:
            self.exporters.append(exporter)

    def event(self, name: str, party: str = "",
              **attrs) -> "TraceRecord | None":
        if not self.exporters:
            return None
        record = TraceRecord(kind=EVENT, name=name, party=party,
                             at=self._wall(), attrs=attrs)
        self._export(record)
        return record

    def span_end(self, name: str, seconds: float, party: str = "",
                 **attrs) -> "TraceRecord | None":
        """Record an already-measured span (the instrumentation hot path)."""
        if not self.exporters:
            return None
        record = TraceRecord(kind=SPAN, name=name, party=party,
                             at=self._wall(), seconds=seconds, attrs=attrs)
        self._export(record)
        return record

    @contextmanager
    def span(self, name: str, party: str = "", **attrs) -> "Iterator[dict]":
        """Measure a code block; the yielded dict adds late attributes."""
        extra: dict = {}
        started = self._perf()
        try:
            yield extra
        finally:
            seconds = self._perf() - started
            merged = dict(attrs)
            merged.update(extra)
            self.span_end(name, seconds, party=party, **merged)

    def _export(self, record: TraceRecord) -> None:
        with self._lock:
            for exporter in self.exporters:
                exporter(record)


class PartyFilesExporter:
    """Exporter writing each party's records to its own JSONL file.

    Models the deployment reality the merge pipeline expects: every
    organisation exports its *own* trace file, and an auditor combines
    them offline.  Records with no party attribution (community-wide
    events) go to ``trace-_shared.jsonl``.
    """

    def __init__(self, directory: str, prefix: str = "trace-") -> None:
        self.directory = directory
        self.prefix = prefix
        os.makedirs(directory, exist_ok=True)
        self._files: "dict[str, JsonLinesExporter]" = {}

    def __call__(self, record: TraceRecord) -> None:
        party = record.party or "_shared"
        exporter = self._files.get(party)
        if exporter is None:
            path = os.path.join(self.directory, f"{self.prefix}{party}.jsonl")
            exporter = JsonLinesExporter(path)
            self._files[party] = exporter
        exporter(record)

    def paths(self) -> "dict[str, str]":
        return {party: exporter.path
                for party, exporter in self._files.items()}

    def close(self) -> None:
        for exporter in self._files.values():
            exporter.close()

    def __enter__(self) -> "PartyFilesExporter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
