"""Structured tracing: typed span/event records with pluggable exporters.

A :class:`Tracer` turns protocol activity into flat, timestamped records
(run id, party, phase, sizes, durations) that can be collected in memory
for assertions or streamed as JSON lines for offline analysis.  Records
are plain data — no object graph to walk — so an exporter is just a
callable receiving one dict-able record at a time.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

SPAN = "span"
EVENT = "event"


@dataclass(frozen=True)
class TraceRecord:
    """One trace record: a point event or a completed span."""

    kind: str  # SPAN or EVENT
    name: str
    party: str = ""
    at: float = 0.0  # wall-clock time of emission (seconds)
    seconds: "Optional[float]" = None  # span duration; None for events
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = {"kind": self.kind, "name": self.name, "party": self.party,
                  "at": self.at}
        if self.seconds is not None:
            record["seconds"] = self.seconds
        record.update(self.attrs)
        return record


Exporter = Callable[[TraceRecord], None]


class InMemoryCollector:
    """Exporter that keeps every record; the test-side trace sink."""

    def __init__(self) -> None:
        self.records: "list[TraceRecord]" = []

    def __call__(self, record: TraceRecord) -> None:
        self.records.append(record)

    def named(self, name: str) -> "list[TraceRecord]":
        return [r for r in self.records if r.name == name]

    def spans(self) -> "list[TraceRecord]":
        return [r for r in self.records if r.kind == SPAN]

    def events(self) -> "list[TraceRecord]":
        return [r for r in self.records if r.kind == EVENT]

    def clear(self) -> None:
        self.records.clear()


class JsonLinesExporter:
    """Exporter writing one JSON object per record to a file.

    Attribute values must be JSON-serialisable (the instrumentation only
    emits str/int/float/bool); anything else is stringified rather than
    dropped, so a trace file never loses records to an odd attribute.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def __call__(self, record: TraceRecord) -> None:
        line = json.dumps(record.to_dict(), default=str, sort_keys=True)
        self._handle.write(line + "\n")

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "JsonLinesExporter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_jsonl(path: str) -> "list[dict]":
    """Load a JSON-lines trace file back into record dicts."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class Tracer:
    """Fan-out point for trace records.

    ``wall_clock`` stamps records (evidence-style wall time);
    ``perf_clock`` measures span durations (monotonic, high resolution).
    Both are injectable so tests can assert on deterministic output.
    """

    def __init__(self, exporters: "list[Exporter] | None" = None,
                 wall_clock: "Callable[[], float]" = time.time,
                 perf_clock: "Callable[[], float]" = time.perf_counter) -> None:
        self.exporters: "list[Exporter]" = list(exporters or [])
        self._wall = wall_clock
        self._perf = perf_clock

    def add_exporter(self, exporter: Exporter) -> None:
        self.exporters.append(exporter)

    def event(self, name: str, party: str = "", **attrs) -> TraceRecord:
        record = TraceRecord(kind=EVENT, name=name, party=party,
                             at=self._wall(), attrs=attrs)
        self._export(record)
        return record

    def span_end(self, name: str, seconds: float, party: str = "",
                 **attrs) -> TraceRecord:
        """Record an already-measured span (the instrumentation hot path)."""
        record = TraceRecord(kind=SPAN, name=name, party=party,
                             at=self._wall(), seconds=seconds, attrs=attrs)
        self._export(record)
        return record

    @contextmanager
    def span(self, name: str, party: str = "", **attrs) -> "Iterator[dict]":
        """Measure a code block; the yielded dict adds late attributes."""
        extra: dict = {}
        started = self._perf()
        try:
            yield extra
        finally:
            seconds = self._perf() - started
            merged = dict(attrs)
            merged.update(extra)
            self.span_end(name, seconds, party=party, **merged)

    def _export(self, record: TraceRecord) -> None:
        for exporter in self.exporters:
            exporter(record)
