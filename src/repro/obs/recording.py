"""The recording implementation of the instrumentation hooks.

Maps every hook onto registry instruments (see the catalogue in
``docs/OBSERVABILITY.md``) and, for run-level activity, onto trace
records.  One instance is shared by all parties of a community, so the
registry aggregates across the whole deployment; per-party attribution
lives in the trace records.

When a :class:`~repro.obs.live.flight.FlightRecorder` is attached
(``flight=`` or the ``flight`` attribute), the coarse-grained events —
run lifecycle, protocol messages, gateway admissions/rejections, breaker
transitions, retransmissions, health alerts — are also appended to its
ring for post-mortem dumps.  Per-message hot counters (acks, queue
depths, raw sends) stay registry-only to keep ring churn proportional to
interesting activity.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.hooks import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import InMemoryCollector, Tracer


class RecordingInstrumentation(Instrumentation):
    """Hook implementation recording into a registry and a tracer."""

    enabled = True

    def __init__(self, registry: "MetricsRegistry | None" = None,
                 tracer: "Tracer | None" = None,
                 collect: bool = False,
                 flight=None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.flight = flight
        self.collector: "Optional[InMemoryCollector]" = None
        if collect:
            self.collector = InMemoryCollector()
            self.tracer.add_exporter(self.collector)
        # Per-(phase, direction) counter tuples for the hottest hook:
        # skips two f-string builds and three registry lookups per
        # protocol message.
        self._msg_counters: "dict[tuple[str, str], tuple]" = {}
        # Bound-instrument tuples for the other per-message hooks,
        # built on first use so an instrument only exists once its hook
        # has actually fired (snapshots stay free of zero-value noise).
        self._transport_instruments: "tuple | None" = None
        self._frame_instruments: "dict[tuple[str, str], tuple]" = {}
        self._journal_instruments: "tuple | None" = None
        self._evidence_instruments: "tuple | None" = None
        self._sign_instruments: "tuple | None" = None
        self._verify_instruments: "tuple | None" = None
        self._causal_counter = None
        self._shard_instruments: "dict[int, tuple]" = {}
        self._read_instruments: "dict[tuple[str, bool], tuple]" = {}
        self._readcache_version_gauge = None
        self._queue_gauge = None
        self._ack_counter = None
        self._pipeline_gauge = None
        self._phase_histograms: "dict[str, object]" = {}

    # -- protocol ----------------------------------------------------------

    def run_started(self, party, object_name, run_id, role, mode):
        self.registry.counter("protocol.runs.started").inc()
        self.registry.counter(f"protocol.runs.started.{role}").inc()
        self.tracer.event("run.started", party=party, object=object_name,
                          run_id=run_id, role=role, mode=mode)
        if self.flight is not None:
            self.flight.record("run_started", party=party,
                               object=object_name, run_id=run_id,
                               role=role, mode=mode)

    def run_settled(self, party, object_name, run_id, role, outcome, seconds):
        self.registry.counter(f"protocol.runs.{outcome}").inc()
        self.registry.histogram("protocol.run_seconds").observe(seconds)
        self.registry.histogram(f"protocol.run_seconds.{role}").observe(seconds)
        self.tracer.span_end("run.settled", seconds, party=party,
                             object=object_name, run_id=run_id, role=role,
                             outcome=outcome)
        if self.flight is not None:
            self.flight.record("run_settled", party=party,
                               object=object_name, run_id=run_id, role=role,
                               outcome=outcome, seconds=seconds)

    def protocol_message(self, party, object_name, run_id, phase,
                         direction, size):
        counters = self._msg_counters.get((phase, direction))
        if counters is None:
            counters = self._msg_counters[(phase, direction)] = (
                self.registry.counter(f"protocol.{phase}.{direction}"),
                self.registry.counter(f"protocol.{phase}.bytes_{direction}"),
                self.registry.counter(f"protocol.messages.{direction}"),
            )
        counters[0].inc()
        counters[1].inc(size)
        counters[2].inc()
        if self.flight is not None:
            self.flight.record("protocol_message", party=party,
                               object=object_name, run_id=run_id,
                               phase=phase, direction=direction, size=size)

    def phase_handled(self, party, object_name, phase, seconds):
        histogram = self._phase_histograms.get(phase)
        if histogram is None:
            histogram = self._phase_histograms[phase] = self.registry.histogram(
                f"protocol.{phase}.handle_seconds")
        histogram.observe(seconds)
        self.tracer.span_end("phase.handle", seconds, party=party,
                             object=object_name, phase=phase)

    def validation_decision(self, party, object_name, run_id, accepted,
                            diagnostics):
        verdict = "accepted" if accepted else "rejected"
        self.registry.counter(f"protocol.validation.{verdict}").inc()
        self.tracer.event("validation.decision", party=party,
                          object=object_name, run_id=run_id,
                          accepted=accepted,
                          diagnostics=len(diagnostics))
        if self.flight is not None:
            self.flight.record("validation", party=party, object=object_name,
                               run_id=run_id, accepted=accepted,
                               diagnostics=list(diagnostics))

    # -- causal tracing ----------------------------------------------------

    def causal_message(self, party, object_name, run_id, phase, direction,
                       peer, trace_id, span_id, parent_span_id, lamport):
        counter = self._causal_counter
        if counter is None:
            counter = self._causal_counter = self.registry.counter(
                "trace.causal.messages")
        counter.inc()
        self.tracer.event("causal.message", party=party, object=object_name,
                          run_id=run_id, phase=phase, direction=direction,
                          peer=peer, trace_id=trace_id, span_id=span_id,
                          parent_span_id=parent_span_id, lamport=lamport)

    def causal_decision(self, party, object_name, run_id, trace_id, lamport,
                        accepted, diagnostics):
        self.tracer.event("causal.decision", party=party, object=object_name,
                          run_id=run_id, trace_id=trace_id, lamport=lamport,
                          accepted=accepted,
                          diagnostics="; ".join(diagnostics))

    def causal_outcome(self, party, object_name, run_id, trace_id, lamport,
                       role, outcome):
        self.tracer.event("causal.outcome", party=party, object=object_name,
                          run_id=run_id, trace_id=trace_id, lamport=lamport,
                          role=role, outcome=outcome)

    # -- proposal pipeline -------------------------------------------------

    def batch_proposed(self, party, object_name, run_id, size):
        self.registry.counter("pipeline.batches").inc()
        self.registry.counter("pipeline.batched_updates").inc(size)
        self.registry.histogram("pipeline.batch_size").observe(size)
        self.tracer.event("pipeline.batch", party=party, object=object_name,
                          run_id=run_id, size=size)
        if self.flight is not None:
            self.flight.record("batch_proposed", party=party,
                               object=object_name, run_id=run_id, size=size)

    def pipeline_depth(self, party, object_name, depth):
        gauge = self._pipeline_gauge
        if gauge is None:
            gauge = self._pipeline_gauge = self.registry.gauge("pipeline.depth")
        gauge.set(depth)

    def pipeline_busy_retry(self, party, object_name, attempt):
        self.registry.counter("pipeline.busy_retries").inc()
        self.tracer.event("pipeline.retry", party=party, object=object_name,
                          attempt=attempt)
        if self.flight is not None:
            self.flight.record("pipeline_busy_retry", party=party,
                               object=object_name, attempt=attempt)

    def pipeline_saturated(self, party, object_name, depth):
        self.registry.counter("pipeline.saturated").inc()
        if self.flight is not None:
            self.flight.record("pipeline_saturated", party=party,
                               object=object_name, depth=depth)

    # -- shard scheduler ---------------------------------------------------

    def shard_dispatch(self, party, shard, depth):
        instruments = self._shard_instruments.get(shard)
        if instruments is None:
            instruments = self._shard_instruments[shard] = (
                self.registry.counter(f"shards.dispatched.s{shard}"),
                self.registry.gauge(f"shards.queue_depth.s{shard}"),
                self.registry.counter(f"shards.settled.s{shard}"),
            )
        instruments[0].inc()
        instruments[1].set(depth)

    def shard_settled(self, party, shard, object_name, valid):
        instruments = self._shard_instruments.get(shard)
        if instruments is None:
            instruments = self._shard_instruments[shard] = (
                self.registry.counter(f"shards.dispatched.s{shard}"),
                self.registry.gauge(f"shards.queue_depth.s{shard}"),
                self.registry.counter(f"shards.settled.s{shard}"),
            )
        instruments[2].inc()
        self.registry.counter("shards.settled").inc()
        if not valid:
            self.registry.counter("shards.settled.invalid").inc()

    # -- read cache --------------------------------------------------------

    def read_served(self, party, object_name, mode, hit, staleness):
        # Reads are the hot path this cache exists for: bound-instrument
        # tuples per (mode, hit), registry-only (no flight ring churn).
        instruments = self._read_instruments.get((mode, hit))
        if instruments is None:
            verdict = "hits" if hit else "misses"
            instruments = self._read_instruments[(mode, hit)] = (
                self.registry.counter("readcache.reads"),
                self.registry.counter(f"readcache.reads.{mode}"),
                self.registry.counter(f"readcache.{verdict}"),
                self.registry.histogram("readcache.staleness_seconds"),
            )
        instruments[0].inc()
        instruments[1].inc()
        instruments[2].inc()
        instruments[3].observe(staleness)

    def snapshot_published(self, party, object_name, version, settle_seq):
        self.registry.counter("readcache.published").inc()
        gauge = self._readcache_version_gauge
        if gauge is None:
            gauge = self._readcache_version_gauge = self.registry.gauge(
                "readcache.version")
        gauge.set(version)
        if self.flight is not None:
            self.flight.record("snapshot_published", party=party,
                               object=object_name, version=version,
                               settle_seq=settle_seq)

    def snapshot_invalidated(self, party, object_name, reason):
        self.registry.counter("readcache.invalidated").inc()
        self.registry.counter(f"readcache.invalidated.{reason}").inc()
        if self.flight is not None:
            self.flight.record("snapshot_invalidated", party=party,
                               object=object_name, reason=reason)

    # -- gateway -----------------------------------------------------------

    def gateway_admitted(self, party, object_name, client):
        self.registry.counter("gateway.admitted").inc()
        if self.flight is not None:
            self.flight.record("gateway_admitted", party=party,
                               object=object_name, client=client)

    def gateway_rejected(self, party, object_name, client, reason,
                         retry_after=0.0):
        self.registry.counter("gateway.rejected").inc()
        self.registry.counter(f"gateway.rejected.{reason}").inc()
        self.registry.histogram("gateway.retry_after_seconds").observe(
            retry_after)
        if self.flight is not None:
            self.flight.record("gateway_rejected", party=party,
                               object=object_name, client=client,
                               reason=reason, retry_after=retry_after)

    def gateway_replayed(self, party, object_name, client):
        self.registry.counter("gateway.replays").inc()
        if self.flight is not None:
            self.flight.record("gateway_replayed", party=party,
                               object=object_name, client=client)

    def gateway_queue_depth(self, party, object_name, depth):
        self.registry.gauge("gateway.queue_depth").set(depth)

    def gateway_settled(self, party, object_name, valid, seconds):
        verdict = "valid" if valid else "invalid"
        self.registry.counter(f"gateway.settled.{verdict}").inc()
        self.registry.histogram("gateway.settle_seconds").observe(seconds)
        if self.flight is not None:
            self.flight.record("gateway_settled", party=party,
                               object=object_name, valid=valid,
                               seconds=seconds)

    def breaker_transition(self, party, object_name, old_state, new_state):
        self.registry.counter("gateway.breaker.transitions").inc()
        self.registry.counter(
            f"gateway.breaker.{old_state}->{new_state}").inc()
        self.tracer.event("gateway.breaker", party=party, object=object_name,
                          old=old_state, new=new_state)
        if self.flight is not None:
            self.flight.record("breaker_transition", party=party,
                               object=object_name, old=old_state,
                               new=new_state)

    # -- online health -----------------------------------------------------

    def health_alert(self, party, rule, severity, message, value, threshold):
        self.registry.counter("health.alerts").inc()
        self.registry.counter(f"health.alerts.{rule}").inc()
        self.tracer.event("health.alert", party=party, rule=rule,
                          severity=severity, message=message, value=value,
                          threshold=threshold)
        if self.flight is not None:
            self.flight.record("health_alert", party=party, rule=rule,
                               severity=severity, message=message,
                               value=value, threshold=threshold)

    def health_changed(self, party, old_state, new_state):
        self.registry.counter("health.transitions").inc()
        self.registry.counter(f"health.{old_state}->{new_state}").inc()
        self.tracer.event("health.changed", party=party, old=old_state,
                          new=new_state)
        if self.flight is not None:
            self.flight.record("health_changed", party=party,
                               old=old_state, new=new_state)

    # -- transport ---------------------------------------------------------

    def message_sent(self, party, recipient, size):
        counters = self._transport_instruments
        if counters is None:
            counters = self._transport_instruments = (
                self.registry.counter("transport.data_sent"),
                self.registry.counter("transport.bytes_sent"),
            )
        counters[0].inc()
        counters[1].inc(size)

    def retransmission(self, party, recipient, msg_id, attempt):
        self.registry.counter("transport.retransmissions").inc()
        self.tracer.event("transport.retransmission", party=party,
                          peer=recipient, msg_id=msg_id, attempt=attempt)
        if self.flight is not None:
            self.flight.record("retransmission", party=party,
                               peer=recipient, msg_id=msg_id,
                               attempt=attempt)

    def retry_exhausted(self, party, recipient, msg_id, attempts):
        self.registry.counter("transport.retry_exhausted").inc()
        self.tracer.event("transport.retry_exhausted", party=party,
                          recipient=recipient, msg_id=msg_id,
                          attempts=attempts)
        if self.flight is not None:
            self.flight.record("retry_exhausted", party=party,
                               peer=recipient, msg_id=msg_id,
                               attempts=attempts)

    def duplicate_suppressed(self, party, sender, msg_id):
        self.registry.counter("transport.duplicates_suppressed").inc()
        self.tracer.event("transport.duplicate", party=party,
                          peer=sender, msg_id=msg_id)
        if self.flight is not None:
            self.flight.record("duplicate_suppressed", party=party,
                               peer=sender, msg_id=msg_id)

    def ack_received(self, party, msg_id):
        counter = self._ack_counter
        if counter is None:
            counter = self._ack_counter = self.registry.counter(
                "transport.acks_received")
        counter.inc()

    def queue_depth(self, party, depth):
        gauge = self._queue_gauge
        if gauge is None:
            gauge = self._queue_gauge = self.registry.gauge(
                "transport.queue_depth")
        gauge.set(depth)

    def raw_send(self, sender, recipient, size, ok):
        self.registry.counter("transport.raw.sent").inc()
        self.registry.counter("transport.raw.bytes_sent").inc(size)
        if not ok:
            self.registry.counter("transport.raw.send_errors").inc()

    def connection_opened(self, party, peer, reconnect):
        self.registry.counter("transport.tcp.connections_opened").inc()
        if reconnect:
            self.registry.counter("transport.tcp.reconnects").inc()
            self.tracer.event("transport.reconnect", party=party, peer=peer)
        if self.flight is not None:
            self.flight.record("connection_opened", party=party, peer=peer,
                               reconnect=reconnect)

    def connection_reused(self, party, peer):
        self.registry.counter("transport.tcp.connections_reused").inc()

    def connection_failed(self, party, peer):
        self.registry.counter("transport.tcp.connect_failures").inc()
        if self.flight is not None:
            self.flight.record("connection_failed", party=party, peer=peer)

    def frames_coalesced(self, party, peer, frames):
        self.registry.counter("transport.tcp.batches").inc()
        self.registry.counter("transport.tcp.frames_coalesced").inc(frames)

    def frame_encoded(self, codec, size, seconds):
        instruments = self._frame_instruments.get((codec, "out"))
        if instruments is None:
            instruments = self._frame_instruments[(codec, "out")] = (
                self.registry.counter(f"wire.{codec}.frames_out"),
                self.registry.counter(f"wire.{codec}.bytes_out"),
                self.registry.histogram(f"wire.{codec}.encode_seconds"),
            )
        instruments[0].inc()
        instruments[1].inc(size)
        instruments[2].observe(seconds)

    def frame_decoded(self, codec, size, seconds):
        instruments = self._frame_instruments.get((codec, "in"))
        if instruments is None:
            instruments = self._frame_instruments[(codec, "in")] = (
                self.registry.counter(f"wire.{codec}.frames_in"),
                self.registry.counter(f"wire.{codec}.bytes_in"),
                self.registry.histogram(f"wire.{codec}.decode_seconds"),
            )
        instruments[0].inc()
        instruments[1].inc(size)
        instruments[2].observe(seconds)

    def malformed_frame(self, party, reason):
        self.registry.counter("transport.tcp.malformed_frames").inc()
        self.registry.counter(
            f"transport.tcp.malformed_frames.{reason}").inc()
        if self.flight is not None:
            self.flight.record("malformed_frame", party=party, reason=reason)

    def handler_error(self, party, kind):
        self.registry.counter("transport.tcp.handler_errors").inc()
        self.registry.counter(f"transport.tcp.handler_errors.{kind}").inc()
        if self.flight is not None:
            self.flight.record("handler_error", party=party, site=kind)

    def send_traced(self, party, recipient, msg_id, trace_id):
        self.tracer.event("transport.send", party=party, peer=recipient,
                          msg_id=msg_id, trace_id=trace_id)

    # -- crypto ------------------------------------------------------------

    def sign_timing(self, party, scheme, size, seconds):
        instruments = self._sign_instruments
        if instruments is None:
            instruments = self._sign_instruments = (
                self.registry.counter("crypto.sign.count"),
                self.registry.histogram("crypto.sign_seconds"),
            )
        instruments[0].inc()
        instruments[1].observe(seconds)

    def verify_timing(self, scheme, size, seconds, ok):
        instruments = self._verify_instruments
        if instruments is None:
            instruments = self._verify_instruments = (
                self.registry.counter("crypto.verify.count"),
                self.registry.histogram("crypto.verify_seconds"),
            )
        instruments[0].inc()
        if not ok:
            self.registry.counter("crypto.verify.failures").inc()
        instruments[1].observe(seconds)

    def keygen_timing(self, bits, attempts, seconds):
        self.registry.counter("crypto.keygen.count").inc()
        self.registry.counter("crypto.keygen.attempts").inc(attempts)
        self.registry.histogram("crypto.keygen_seconds").observe(seconds)

    # -- storage -----------------------------------------------------------

    def journal_append(self, party, run_id, direction, size, seconds):
        instruments = self._journal_instruments
        if instruments is None:
            instruments = self._journal_instruments = (
                self.registry.counter("storage.journal.appends"),
                self.registry.counter("storage.journal.bytes"),
                self.registry.histogram("storage.journal.append_seconds"),
            )
        instruments[0].inc()
        instruments[1].inc(size)
        instruments[2].observe(seconds)

    def journal_closed(self, party, run_id, outcome):
        self.registry.counter("storage.journal.closed").inc()

    def evidence_append(self, party, kind, size, seconds):
        instruments = self._evidence_instruments
        if instruments is None:
            instruments = self._evidence_instruments = (
                self.registry.counter("storage.evidence.appends"),
                self.registry.counter("storage.evidence.bytes"),
                self.registry.histogram("storage.evidence.append_seconds"),
            )
        instruments[0].inc()
        instruments[1].inc(size)
        instruments[2].observe(seconds)

    # -- dispute resolution ------------------------------------------------

    def evidence_submitted(self, party, intact):
        self.registry.counter("dispute.submissions").inc()
        if not intact:
            self.registry.counter("dispute.submissions.corrupt").inc()

    def claim_checked(self, claim, outcome, culprits, seconds):
        self.registry.counter("dispute.claims_checked").inc()
        self.registry.counter(f"dispute.rulings.{outcome}").inc()
        self.registry.histogram("dispute.claim_seconds").observe(seconds)
        self.tracer.event("dispute.ruling", claim=claim, outcome=outcome,
                          culprits=", ".join(culprits))

    # -- reporting ---------------------------------------------------------

    def report(self) -> str:
        from repro.obs.report import render_report

        return render_report(self.registry)
